//! Randomized agreement suite for the hybrid gid-set representation:
//! for random inputs spanning the density spectrum — from sparse
//! (`auto` stays on sorted lists) to dense (`auto` flips to bitset
//! words) — every pool member must produce an itemset inventory
//! *bit-identical* to the list-only run, at every worker count, and the
//! full core operator must mine identical rule sets for every pinned
//! representation.

use minerule::algo::{
    default_pool, sort_itemsets, GidSetRepr, LargeItemset, ShardExec, SimpleInput,
};
use minerule::ast::CardSpec;
use minerule::core_op::{run_core, CoreOptions};
use minerule::directives::{Directives, StatementClass};
use minerule::encoded::{EncodedData, EncodedInput};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];
const REPRS: [GidSetRepr; 3] = [GidSetRepr::List, GidSetRepr::Auto, GidSetRepr::Bitset];

// The workload generator lives in the fuzz harness
// (`tcdm_fuzz::grammar::random_simple_input`) so the differential fuzzer
// and this suite share one scenario space.
use tcdm_fuzz::grammar::random_simple_input;

/// The density × seed grid. Universes of 12, 60 and 150 groups cross the
/// `len * 32 > universe` threshold at very different list lengths, so the
/// grid exercises list-only, bitset-heavy and genuinely mixed runs.
fn grid() -> Vec<(SimpleInput, String)> {
    let mut inputs = Vec::new();
    for (groups, catalog, density) in [
        (12usize, 18u32, 0.5),
        (60, 25, 0.35),
        (60, 120, 0.06),
        (120, 40, 0.22),
        (120, 300, 0.025),
    ] {
        for seed in [1u64, 2] {
            inputs.push((
                random_simple_input(groups, catalog, density, seed ^ (groups as u64) << 8),
                format!("g={groups} c={catalog} d={density} seed={seed}"),
            ));
        }
    }
    inputs
}

fn mine_sorted(
    miner: &dyn minerule::algo::ItemsetMiner,
    input: &SimpleInput,
    repr: GidSetRepr,
    workers: usize,
) -> Vec<LargeItemset> {
    let exec = ShardExec::new(workers).with_gidset_repr(repr);
    let mut got = miner.mine_sharded(input, &exec);
    sort_itemsets(&mut got);
    got
}

/// Every pool member × representation × worker count agrees bit-for-bit
/// with the list-only single-worker inventory on every grid point.
#[test]
fn inventories_agree_across_representations_and_workers() {
    for (input, label) in grid() {
        for miner in default_pool() {
            let reference = mine_sorted(miner.as_ref(), &input, GidSetRepr::List, 1);
            // List at workers > 1 is already covered by the blanket
            // parallel_agreement suite; here one high worker count pins
            // it against the same reference. The hybrid arm gets the
            // full worker grid; the all-bitset arm its extremes.
            for (repr, workers_to_check) in [
                (GidSetRepr::List, &WORKER_COUNTS[3..]),
                (GidSetRepr::Auto, &WORKER_COUNTS[..]),
                (
                    GidSetRepr::Bitset,
                    &[WORKER_COUNTS[0], WORKER_COUNTS[3]][..],
                ),
            ] {
                for &workers in workers_to_check {
                    let got = mine_sorted(miner.as_ref(), &input, repr, workers);
                    assert_eq!(
                        got,
                        reference,
                        "{label}: {} diverges at repr={repr} workers={workers}",
                        miner.name()
                    );
                }
            }
        }
    }
}

/// The representation knob must never change mined rules through the
/// full core operator either.
#[test]
fn rule_sets_agree_across_representations_through_run_core() {
    let simple = random_simple_input(80, 30, 0.3, 77);
    let input = EncodedInput {
        directives: Directives::default(),
        class: StatementClass::Simple,
        total_groups: simple.total_groups,
        min_groups: simple.min_groups,
        min_support: 0.1,
        min_confidence: 0.2,
        body_card: CardSpec::one_to_n(),
        head_card: CardSpec::one_to_one(),
        data: EncodedData::Simple {
            groups: simple
                .groups
                .iter()
                .enumerate()
                .map(|(g, items)| (g as u32, items.clone()))
                .collect(),
        },
    };
    for algorithm in ["apriori", "partition", "sampling", "eclat"] {
        let mut baseline = None;
        for repr in REPRS {
            for workers in [1usize, 4] {
                let out = run_core(
                    &input,
                    &CoreOptions {
                        algorithm: algorithm.into(),
                        workers,
                        gidset: repr,
                        ..CoreOptions::default()
                    },
                )
                .unwrap();
                assert!(!out.used_general);
                match &baseline {
                    None => baseline = Some(out.rules),
                    Some(b) => {
                        assert_eq!(&out.rules, b, "{algorithm} repr={repr} workers={workers}")
                    }
                }
            }
        }
        assert!(!baseline.unwrap().is_empty(), "{algorithm} found rules");
    }
}
