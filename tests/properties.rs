//! Property-style tests over the core data structures and the kernel's
//! invariants (DESIGN.md §7). Each property is checked over a fixed
//! battery of deterministic pseudo-random cases (seeded per test, so
//! failures reproduce exactly) plus hand-kept regression cases from
//! earlier shrunk failures.

use datagen::rng::Rng;

use minerule::algo::itemset::{apriori_join, intersect, is_subset};
use minerule::algo::{default_pool, sort_itemsets, SimpleInput};
use minerule::ast::{CardMax, CardSpec};
use minerule::encoded::GeneralTuple;
use minerule::lattice::elementary::{build_contexts, BuildOptions};
use minerule::lattice::{mine_general, ExpansionOrder, GeneralParams};
use minerule::parse_mine_rule;

const CASES: u64 = 64;

/// A small basket dataset: 1..14 groups, each a sorted set of 1..6 item
/// ids drawn from 0..12 (mirrors the old proptest strategy).
fn random_groups(rng: &mut Rng) -> Vec<Vec<u32>> {
    let n = rng.gen_range_usize(1, 14);
    (0..n)
        .map(|_| {
            let size = rng.gen_range_usize(1, 6);
            let mut set = std::collections::BTreeSet::new();
            while set.len() < size {
                set.insert(rng.gen_range_u32(0, 12));
            }
            set.into_iter().collect()
        })
        .collect()
}

fn random_sorted_set(rng: &mut Rng, universe: u32, max_len: usize) -> Vec<u32> {
    let size = rng.gen_range_usize(0, max_len);
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..size {
        set.insert(rng.gen_range_u32(0, universe));
    }
    set.into_iter().collect()
}

#[test]
fn sorted_set_ops_behave() {
    let mut rng = Rng::seed_from_u64(0xA0);
    for _ in 0..CASES {
        let av = random_sorted_set(&mut rng, 30, 10);
        let bv = random_sorted_set(&mut rng, 30, 10);
        let a: std::collections::BTreeSet<u32> = av.iter().copied().collect();
        let b: std::collections::BTreeSet<u32> = bv.iter().copied().collect();
        let inter = intersect(&av, &bv);
        let expect: Vec<u32> = a.intersection(&b).copied().collect();
        assert_eq!(inter, expect);
        assert!(is_subset(&inter, &av) && is_subset(&inter, &bv));
        assert_eq!(is_subset(&av, &bv), a.is_subset(&b));
    }
}

#[test]
fn apriori_join_produces_supersets() {
    let mut rng = Rng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let mut v = random_sorted_set(&mut rng, 10, 5);
        while v.len() < 2 {
            v = random_sorted_set(&mut rng, 10, 5);
        }
        let mut left = v.clone();
        let last = *left.last().unwrap();
        *left.last_mut().unwrap() = last.saturating_sub(1);
        if left.windows(2).all(|w| w[0] < w[1]) {
            if let Some(j) = apriori_join(&left, &v) {
                assert_eq!(j.len(), v.len() + 1);
                assert!(is_subset(&left, &j) && is_subset(&v, &j));
            }
        }
    }
}

#[test]
fn pool_agreement() {
    // Regression case (shrunk by proptest in an earlier revision): a
    // group whose only item is absent from the systematic sample.
    let mut cases: Vec<(Vec<Vec<u32>>, u32)> = vec![(vec![vec![6], vec![0]], 1)];
    let mut rng = Rng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let groups = random_groups(&mut rng);
        let min_groups = rng.gen_range_u32(1, 4);
        cases.push((groups, min_groups));
    }
    for (groups, min_groups) in cases {
        let input = SimpleInput {
            total_groups: groups.len() as u32,
            groups,
            min_groups,
        };
        let mut reference: Option<Vec<(Vec<u32>, u32)>> = None;
        for miner in default_pool() {
            let mut got = miner.mine(&input);
            sort_itemsets(&mut got);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "{} disagrees on {:?}", miner.name(), input),
            }
        }
    }
}

#[test]
fn apriori_antimonotone() {
    let mut rng = Rng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let groups = random_groups(&mut rng);
        let min_groups = rng.gen_range_u32(1, 4);
        let input = SimpleInput {
            total_groups: groups.len() as u32,
            groups,
            min_groups,
        };
        let large = default_pool()[0].mine(&input);
        let keys: std::collections::HashSet<&[u32]> =
            large.iter().map(|(s, _)| s.as_slice()).collect();
        for (set, count) in &large {
            assert!(*count >= min_groups);
            // Every immediate subset of a large itemset is large, with a
            // count at least as big.
            for skip in 0..set.len() {
                if set.len() == 1 {
                    break;
                }
                let sub: Vec<u32> = set
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, &x)| x)
                    .collect();
                assert!(
                    keys.contains(sub.as_slice()),
                    "subset {sub:?} of {set:?} missing"
                );
                let sub_count = large.iter().find(|(s, _)| *s == sub).unwrap().1;
                assert!(sub_count >= *count);
            }
        }
    }
}

#[test]
fn exact_counts_match_bruteforce() {
    let mut rng = Rng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let groups = random_groups(&mut rng);
        let input = SimpleInput {
            total_groups: groups.len() as u32,
            groups: groups.clone(),
            min_groups: 1,
        };
        let large = default_pool()[0].mine(&input);
        for (set, count) in &large {
            let brute = groups.iter().filter(|g| is_subset(set, g)).count() as u32;
            assert_eq!(*count, brute, "count of {set:?}");
        }
    }
}

#[test]
fn lattice_rules_verify_against_bruteforce() {
    let mut rng = Rng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let groups = random_groups(&mut rng);
        let min_groups = rng.gen_range_u32(1, 3);
        // Build general contexts from plain baskets and check every rule's
        // support/confidence against direct counting.
        let tuples: Vec<GeneralTuple> = groups
            .iter()
            .enumerate()
            .flat_map(|(g, items)| {
                items.iter().map(move |&i| GeneralTuple {
                    gid: g as u32,
                    cid: None,
                    bid: Some(i),
                    hid: Some(i),
                })
            })
            .collect();
        let contexts = build_contexts(
            &tuples,
            None,
            None,
            BuildOptions {
                clustered: false,
                has_couples: false,
                distinct_head: false,
                min_groups,
            },
        );
        let total = groups.len() as u32;
        let rules = mine_general(
            &contexts,
            &GeneralParams {
                total_groups: total,
                min_groups,
                min_confidence: 0.0001,
                body_card: CardSpec::one_to_n(),
                head_card: CardSpec {
                    min: 1,
                    max: CardMax::Fixed(2),
                },
                order: ExpansionOrder::MinParent,
            },
        )
        .unwrap();
        for r in &rules {
            let mut union: Vec<u32> = r.body.iter().chain(r.head.iter()).copied().collect();
            union.sort_unstable();
            let rule_count = groups.iter().filter(|g| is_subset(&union, g)).count() as u32;
            let body_count = groups.iter().filter(|g| is_subset(&r.body, g)).count() as u32;
            assert_eq!(r.group_count, rule_count, "support count of {r:?}");
            assert!((r.support - rule_count as f64 / total as f64).abs() < 1e-9);
            assert!(
                (r.confidence - rule_count as f64 / body_count as f64).abs() < 1e-9,
                "confidence of {r:?}: body_count={body_count}"
            );
            assert!(r.head.len() <= 2, "head cardinality cap");
        }
    }
}

#[test]
fn cardspec_admits_is_interval() {
    let mut rng = Rng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let min = rng.gen_range_u32(1, 4);
        let extra = rng.gen_range_u32(0, 4);
        let k = rng.gen_range_usize(0, 8);
        let spec = CardSpec {
            min,
            max: CardMax::Fixed(min + extra),
        };
        assert!(spec.is_valid());
        let admitted = spec.admits(k);
        assert_eq!(admitted, (k as u32) >= min && (k as u32) <= min + extra);
    }
}

#[test]
fn statement_display_parse_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xA7);
    for _ in 0..CASES {
        let support = 0.01 + rng.gen_f64() * 0.98;
        let confidence = 0.01 + rng.gen_f64() * 0.98;
        let card_min = rng.gen_range_u32(1, 3);
        let card = if rng.gen_f64() < 0.5 {
            format!("{card_min}..n")
        } else {
            format!("{card_min}..{}", card_min + 1)
        };
        let text = format!(
            "MINE RULE R AS SELECT DISTINCT {card} item AS BODY, 1..1 item AS HEAD, \
             SUPPORT, CONFIDENCE FROM t GROUP BY g \
             EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: {confidence}"
        );
        let s1 = parse_mine_rule(&text).unwrap();
        let s2 = parse_mine_rule(&s1.to_string()).unwrap();
        assert_eq!(s1, s2);
    }
}

#[test]
fn min_groups_threshold_is_exact_boundary() {
    // ceil semantics: with 10 groups and support 0.25, an itemset needs
    // ≥ 3 groups (2/10 = 0.2 < 0.25 ≤ 3/10).
    for (total, s, expect) in [
        (10u64, 0.25, 3u64),
        (8, 0.5, 4),
        (3, 0.34, 2),
        (100, 0.01, 1),
    ] {
        assert_eq!(minerule::preprocess::min_groups_for(total, s), expect);
    }
}
