//! Property-based tests over the core data structures and the kernel's
//! invariants (DESIGN.md §7).

use proptest::prelude::*;

use minerule::algo::itemset::{apriori_join, intersect, is_subset};
use minerule::algo::{default_pool, sort_itemsets, SimpleInput};
use minerule::ast::{CardMax, CardSpec};
use minerule::lattice::elementary::{build_contexts, BuildOptions};
use minerule::lattice::{mine_general, ExpansionOrder, GeneralParams};
use minerule::encoded::GeneralTuple;
use minerule::parse_mine_rule;

/// Strategy: a small basket dataset (groups of item ids).
fn groups_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::btree_set(0u32..12, 1..6), 1..14)
        .prop_map(|gs| gs.into_iter().map(|s| s.into_iter().collect()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sorted_set_ops_behave(a in prop::collection::btree_set(0u32..30, 0..10),
                             b in prop::collection::btree_set(0u32..30, 0..10)) {
        let av: Vec<u32> = a.iter().copied().collect();
        let bv: Vec<u32> = b.iter().copied().collect();
        let inter = intersect(&av, &bv);
        let expect: Vec<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(&inter, &expect);
        prop_assert!(is_subset(&inter, &av) && is_subset(&inter, &bv));
        prop_assert_eq!(is_subset(&av, &bv), a.is_subset(&b));
    }

    #[test]
    fn apriori_join_produces_supersets(a in prop::collection::btree_set(0u32..10, 2..5)) {
        let v: Vec<u32> = a.iter().copied().collect();
        let mut left = v.clone();
        let last = *left.last().unwrap();
        *left.last_mut().unwrap() = last.saturating_sub(1);
        if left.windows(2).all(|w| w[0] < w[1]) {
            if let Some(j) = apriori_join(&left, &v) {
                prop_assert_eq!(j.len(), v.len() + 1);
                prop_assert!(is_subset(&left, &j) && is_subset(&v, &j));
            }
        }
    }

    #[test]
    fn pool_agreement(groups in groups_strategy(), min_groups in 1u32..4) {
        let input = SimpleInput {
            total_groups: groups.len() as u32,
            groups,
            min_groups,
        };
        let mut reference: Option<Vec<(Vec<u32>, u32)>> = None;
        for miner in default_pool() {
            let mut got = miner.mine(&input);
            sort_itemsets(&mut got);
            match &reference {
                None => reference = Some(got),
                Some(r) => prop_assert_eq!(&got, r, "{} disagrees", miner.name()),
            }
        }
    }

    #[test]
    fn apriori_antimonotone(groups in groups_strategy(), min_groups in 1u32..4) {
        let input = SimpleInput {
            total_groups: groups.len() as u32,
            groups,
            min_groups,
        };
        let large = default_pool()[0].mine(&input);
        let keys: std::collections::HashSet<&[u32]> =
            large.iter().map(|(s, _)| s.as_slice()).collect();
        for (set, count) in &large {
            prop_assert!(*count >= min_groups);
            // Every immediate subset of a large itemset is large, with a
            // count at least as big.
            for skip in 0..set.len() {
                if set.len() == 1 { break; }
                let sub: Vec<u32> = set.iter().enumerate()
                    .filter(|(i, _)| *i != skip).map(|(_, &x)| x).collect();
                prop_assert!(keys.contains(sub.as_slice()),
                    "subset {:?} of {:?} missing", sub, set);
                let sub_count = large.iter().find(|(s, _)| *s == sub).unwrap().1;
                prop_assert!(sub_count >= *count);
            }
        }
    }

    #[test]
    fn exact_counts_match_bruteforce(groups in groups_strategy()) {
        let input = SimpleInput {
            total_groups: groups.len() as u32,
            groups: groups.clone(),
            min_groups: 1,
        };
        let large = default_pool()[0].mine(&input);
        for (set, count) in &large {
            let brute = groups.iter().filter(|g| is_subset(set, g)).count() as u32;
            prop_assert_eq!(*count, brute, "count of {:?}", set);
        }
    }

    #[test]
    fn lattice_rules_verify_against_bruteforce(groups in groups_strategy(),
                                               min_groups in 1u32..3) {
        // Build general contexts from plain baskets and check every rule's
        // support/confidence against direct counting.
        let tuples: Vec<GeneralTuple> = groups.iter().enumerate()
            .flat_map(|(g, items)| items.iter().map(move |&i| GeneralTuple {
                gid: g as u32, cid: None, bid: Some(i), hid: Some(i),
            }))
            .collect();
        let contexts = build_contexts(&tuples, None, None, BuildOptions {
            clustered: false, has_couples: false, distinct_head: false, min_groups,
        });
        let total = groups.len() as u32;
        let rules = mine_general(&contexts, &GeneralParams {
            total_groups: total,
            min_groups,
            min_confidence: 0.0001,
            body_card: CardSpec::one_to_n(),
            head_card: CardSpec { min: 1, max: CardMax::Fixed(2) },
            order: ExpansionOrder::MinParent,
        }).unwrap();
        for r in &rules {
            let mut union: Vec<u32> = r.body.iter().chain(r.head.iter()).copied().collect();
            union.sort_unstable();
            let rule_count = groups.iter().filter(|g| is_subset(&union, g)).count() as u32;
            let body_count = groups.iter().filter(|g| is_subset(&r.body, g)).count() as u32;
            prop_assert_eq!(r.group_count, rule_count, "support count of {:?}", r);
            prop_assert!((r.support - rule_count as f64 / total as f64).abs() < 1e-9);
            prop_assert!((r.confidence - rule_count as f64 / body_count as f64).abs() < 1e-9,
                "confidence of {:?}: body_count={}", r, body_count);
            prop_assert!(r.head.len() <= 2, "head cardinality cap");
        }
    }

    #[test]
    fn cardspec_admits_is_interval(min in 1u32..4, extra in 0u32..4, k in 0usize..8) {
        let spec = CardSpec { min, max: CardMax::Fixed(min + extra) };
        prop_assert!(spec.is_valid());
        let admitted = spec.admits(k);
        prop_assert_eq!(admitted, (k as u32) >= min && (k as u32) <= min + extra);
    }

    #[test]
    fn statement_display_parse_roundtrip(support in 0.01f64..1.0,
                                         confidence in 0.01f64..1.0,
                                         card_min in 1u32..3,
                                         unbounded in any::<bool>()) {
        let card = if unbounded {
            format!("{card_min}..n")
        } else {
            format!("{card_min}..{}", card_min + 1)
        };
        let text = format!(
            "MINE RULE R AS SELECT DISTINCT {card} item AS BODY, 1..1 item AS HEAD, \
             SUPPORT, CONFIDENCE FROM t GROUP BY g \
             EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: {confidence}"
        );
        let s1 = parse_mine_rule(&text).unwrap();
        let s2 = parse_mine_rule(&s1.to_string()).unwrap();
        prop_assert_eq!(s1, s2);
    }
}

#[test]
fn min_groups_threshold_is_exact_boundary() {
    // ceil semantics: with 10 groups and support 0.25, an itemset needs
    // ≥ 3 groups (2/10 = 0.2 < 0.25 ≤ 3/10).
    for (total, s, expect) in [(10u64, 0.25, 3u64), (8, 0.5, 4), (3, 0.34, 2), (100, 0.01, 1)] {
        assert_eq!(minerule::preprocess::min_groups_for(total, s), expect);
    }
}
