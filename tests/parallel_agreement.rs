//! The parallel executor's determinism contract, end to end: for every
//! member of the algorithm pool and worker counts {1, 2, 4, 7}, the
//! sharded run must produce an itemset inventory and rule set
//! *bit-identical* (after the canonical sort) to the sequential run —
//! on generated Quest and retail workloads and on degenerate inputs.

use datagen::{generate_quest, generate_retail, QuestConfig, RetailConfig};
use minerule::algo::{default_pool, sort_itemsets, LargeItemset, ShardExec, SimpleInput};
use minerule::ast::CardSpec;
use minerule::core_op::{run_core, CoreOptions};
use minerule::directives::{Directives, StatementClass};
use minerule::encoded::{EncodedData, EncodedInput};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn quest_input(transactions: usize, min_support: f64, seed: u64) -> SimpleInput {
    let data = generate_quest(&QuestConfig {
        transactions,
        avg_transaction_size: 6.0,
        avg_pattern_size: 3.0,
        patterns: 20,
        items: 60,
        seed,
        ..QuestConfig::default()
    });
    let total = data.transactions.len() as u32;
    SimpleInput {
        groups: data.transactions,
        total_groups: total,
        min_groups: ((total as f64 * min_support).ceil() as u32).max(1),
    }
}

/// Retail purchases flattened to per-customer baskets (gid = customer),
/// with item names encoded to dense ids in first-seen order.
fn retail_input(customers: usize, min_support: f64, seed: u64) -> SimpleInput {
    let data = generate_retail(&RetailConfig {
        customers,
        dates_per_customer: 3,
        items_per_date: 2.5,
        catalog: 30,
        expensive_items: 8,
        seed,
        ..RetailConfig::default()
    });
    let mut encode: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    let mut baskets: std::collections::BTreeMap<&str, Vec<u32>> = std::collections::BTreeMap::new();
    for row in &data.rows {
        let next = encode.len() as u32;
        let id = *encode.entry(row.item.as_str()).or_insert(next);
        baskets.entry(row.customer.as_str()).or_default().push(id);
    }
    let mut groups: Vec<Vec<u32>> = baskets.into_values().collect();
    for g in &mut groups {
        g.sort_unstable();
        g.dedup();
    }
    let total = groups.len() as u32;
    SimpleInput {
        groups,
        total_groups: total,
        min_groups: ((total as f64 * min_support).ceil() as u32).max(1),
    }
}

/// Every pool member, every worker count: inventory identical to the
/// one-worker run of the same algorithm.
fn check_all_workers(input: &SimpleInput, label: &str) {
    for miner in default_pool() {
        let mut baseline: Option<Vec<LargeItemset>> = None;
        for workers in WORKER_COUNTS {
            let exec = ShardExec::new(workers);
            let mut got = miner.mine_sharded(input, &exec);
            sort_itemsets(&mut got);
            match &baseline {
                None => baseline = Some(got),
                Some(b) => assert_eq!(
                    &got,
                    b,
                    "{label}: {} diverges at workers={workers}",
                    miner.name()
                ),
            }
        }
    }
}

#[test]
fn quest_inventories_are_worker_count_invariant() {
    for (transactions, support, seed) in [(120, 0.05, 11), (200, 0.02, 12)] {
        let input = quest_input(transactions, support, seed);
        assert!(!input.groups.is_empty());
        check_all_workers(&input, &format!("quest n={transactions} s={support}"));
    }
}

#[test]
fn retail_inventories_are_worker_count_invariant() {
    for (customers, support, seed) in [(60, 0.08, 21), (100, 0.04, 22)] {
        let input = retail_input(customers, support, seed);
        assert!(!input.groups.is_empty());
        check_all_workers(&input, &format!("retail c={customers} s={support}"));
    }
}

#[test]
fn empty_group_list_yields_nothing_for_any_worker_count() {
    let input = SimpleInput {
        groups: vec![],
        total_groups: 0,
        min_groups: 1,
    };
    for miner in default_pool() {
        for workers in WORKER_COUNTS {
            let got = miner.mine_sharded(&input, &ShardExec::new(workers));
            assert!(
                got.is_empty(),
                "{} produced itemsets from nothing at workers={workers}",
                miner.name()
            );
        }
    }
}

#[test]
fn single_group_agrees_across_worker_counts() {
    // More workers than groups: the executor must degrade to one shard.
    let input = SimpleInput {
        groups: vec![vec![2, 5, 9]],
        total_groups: 1,
        min_groups: 1,
    };
    check_all_workers(&input, "single group");
    let got = default_pool()[0].mine_sharded(&input, &ShardExec::new(7));
    assert_eq!(got.len(), 7, "2^3 - 1 subsets");
}

#[test]
fn rule_sets_are_worker_count_invariant_through_run_core() {
    // Through the full core operator (rules, not just itemsets), with the
    // canonical (body, head) sort applied by run_core itself.
    let quest = quest_input(150, 0.03, 33);
    let input = EncodedInput {
        directives: Directives::default(),
        class: StatementClass::Simple,
        total_groups: quest.total_groups,
        min_groups: quest.min_groups,
        min_support: 0.03,
        min_confidence: 0.1,
        body_card: CardSpec::one_to_n(),
        head_card: CardSpec::one_to_one(),
        data: EncodedData::Simple {
            groups: quest
                .groups
                .iter()
                .enumerate()
                .map(|(g, items)| (g as u32, items.clone()))
                .collect(),
        },
    };
    for algorithm in [
        "apriori",
        "count",
        "dhp",
        "partition",
        "sampling",
        "eclat",
        "fpgrowth",
    ] {
        let mut baseline = None;
        for workers in WORKER_COUNTS {
            let out = run_core(
                &input,
                &CoreOptions {
                    algorithm: algorithm.into(),
                    workers,
                    ..CoreOptions::default()
                },
            )
            .unwrap();
            assert!(!out.used_general);
            match &baseline {
                None => baseline = Some(out.rules),
                Some(b) => assert_eq!(&out.rules, b, "{algorithm} workers={workers}"),
            }
        }
        assert!(!baseline.unwrap().is_empty(), "{algorithm} found rules");
    }
}

#[test]
fn shard_timings_reflect_worker_count() {
    let input = quest_input(100, 0.05, 44);
    let exec = ShardExec::new(4);
    let _ = default_pool()[0].mine_sharded(&input, &exec);
    let timings = exec.take_shard_timings();
    // At least the L1 pass runs sharded: 4 shards for 100 groups.
    assert!(timings.len() >= 4, "got {} shard timings", timings.len());
}
