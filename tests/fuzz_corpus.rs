//! Regression corpus + fuzz-harness contract tests, under plain
//! `cargo test`.
//!
//! Every repro file in `tests/fuzz_corpus/` replays clean across the
//! quick configuration matrix (the full matrix runs in CI's `fuzz-smoke`
//! job and nightly). The remaining tests pin the harness itself: an
//! injected skew is caught, the shrinker converges to a tiny case that
//! still reproduces, and the shrunk case round-trips through the repro
//! format.

use std::path::{Path, PathBuf};

use tcdm_fuzz::grammar::{gen_case, GenConfig};
use tcdm_fuzz::matrix::{
    diverges_between, run_case, Config, DivergenceKind, Matrix, MatrixOptions, Skew,
};
use tcdm_fuzz::repro::{parse_repro, to_repro, ReproHeader};
use tcdm_fuzz::shrink::shrink;
use tcdm_fuzz::{FuzzCase, Op};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_corpus")
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcdm_fuzz_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quick_opts(tag: &str) -> MatrixOptions {
    MatrixOptions {
        matrix: Matrix::Quick,
        work_dir: work_dir(tag),
        ..MatrixOptions::default()
    }
}

#[test]
fn corpus_replays_clean_across_the_quick_matrix() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 8,
        "corpus has shrunk to {} entries — regressions must be added, not removed",
        entries.len()
    );
    let opts = quick_opts("corpus");
    for (i, path) in entries.iter().enumerate() {
        let text = std::fs::read_to_string(path).unwrap();
        let repro = parse_repro(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            !repro.case.ops.is_empty(),
            "{}: corpus entry has no checked operations",
            path.display()
        );
        let report = run_case(&repro.case, &opts, &format!("corpus{i}"))
            .unwrap_or_else(|d| panic!("{} diverged:\n{d}", path.display()));
        assert_eq!(report.configs, Matrix::Quick.configs().len());
    }
    let _ = std::fs::remove_dir_all(&opts.work_dir);
}

#[test]
fn injected_skew_is_caught_and_shrinks_to_a_tiny_repro() {
    // A deliberately skewed runner (compiled expressions drop the last
    // SELECT row) must diverge on a generated case, and the shrinker
    // must take the case down to a handful of rows that still
    // reproduces — the acceptance bar for the whole harness.
    let opts = MatrixOptions {
        skew: Skew::CompiledDropsLastRow,
        ..quick_opts("skew")
    };
    let gen_cfg = GenConfig::default();
    let mut caught: Option<(FuzzCase, Config, Config)> = None;
    for i in 0..16 {
        let case = gen_case(7, i, &gen_cfg);
        if let Err(div) = run_case(&case, &opts, &format!("skew{i}")) {
            assert_eq!(div.kind, DivergenceKind::Matrix);
            assert!(div.config.contains("sqlexec=compiled"), "{}", div.config);
            let b = tcdm_fuzz::matrix::config_by_label(Matrix::Quick, &div.config).unwrap();
            caught = Some((case, Config::baseline(), b));
            break;
        }
    }
    let (case, a, b) = caught.expect("skewed runner never diverged in 16 cases");

    let mut oracle = |c: &FuzzCase| {
        diverges_between(
            c,
            &a,
            &b,
            Skew::CompiledDropsLastRow,
            &opts.work_dir,
            "shrinkt",
        )
        .is_some()
    };
    assert!(oracle(&case), "pair oracle must reproduce the divergence");
    let small = shrink(&case, &mut oracle);
    assert!(oracle(&small), "shrunk case must still reproduce");
    assert!(
        small.row_count() <= 10,
        "shrunk case still has {} rows",
        small.row_count()
    );
    assert!(
        small.ops.len() <= 2,
        "shrunk case still has {} ops",
        small.ops.len()
    );

    // The shrunk repro round-trips through the replayer format and the
    // parsed case still reproduces the divergence.
    let header = ReproHeader {
        kind: Some("matrix".into()),
        config: Some(b.label()),
        against: Some(a.label()),
        skew: Some("compiled-drop-row".into()),
        note: Some("tests/fuzz_corpus.rs".into()),
    };
    let text = to_repro(&small, &header);
    let parsed = parse_repro(&text).expect("shrunk repro parses");
    assert_eq!(parsed.case, small);
    assert_eq!(parsed.header, header);
    assert!(oracle(&parsed.case), "replayed case must still reproduce");

    // Without the skew the same case is clean: the divergence was the
    // injected fault, not a real bug.
    assert!(
        diverges_between(&small, &a, &b, Skew::None, &opts.work_dir, "shrinkc").is_none(),
        "shrunk case must be clean without the injected skew"
    );
    let _ = std::fs::remove_dir_all(&opts.work_dir);
}

#[test]
fn mine_skew_is_caught_on_the_bitset_axis() {
    let opts = MatrixOptions {
        skew: Skew::BitsetDropsLastRule,
        ..quick_opts("mskew")
    };
    let gen_cfg = GenConfig::default();
    for i in 0..16 {
        let case = gen_case(3, i, &gen_cfg);
        if let Err(div) = run_case(&case, &opts, &format!("mskew{i}")) {
            assert!(
                div.config.contains("gidset=bitset"),
                "skew must surface on a bitset config: {}",
                div.config
            );
            assert!(
                matches!(case.ops.get(div.op.unwrap()), Some(Op::Mine(_))),
                "divergence must point at a mine op"
            );
            let _ = std::fs::remove_dir_all(&opts.work_dir);
            return;
        }
    }
    panic!("bitset skew never diverged in 16 cases");
}

#[test]
fn generated_cases_pass_the_quick_matrix() {
    // A small always-on slice of the fuzzer itself: fresh cases from a
    // fixed seed, against the quick matrix with the reference oracle.
    let opts = quick_opts("gen");
    let gen_cfg = GenConfig::default();
    for i in 0..6 {
        let case = gen_case(0xC0FFEE, i, &gen_cfg);
        run_case(&case, &opts, &format!("gen{i}"))
            .unwrap_or_else(|d| panic!("seed=0xC0FFEE case={i} diverged:\n{d}"));
    }
    let _ = std::fs::remove_dir_all(&opts.work_dir);
}
