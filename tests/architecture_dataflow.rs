//! Experiment F3/F4: the kernel's dataflow matches Figure 3a / Figure 4 —
//! every intermediate artefact of the architecture exists in the DBMS
//! with the documented shape, and the components communicate only through
//! the database and the directives.

use datagen::{generate_retail, RetailConfig};
use minerule::paper_example::{purchase_db, FILTERED_ORDERED_SETS};
use minerule::MineRuleEngine;
use relational::Value;

#[test]
fn general_statement_materialises_figure4b_tables() {
    let mut db = purchase_db();
    MineRuleEngine::new()
        .execute(&mut db, FILTERED_ORDERED_SETS)
        .unwrap();

    // Figure 4a artefacts.
    for table in ["Source", "ValidGroups", "DistinctGroupsInBody", "Bset"] {
        assert!(db.catalog().has_table(table), "{table} missing");
    }
    // Figure 4b artefacts for C=1, K=1, M=1, H=0.
    for table in [
        "Clusters",
        "ClusterCouples",
        "MiningSource",
        "InputRulesRaw",
        "LargeRules",
        "InputRules",
    ] {
        assert!(db.catalog().has_table(table), "{table} missing");
    }
    assert!(!db.catalog().has_table("Hset"), "H=0: no head encoding");
    // CodedSource is a *view* over MiningSource in the general case (Q11:
    // "there is no computation").
    assert!(db.catalog().has_view("CodedSource"));
    assert!(!db.catalog().has_table("CodedSource"));

    // :totg counts the two customers; :mingroups = ceil(2 * 0.2) = 1.
    assert_eq!(db.var("totg"), Some(&Value::Int(2)));
    assert_eq!(db.var("mingroups"), Some(&Value::Int(1)));
}

#[test]
fn simple_statement_materialises_only_figure4a_tables() {
    // Under the naive planner the full step-by-step Figure 4a program
    // runs, materialising every intermediate.
    let mut db = purchase_db();
    MineRuleEngine::new()
        .with_planner(relational::PlannerMode::Naive)
        .execute(
            &mut db,
            "MINE RULE Simple AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
             SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap();
    // W=0: Q0 skipped, no materialised Source.
    assert!(!db.catalog().has_table("Source"));
    for table in ["ValidGroups", "DistinctGroupsInBody", "Bset", "CodedSource"] {
        assert!(db.catalog().has_table(table), "{table} missing");
    }
    for table in [
        "Clusters",
        "ClusterCouples",
        "MiningSource",
        "InputRules",
        "Hset",
    ] {
        assert!(!db.catalog().has_table(table), "{table} must not exist");
    }
}

#[test]
fn fused_preprocessing_skips_the_subsumed_intermediates() {
    // Under the cost planner (the default) the simple-class program runs
    // as one fused pass: the encoded outputs still materialise, but the
    // subsumed intermediates never reach the catalog.
    let mut db = purchase_db();
    let outcome = MineRuleEngine::new()
        .execute(
            &mut db,
            "MINE RULE Simple AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
             SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap();
    assert_eq!(outcome.preprocess_report.fused_steps, 6);
    assert!(!db.catalog().has_table("Source"));
    for table in ["ValidGroups", "Bset", "CodedSource"] {
        assert!(db.catalog().has_table(table), "{table} missing");
    }
    assert!(
        !db.catalog().has_table("DistinctGroupsInBody"),
        "the fused pass must not materialise DistinctGroupsInBody"
    );
    assert!(
        !db.catalog().has_view("ValidGroupsView"),
        "the fused pass must not materialise the Q2 view"
    );
}

#[test]
fn coded_source_schema_adapts_to_directives() {
    // The schema of CodedSource "is not fixed, but changes depending on
    // which of C, H and M is set to true" (§4.2.2).
    let mut db = purchase_db();
    MineRuleEngine::new()
        .execute(&mut db, FILTERED_ORDERED_SETS)
        .unwrap();
    let rs = db.query("SELECT * FROM CodedSource LIMIT 1").unwrap();
    let names: Vec<&str> = rs
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(names, vec!["Gid", "Cid", "Bid"], "C=1, H=0");

    // A simple statement: only (Gid, Bid).
    let mut db = purchase_db();
    MineRuleEngine::new()
        .execute(
            &mut db,
            "MINE RULE S AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap();
    let rs = db.query("SELECT * FROM CodedSource LIMIT 1").unwrap();
    let names: Vec<&str> = rs
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(names, vec!["Gid", "Bid"]);
}

#[test]
fn bset_encodes_only_large_items() {
    let mut db = purchase_db();
    MineRuleEngine::new()
        .execute(
            &mut db,
            // support 1.0 → items must appear for *every* customer.
            "MINE RULE S AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 1.0, CONFIDENCE: 0.1",
        )
        .unwrap();
    let rs = db.query("SELECT item FROM Bset").unwrap();
    assert_eq!(rs.len(), 1, "only jackets is bought by both customers");
    assert_eq!(rs.rows()[0][0], Value::Str("jackets".into()));
}

#[test]
fn shared_preprocessing_reuse_yields_identical_rules() {
    // §3: "the same preprocessing could be in common to the execution of
    // several data mining queries, thus saving its cost."
    let data = generate_retail(&RetailConfig {
        customers: 80,
        ..RetailConfig::default()
    });
    let mut db = relational::Database::new();
    data.load(&mut db, "Purchase").unwrap();
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
                EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.2";
    let engine = MineRuleEngine::new();
    let fresh = engine.execute(&mut db, stmt).unwrap();
    let reused = engine.execute_reusing_preprocessing(&mut db, stmt).unwrap();
    assert_eq!(fresh.rules, reused.rules);
    assert_eq!(
        reused.preprocess_report.executed.len(),
        0,
        "no preprocessing queries on the reuse path"
    );
}

#[test]
fn prefixed_sessions_coexist() {
    // Two engines with different table prefixes share one catalog without
    // clobbering each other's encoded tables.
    let mut db = purchase_db();
    let a = MineRuleEngine::new().with_prefix("A_");
    let b = MineRuleEngine::new().with_prefix("B_");
    let out_a = a
        .execute(
            &mut db,
            "MINE RULE RulesA AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap();
    let out_b = b
        .execute(
            &mut db,
            "MINE RULE RulesB AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY tr \
             EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1",
        )
        .unwrap();
    assert!(db.catalog().has_table("A_Bset") && db.catalog().has_table("B_Bset"));
    assert!(db.catalog().has_table("RulesA") && db.catalog().has_table("RulesB"));
    // Grouping by tr instead of customer changes supports.
    assert_ne!(out_a.rules, out_b.rules);
}

#[test]
fn algorithm_choice_is_invisible_downstream() {
    // Algorithm interoperability (§3): swapping the core algorithm leaves
    // every downstream artefact identical.
    let mut db = purchase_db();
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY tr \
                EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5";
    let with_apriori = MineRuleEngine::new()
        .with_algorithm("apriori")
        .execute(&mut db, stmt)
        .unwrap();
    let rules_table_1 = db.query("SELECT * FROM R").unwrap().sorted();
    let with_partition = MineRuleEngine::new()
        .with_algorithm("partition")
        .execute(&mut db, stmt)
        .unwrap();
    let rules_table_2 = db.query("SELECT * FROM R").unwrap().sorted();
    assert_eq!(with_apriori.rules, with_partition.rules);
    assert_eq!(rules_table_1, rules_table_2);
}
