//! Planner-mode agreement: the cost-based planner (statistics-driven
//! join ordering, build-side selection and the fused simple-class
//! preprocess pass) must be observably identical to the naive planner —
//! bit-identical rules, rows *and row order* — across grammar-generated
//! workloads, SQL execution modes and worker counts. The second half
//! pins the catalog-statistics maintenance the planner relies on:
//! incremental upkeep across INSERT/UPDATE/DELETE/TRUNCATE, version
//! stamping, and survival of a persist/reload cycle.

use minerule::paper_example::purchase_db;
use minerule::MineRuleEngine;
use relational::{persist, Database, PlannerMode, SqlExec, Value};
use tcdm_fuzz::grammar::{gen_case, GenConfig};
use tcdm_fuzz::matrix::{diverges_between, Config, Skew};

fn work_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tcdm_planner_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A simple-class statement over the paper's Purchase table.
const SIMPLE: &str = "MINE RULE R AS \
    SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
    FROM Purchase GROUP BY customer \
    EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5";

// ---------------------------------------------------------------------
// Agreement across the planner × sqlexec × workers cross-product
// ---------------------------------------------------------------------

#[test]
fn grammar_cases_agree_across_planner_sqlexec_and_workers() {
    // Grammar-generated workloads (DDL + DML + SELECTs + MINE RULE)
    // replayed under every planner × sqlexec × workers combination must
    // produce outcomes bit-identical to the naive baseline: same rule
    // signatures (float bits included), same sorted SELECT rows, same
    // DML counts, same error texts.
    let dir = work_dir("grammar");
    let base = Config::baseline();
    assert_eq!(base.planner, PlannerMode::Naive, "baseline is naive");
    let gen_cfg = GenConfig::default();
    for case_no in 0..4 {
        let case = gen_case(0x51A77, case_no, &gen_cfg);
        for planner in [PlannerMode::Naive, PlannerMode::Cost] {
            for sqlexec in [SqlExec::Interpreted, SqlExec::Compiled] {
                for workers in [1usize, 2, 4] {
                    let variant = Config {
                        planner,
                        sqlexec,
                        workers,
                        ..base
                    };
                    if variant == base {
                        continue;
                    }
                    let tag = format!("pa{case_no}_{}_{}_{workers}", planner.name(), sqlexec);
                    if let Some(d) =
                        diverges_between(&case, &base, &variant, Skew::None, &dir, &tag)
                    {
                        panic!("case {case_no} diverged:\n{d}");
                    }
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fused_and_naive_preprocessing_materialise_identical_encoded_tables() {
    // The fused pass must leave the *exact* encoded tables the SQL
    // program leaves: same schema names, same rows, same row order, same
    // Gid/Bid assignments, same host-variable bindings.
    let run = |mode: PlannerMode| {
        let mut db = purchase_db();
        let outcome = MineRuleEngine::new()
            .with_planner(mode)
            .execute(&mut db, SIMPLE)
            .unwrap();
        let mut dump = |sql: &str| {
            let rs = db.query(sql).unwrap();
            let cols: Vec<String> = rs
                .schema()
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect();
            let rows: Vec<String> = rs.rows().iter().map(|r| format!("{r:?}")).collect();
            (cols, rows)
        };
        let tables = [
            dump("SELECT * FROM ValidGroups"),
            dump("SELECT * FROM Bset"),
            dump("SELECT * FROM CodedSource"),
        ];
        let vars = (db.var("totg").cloned(), db.var("mingroups").cloned());
        (outcome, tables, vars)
    };
    let (fused, fused_tables, fused_vars) = run(PlannerMode::Cost);
    let (naive, naive_tables, naive_vars) = run(PlannerMode::Naive);

    assert_eq!(fused.preprocess_report.fused_steps, 6);
    assert_eq!(naive.preprocess_report.fused_steps, 0);
    assert_eq!(fused.rules, naive.rules, "bit-identical decoded rules");
    assert_eq!(fused_tables, naive_tables, "encoded tables differ");
    assert_eq!(fused_vars, naive_vars, ":totg/:mingroups differ");
}

#[test]
fn general_class_statements_never_fuse() {
    // A statement outside the fusion gate (here: a grouped HAVING sets
    // the G directive) runs the step-by-step program even under the cost
    // planner, and still matches the naive planner bit for bit.
    let stmt = "MINE RULE G AS \
        SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
        FROM Purchase GROUP BY customer HAVING COUNT(item) >= 2 \
        EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5";
    let run = |mode: PlannerMode| {
        let mut db = purchase_db();
        let outcome = MineRuleEngine::new()
            .with_planner(mode)
            .execute(&mut db, stmt)
            .unwrap();
        (outcome.rules, outcome.preprocess_report.fused_steps)
    };
    let (cost_rules, cost_fused) = run(PlannerMode::Cost);
    let (naive_rules, naive_fused) = run(PlannerMode::Naive);
    assert_eq!(cost_fused, 0, "G directive must disable fusion");
    assert_eq!(naive_fused, 0);
    assert_eq!(cost_rules, naive_rules);
}

// ---------------------------------------------------------------------
// Catalog statistics maintenance
// ---------------------------------------------------------------------

#[test]
fn stats_track_insert_update_delete_truncate() {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (a INT, b TEXT)").unwrap();
    let stats = |db: &Database| {
        let t = db.catalog().table("T").unwrap();
        assert_eq!(
            t.stats().as_of_version(),
            t.version(),
            "stats stamp must never lag the table version"
        );
        (
            t.stats().row_count(),
            t.stats().distinct(0),
            t.stats().distinct(1),
        )
    };
    assert_eq!(stats(&db), (0, Some(0), Some(0)));

    // INSERT maintains incrementally.
    for (a, b) in [(1, "x"), (2, "y"), (3, "x"), (3, "z")] {
        db.execute(&format!("INSERT INTO T VALUES ({a}, '{b}')"))
            .unwrap();
    }
    assert_eq!(stats(&db), (4, Some(3), Some(3)));

    // UPDATE rewrites the rows and the statistics follow.
    db.execute("UPDATE T SET b = 'x' WHERE a = 2").unwrap();
    assert_eq!(stats(&db), (4, Some(3), Some(2)));

    // DELETE rebuilds over the survivors (sketches cannot subtract).
    db.execute("DELETE FROM T WHERE a = 3").unwrap();
    assert_eq!(stats(&db), (2, Some(2), Some(1)));

    // Truncation resets to empty (the SQL surface has no TRUNCATE; the
    // engine truncates through the table API, e.g. for UPDATE rewrites).
    db.catalog_mut().table_mut("T").unwrap().truncate();
    assert_eq!(stats(&db), (0, Some(0), Some(0)));
}

#[test]
fn stats_survive_persist_and_reload() {
    let dir = work_dir("persist");
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = purchase_db();
    db.execute("INSERT INTO Purchase VALUES (10, 'c3', 'boots', DATE '2026-01-05', 140, 1)")
        .unwrap();
    let before = {
        let t = db.catalog().table("Purchase").unwrap();
        (t.stats().row_count(), t.stats().distinct(1))
    };
    assert_eq!(before.0, 9);
    persist::save(&db, &dir).unwrap();

    let reloaded = persist::load(&dir).unwrap();
    let t = reloaded.catalog().table("Purchase").unwrap();
    assert_eq!((t.stats().row_count(), t.stats().distinct(1)), before);
    assert_eq!(
        t.stats().as_of_version(),
        t.version(),
        "reloaded stats must describe the reloaded (fresh) version"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cost_planner_plans_baseref_joins_and_matches_the_naive_fold() {
    // Both join inputs resolve to base tables (BaseRef provenance); the
    // cost planner must consult their statistics (accounted through the
    // planner counters and the EXPLAIN estimates) while producing rows
    // bit-identical to the naive fold — order included.
    let mut db = Database::new();
    db.execute("CREATE TABLE Big (k INT, pad TEXT)").unwrap();
    db.execute("CREATE TABLE Small (k INT)").unwrap();
    for i in 0..200 {
        db.execute(&format!("INSERT INTO Big VALUES ({}, 'p{i}')", i % 50))
            .unwrap();
    }
    for i in 0..5 {
        db.execute(&format!("INSERT INTO Small VALUES ({i})"))
            .unwrap();
    }
    let join = "SELECT b.k, s.k FROM Big b, Small s WHERE b.k = s.k";
    let explain = db.query(&format!("EXPLAIN {join}")).unwrap();
    let plan: Vec<String> = explain.rows().iter().map(|r| r[0].to_string()).collect();
    let plan = plan.join("\n");
    assert!(
        plan.contains("(est ") && plan.contains("cost "),
        "cost planner must annotate its estimates: {plan}"
    );

    let before = db.stats();
    let cost = db.query(join).unwrap();
    let after = db.stats();
    assert!(
        after.planner_plans > before.planner_plans,
        "the cost planner must account the planned join"
    );

    db.set_planner(PlannerMode::Naive);
    let naive = db.query(join).unwrap();
    assert_eq!(cost.rows(), naive.rows(), "row order must match the fold");
    assert_eq!(cost.rows().len(), 20);

    // The sequence of values matters too: canonical order is the
    // left-to-right fold's order.
    let first: Vec<&Value> = cost.rows()[0].iter().collect();
    assert_eq!(first, vec![&Value::Int(0), &Value::Int(0)]);
}
