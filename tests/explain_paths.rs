//! EXPLAIN access-path snapshots over the paper's own data: the Figure 1
//! `Purchase` table and the §2 / Figure 2b mined-output join shapes. The
//! plans must state the access path — `index(<table>.<cols>)` under the
//! default `auto` policy, `scan` under `off` — so the tightly-coupled
//! claim ("the SQL server does the data management") stays inspectable.

use minerule::paper_example::{purchase_db, FILTERED_ORDERED_SETS};
use minerule::MineRuleEngine;
use relational::{Database, IndexPolicy, PlannerMode};

fn plan(db: &mut Database, sql: &str) -> String {
    let rs = db.query(&format!("EXPLAIN {sql}")).unwrap();
    rs.rows()
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Figure 1's Purchase table grouped by customer — the shape of the
/// translator's `Q1` (`ValidGroups`: one row per group).
const GROUPED: &str = "SELECT customer, COUNT(*) AS purchases FROM Purchase GROUP BY customer";

#[test]
fn figure1_grouping_uses_an_index_under_auto() {
    let mut db = purchase_db();
    assert_eq!(db.index_policy(), IndexPolicy::Auto, "auto is the default");
    let p = plan(&mut db, GROUPED);
    assert!(
        p.contains("hash aggregate by (customer) [index(Purchase.customer)]"),
        "{p}"
    );

    db.set_index_policy(IndexPolicy::Off);
    let p = plan(&mut db, GROUPED);
    assert!(p.contains("hash aggregate by (customer) [scan]"), "{p}");
    assert!(!p.contains("[index("), "{p}");
}

#[test]
fn figure2b_output_join_reports_its_access_path() {
    let mut db = purchase_db();
    MineRuleEngine::new()
        .execute(&mut db, FILTERED_ORDERED_SETS)
        .unwrap();
    // The Figure 2b decode shape: the rule table joined to its bodies.
    let join = "SELECT r.SUPPORT, b.item FROM FilteredOrderedSets r, \
                FilteredOrderedSets_Bodies b WHERE r.BodyId = b.BodyId";
    let p = plan(&mut db, join);
    assert!(
        p.contains("hash join on: r.BodyId = b.BodyId [index(FilteredOrderedSets_Bodies.BodyId)]"),
        "{p}"
    );

    db.set_index_policy(IndexPolicy::Off);
    let p = plan(&mut db, join);
    assert!(
        p.contains("hash join on: r.BodyId = b.BodyId [scan]"),
        "{p}"
    );
}

#[test]
fn explain_snapshot_is_stable_for_the_figure1_plan() {
    let mut db = purchase_db();
    let p = plan(&mut db, GROUPED);
    // Full snapshot: the plan shape is part of the observable contract.
    // The cost planner (the default) annotates its cardinality estimates;
    // the default exec mode (`auto` with compiled programs) batches, so
    // the aggregate carries a `[vector]` tag.
    assert_eq!(
        p,
        "Select\n  \
         scan Purchase [8 rows]\n  \
         hash aggregate by (customer) [index(Purchase.customer)] [vector] \
         (est 2 groups of 8 rows)",
        "plan drifted"
    );

    // Under the naive planner the estimates disappear: no statistics are
    // consulted, so none are printed.
    db.set_planner(PlannerMode::Naive);
    let p = plan(&mut db, GROUPED);
    assert_eq!(
        p,
        "Select\n  \
         scan Purchase [8 rows]\n  \
         hash aggregate by (customer) [index(Purchase.customer)] [vector]",
        "naive plan drifted"
    );
}

#[test]
fn fused_preprocess_plan_snapshot() {
    // The fused simple-class preprocess pass (cost planner, the default)
    // subsumes six SQL statements into one pipelined scan; the report is
    // the observable "plan" of that fusion: DDL for the two sequences,
    // then one fused step per Q1, Q2, Q3 and Q4 with the rows each
    // materialised (or 1 for pure bindings).
    let mut db = purchase_db();
    let outcome = MineRuleEngine::new()
        .execute(
            &mut db,
            "MINE RULE FusedPlan AS SELECT DISTINCT item AS BODY, item AS HEAD, \
             SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap();
    let report = &outcome.preprocess_report;
    assert_eq!(report.fused_steps, 6, "six SQL statements subsumed");
    let steps: Vec<String> = report
        .executed
        .iter()
        .map(|(id, rows)| format!("{id}[{rows}]"))
        .collect();
    assert_eq!(
        steps.join(" -> "),
        "DDL[1] -> DDL[1] -> Q1[1] -> Q2[2] -> Q3[5] -> Q4[6]",
        "fused preprocess plan drifted"
    );
}
