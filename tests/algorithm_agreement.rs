//! Cross-component agreement on realistic synthetic data: the algorithm
//! pool, the general lattice and the decoupled baseline must all find the
//! same rules whenever they express the same semantics.

use datagen::{generate_quest, load_quest, QuestConfig};
use minerule::{decoupled, MineRuleEngine};
use relational::Database;

fn quest_db(transactions: usize, seed: u64) -> Database {
    let data = generate_quest(&QuestConfig {
        transactions,
        avg_transaction_size: 6.0,
        avg_pattern_size: 3.0,
        patterns: 25,
        items: 80,
        seed,
        ..QuestConfig::default()
    });
    let mut db = Database::new();
    load_quest(&data, &mut db, "Baskets").unwrap();
    db
}

const STATEMENT: &str = "MINE RULE QuestRules AS \
    SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
    FROM Baskets GROUP BY tr \
    EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.4";

#[test]
fn pool_members_agree_on_quest_data() {
    let mut db = quest_db(400, 11);
    let mut reference: Option<Vec<String>> = None;
    for algorithm in [
        "apriori",
        "count",
        "dhp",
        "partition",
        "sampling",
        "eclat",
        "fpgrowth",
    ] {
        let outcome = MineRuleEngine::new()
            .with_algorithm(algorithm)
            .execute(&mut db, STATEMENT)
            .unwrap();
        let rendered: Vec<String> = outcome.rules.iter().map(|r| r.display()).collect();
        assert!(!rendered.is_empty(), "{algorithm} found nothing");
        match &reference {
            None => reference = Some(rendered),
            Some(r) => assert_eq!(&rendered, r, "{algorithm} disagrees"),
        }
    }
}

#[test]
fn simple_core_and_general_lattice_agree() {
    // A statement in the simple class, mined by both core variants: the
    // general lattice must reproduce the simple path bit for bit.
    let mut db = quest_db(300, 23);
    let stmt = "MINE RULE BothPaths AS \
        SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE \
        FROM Baskets GROUP BY tr \
        EXTRACTING RULES WITH SUPPORT: 0.06, CONFIDENCE: 0.3";
    let simple = MineRuleEngine::new().execute(&mut db, stmt).unwrap();
    assert!(!simple.used_general);

    let mut forced = MineRuleEngine::new();
    forced.core.force_general = true;
    let general = forced.execute(&mut db, stmt).unwrap();
    assert!(general.used_general);

    assert!(!simple.rules.is_empty());
    assert_eq!(simple.rules, general.rules);
}

#[test]
fn decoupled_baseline_matches_coupled_rules() {
    let mut db = quest_db(300, 37);
    let coupled = MineRuleEngine::new().execute(&mut db, STATEMENT).unwrap();
    let flat = decoupled::run_decoupled(
        &mut db,
        "SELECT tr, item FROM Baskets",
        0.05,
        0.4,
        "FlatRules",
    )
    .unwrap();
    let mut a: Vec<(Vec<String>, Vec<String>)> = coupled
        .rules
        .iter()
        .map(|r| (r.body.clone(), r.head.clone()))
        .collect();
    let mut b: Vec<(Vec<String>, Vec<String>)> = flat
        .iter()
        .map(|r| (r.body.clone(), r.head.clone()))
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    // Supports and confidences agree too.
    for (c, f) in coupled.rules.iter().zip(flat.iter().map(|r| {
        let mut v = flat.clone();
        v.sort_by(|x, y| x.body.cmp(&y.body).then(x.head.cmp(&y.head)));
        v.into_iter().find(|x| x.body == r.body && x.head == r.head)
    })) {
        let f = f.unwrap();
        assert!((c.support - f.support).abs() < 1e-9);
        assert!((c.confidence - f.confidence).abs() < 1e-9);
    }
}

#[test]
fn lattice_expansion_orders_agree_end_to_end() {
    use minerule::lattice::ExpansionOrder;
    let mut db = quest_db(250, 41);
    let stmt = "MINE RULE Wide AS \
        SELECT DISTINCT 1..n item AS BODY, 1..2 item AS HEAD, SUPPORT, CONFIDENCE \
        WHERE BODY.item <> 'i99999' \
        FROM Baskets GROUP BY tr \
        EXTRACTING RULES WITH SUPPORT: 0.06, CONFIDENCE: 0.2";
    let mut min_parent = MineRuleEngine::new();
    min_parent.core.order = ExpansionOrder::MinParent;
    let mut body_first = MineRuleEngine::new();
    body_first.core.order = ExpansionOrder::BodyFirst;
    let a = min_parent.execute(&mut db, stmt).unwrap();
    let b = body_first.execute(&mut db, stmt).unwrap();
    assert!(a.used_general, "mining condition forces the general path");
    assert_eq!(a.rules, b.rules);
}

#[test]
fn seeds_change_data_but_not_invariants() {
    for seed in [1, 2, 3] {
        let mut db = quest_db(200, seed);
        let outcome = MineRuleEngine::new().execute(&mut db, STATEMENT).unwrap();
        for r in &outcome.rules {
            assert!(r.support >= 0.05 - 1e-9);
            assert!(r.confidence >= 0.4 - 1e-9);
            assert!(r.head.len() == 1);
            for b in &r.body {
                assert!(!r.head.contains(b));
            }
        }
    }
}
