//! Integration tests of the relational substrate itself: the SQL92
//! surface the mining kernel relies on, plus the extensions (set
//! operations, explicit joins, CAST, string functions).

use relational::{Database, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE emp (id INT, name VARCHAR, dept INT, salary FLOAT)")
        .unwrap();
    db.execute(
        "INSERT INTO emp VALUES \
         (1, 'ada', 10, 120.0), (2, 'bob', 10, 90.0), \
         (3, 'cleo', 20, 150.0), (4, 'dan', 30, 80.0)",
    )
    .unwrap();
    db.execute("CREATE TABLE dept (id INT, dname VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO dept VALUES (10, 'eng'), (20, 'sales')")
        .unwrap();
    db
}

#[test]
fn union_dedups_union_all_keeps() {
    let mut d = db();
    let rs = d
        .query("SELECT dept FROM emp UNION SELECT dept FROM emp ORDER BY dept")
        .unwrap();
    assert_eq!(rs.len(), 3);
    let rs = d
        .query("SELECT dept FROM emp UNION ALL SELECT dept FROM emp")
        .unwrap();
    assert_eq!(rs.len(), 8);
}

#[test]
fn intersect_and_except() {
    let mut d = db();
    let rs = d
        .query("SELECT id FROM emp INTERSECT SELECT id FROM dept")
        .unwrap();
    assert_eq!(rs.len(), 0); // emp ids are 1..4, dept ids 10/20
    let rs = d
        .query("SELECT dept FROM emp INTERSECT SELECT id FROM dept ORDER BY dept")
        .unwrap();
    assert_eq!(rs.len(), 2);
    let rs = d
        .query("SELECT dept FROM emp EXCEPT SELECT id FROM dept")
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows()[0][0], Value::Int(30));
}

#[test]
fn set_op_arity_mismatch_rejected() {
    let mut d = db();
    assert!(d
        .query("SELECT id, name FROM emp UNION SELECT id FROM dept")
        .is_err());
}

#[test]
fn explicit_inner_join() {
    let mut d = db();
    let rs = d
        .query(
            "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.id \
             ORDER BY name",
        )
        .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.rows()[0][0], Value::Str("ada".into()));
    assert_eq!(rs.rows()[0][1], Value::Str("eng".into()));
}

#[test]
fn left_outer_join_preserves_unmatched() {
    let mut d = db();
    let rs = d
        .query(
            "SELECT name, dname FROM emp LEFT JOIN dept ON emp.dept = dept.id \
             ORDER BY name",
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
    let dan = rs
        .rows()
        .iter()
        .find(|r| r[0] == Value::Str("dan".into()))
        .unwrap();
    assert_eq!(dan[1], Value::Null, "dept 30 has no match");
}

#[test]
fn join_chain_three_tables() {
    let mut d = db();
    d.execute("CREATE TABLE loc (dept VARCHAR, city VARCHAR)")
        .unwrap();
    d.execute("INSERT INTO loc VALUES ('eng', 'torino'), ('sales', 'milano')")
        .unwrap();
    let rs = d
        .query(
            "SELECT name, city FROM emp \
             JOIN dept ON emp.dept = dept.id \
             JOIN loc ON dept.dname = loc.dept ORDER BY name",
        )
        .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.rows()[2][1], Value::Str("milano".into()));
}

#[test]
fn cross_join_is_cartesian() {
    let mut d = db();
    let rs = d.query("SELECT * FROM emp CROSS JOIN dept").unwrap();
    assert_eq!(rs.len(), 8);
}

#[test]
fn cast_conversions() {
    let mut d = db();
    let rs = d
        .query("SELECT CAST(salary AS INT), CAST(id AS VARCHAR), CAST('2001-02-03' AS DATE) FROM emp WHERE id = 1")
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(120));
    assert_eq!(rs.rows()[0][1], Value::Str("1".into()));
    assert_eq!(rs.rows()[0][2].to_string(), "2001-02-03");
    assert!(d.query("SELECT CAST('abc' AS INT) FROM emp").is_err());
}

#[test]
fn string_functions() {
    let mut d = db();
    let rs = d
        .query(
            "SELECT SUBSTR(name, 1, 2), TRIM('  x  '), CONCAT(name, '-', dept), \
             REPLACE(name, 'a', 'o') FROM emp WHERE id = 1",
        )
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Str("ad".into()));
    assert_eq!(rs.rows()[0][1], Value::Str("x".into()));
    assert_eq!(rs.rows()[0][2], Value::Str("ada-10".into()));
    assert_eq!(rs.rows()[0][3], Value::Str("odo".into()));
}

#[test]
fn order_by_position_and_alias() {
    let mut d = db();
    let rs = d
        .query("SELECT name AS n, salary FROM emp ORDER BY 2 DESC LIMIT 1")
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Str("cleo".into()));
    let rs = d.query("SELECT name AS n FROM emp ORDER BY n").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Str("ada".into()));
}

#[test]
fn aggregates_with_floats_and_groups() {
    let mut d = db();
    let rs = d
        .query(
            "SELECT dept, AVG(salary) AS a, MIN(name) AS m FROM emp \
             GROUP BY dept HAVING COUNT(*) >= 1 ORDER BY dept",
        )
        .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.rows()[0][1], Value::Float(105.0));
    assert_eq!(rs.rows()[0][2], Value::Str("ada".into()));
}

#[test]
fn exists_and_not_exists() {
    let mut d = db();
    let rs = d
        .query("SELECT name FROM emp WHERE EXISTS (SELECT id FROM dept) ORDER BY name")
        .unwrap();
    assert_eq!(rs.len(), 4);
    let rs = d
        .query("SELECT name FROM emp WHERE NOT EXISTS (SELECT id FROM dept WHERE id = 99)")
        .unwrap();
    assert_eq!(rs.len(), 4);
}

#[test]
fn case_expression_in_projection() {
    let mut d = db();
    let rs = d
        .query(
            "SELECT name, CASE WHEN salary >= 100 THEN 'senior' ELSE 'junior' END AS band \
             FROM emp ORDER BY name",
        )
        .unwrap();
    assert_eq!(rs.rows()[0][1], Value::Str("senior".into()));
    assert_eq!(rs.rows()[1][1], Value::Str("junior".into()));
}

#[test]
fn display_roundtrip_for_new_syntax() {
    use relational::sql::parser::parse_statement;
    for sql in [
        "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 LIMIT 3",
        "SELECT a FROM t LEFT JOIN u ON t.x = u.y WHERE a > 1",
        "SELECT CAST(a AS FLOAT) FROM t INTERSECT SELECT b FROM u",
        "SELECT x FROM t EXCEPT SELECT y FROM u",
    ] {
        let s1 = parse_statement(sql).unwrap();
        let s2 = parse_statement(&s1.to_string()).unwrap();
        assert_eq!(s1, s2, "{sql}");
    }
}

#[test]
fn update_and_delete_with_subqueries() {
    let mut d = db();
    d.execute("UPDATE emp SET salary = salary * 2 WHERE dept = (SELECT MIN(id) FROM dept)")
        .unwrap();
    let rs = d.query("SELECT salary FROM emp WHERE id = 1").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Float(240.0));
    d.execute("DELETE FROM emp WHERE dept IN (SELECT id FROM dept)")
        .unwrap();
    assert_eq!(
        d.query("SELECT COUNT(*) FROM emp").unwrap().scalar(),
        Some(&Value::Int(1))
    );
}
