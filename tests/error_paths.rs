//! Failure injection across the pipeline: errors at each stage must be
//! typed, descriptive and non-destructive (the session and the user's
//! data survive every failure).

use minerule::paper_example::purchase_db;
use minerule::{MineError, MineRuleEngine, SemanticViolation};
use relational::Value;

#[test]
fn syntax_error_is_reported_with_position() {
    let mut db = purchase_db();
    let err = MineRuleEngine::new()
        .execute(&mut db, "MINE RULE Broken AS SELECT")
        .unwrap_err();
    assert!(matches!(err, MineError::Syntax { .. }), "{err:?}");
}

#[test]
fn missing_source_table_is_a_sql_error() {
    let mut db = purchase_db();
    let err = MineRuleEngine::new()
        .execute(
            &mut db,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM NoSuchTable GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1",
        )
        .unwrap_err();
    assert!(matches!(err, MineError::Sql(_)), "{err:?}");
}

#[test]
fn semantic_violation_reported_before_any_side_effect() {
    let mut db = purchase_db();
    let tables_before = db.catalog().table_names().len();
    let err = MineRuleEngine::new()
        .execute(
            &mut db,
            // body overlaps grouping: check 2.
            "MINE RULE R AS SELECT DISTINCT customer AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1",
        )
        .unwrap_err();
    assert!(matches!(err, MineError::Semantic(_)));
    assert_eq!(
        db.catalog().table_names().len(),
        tables_before,
        "translation failures must not touch the catalog"
    );
}

#[test]
fn output_table_cannot_clobber_source() {
    let mut db = purchase_db();
    let err = MineRuleEngine::new()
        .execute(
            &mut db,
            "MINE RULE Purchase AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            MineError::Semantic(SemanticViolation::OutputClobbersSource { .. })
        ),
        "{err:?}"
    );
    // Crucially, the source data is intact.
    let rs = db.query("SELECT COUNT(*) FROM Purchase").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(8)));
}

#[test]
fn preprocessing_conflict_names_the_failing_query() {
    let mut db = purchase_db();
    // A *view* named Bset survives the cleanup's DROP TABLE IF EXISTS and
    // collides with Q3's CREATE TABLE.
    db.execute("CREATE VIEW Bset AS (SELECT item FROM Purchase)")
        .unwrap();
    let err = MineRuleEngine::new()
        .execute(
            &mut db,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("Q3"), "failing query id missing: {text}");
}

#[test]
fn reuse_without_prior_preprocessing_fails_cleanly() {
    let mut db = purchase_db();
    let err = MineRuleEngine::new()
        .execute_reusing_preprocessing(
            &mut db,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap_err();
    assert!(matches!(err, MineError::Internal { .. }), "{err:?}");
}

#[test]
fn session_survives_every_failure() {
    let mut db = purchase_db();
    let engine = MineRuleEngine::new();
    let bad = [
        "MINE RULE R AS nonsense",
        "MINE RULE R AS SELECT DISTINCT ghost AS BODY, item AS HEAD FROM Purchase \
         GROUP BY customer EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1",
        "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD FROM Purchase \
         GROUP BY customer EXTRACTING RULES WITH SUPPORT: 2.0, CONFIDENCE: 0.1",
    ];
    for stmt in bad {
        assert!(engine.execute(&mut db, stmt).is_err());
    }
    // After all that, a good statement still runs.
    let outcome = engine
        .execute(
            &mut db,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap();
    assert!(!outcome.rules.is_empty());
}

#[test]
fn zero_workers_is_rejected_like_an_unknown_algorithm() {
    let mut db = purchase_db();
    let mut engine = MineRuleEngine::new().with_workers(0);
    let err = engine
        .execute(
            &mut db,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap_err();
    assert!(matches!(err, MineError::InvalidWorkerCount { value: 0 }));
    // Same user-facing shape as UnknownAlgorithm: name the offending
    // value and the valid domain.
    let message = err.to_string();
    assert!(message.contains("'0'"), "{message}");
    assert!(message.contains("at least 1"), "{message}");
    // The session recovers once the setting is corrected.
    engine.core.workers = 1;
    assert!(engine
        .execute(
            &mut db,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .is_ok());
}

#[test]
fn unknown_sqlexec_is_rejected_like_an_unknown_algorithm() {
    let err = minerule::parse_sqlexec("vectorized").unwrap_err();
    assert!(
        matches!(err, MineError::UnknownSqlExec { ref name } if name == "vectorized"),
        "{err:?}"
    );
    // Same user-facing shape as UnknownAlgorithm: name the offending
    // value and the valid domain.
    let message = err.to_string();
    assert!(message.contains("'vectorized'"), "{message}");
    for choice in ["compiled", "interpreted", "auto"] {
        assert!(message.contains(choice), "{message}");
    }
    // Valid names parse regardless of ASCII case.
    for (name, mode) in [
        ("compiled", relational::SqlExec::Compiled),
        ("INTERPRETED", relational::SqlExec::Interpreted),
        ("Auto", relational::SqlExec::Auto),
    ] {
        assert_eq!(minerule::parse_sqlexec(name).unwrap(), mode);
    }
}

#[test]
fn unknown_cache_mode_is_rejected_like_an_unknown_algorithm() {
    let err = minerule::parse_preprocache("maybe").unwrap_err();
    assert!(
        matches!(err, MineError::UnknownCacheMode { ref name } if name == "maybe"),
        "{err:?}"
    );
    // Same user-facing shape as UnknownAlgorithm: name the offending
    // value and the valid domain.
    let message = err.to_string();
    assert!(message.contains("'maybe'"), "{message}");
    assert!(message.contains("on, off"), "{message}");
    // Valid names parse regardless of ASCII case.
    assert!(minerule::parse_preprocache("ON").unwrap());
    assert!(!minerule::parse_preprocache("off").unwrap());
}

#[test]
fn unknown_index_policy_is_rejected_like_an_unknown_algorithm() {
    let err = minerule::parse_index_policy("fast").unwrap_err();
    assert!(
        matches!(err, MineError::UnknownIndexPolicy { ref name } if name == "fast"),
        "{err:?}"
    );
    // Same user-facing shape as UnknownAlgorithm: name the offending
    // value and the valid domain.
    let message = err.to_string();
    assert!(message.contains("'fast'"), "{message}");
    assert!(message.contains("auto, off"), "{message}");
    // Valid names parse regardless of ASCII case.
    for (name, policy) in [
        ("auto", relational::IndexPolicy::Auto),
        ("OFF", relational::IndexPolicy::Off),
    ] {
        assert_eq!(minerule::parse_index_policy(name).unwrap(), policy);
    }
}

#[test]
fn unknown_algorithm_fails_after_preprocessing_but_session_recovers() {
    let mut db = purchase_db();
    let mut engine = MineRuleEngine::new();
    engine.core.algorithm = "made-up".into();
    let err = engine
        .execute(
            &mut db,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .unwrap_err();
    assert!(matches!(err, MineError::UnknownAlgorithm { .. }));
    // The message is user-facing: it names the offender and the pool.
    let message = err.to_string();
    assert!(message.contains("made-up"), "{message}");
    assert!(
        message.contains("apriori") && message.contains("eclat"),
        "{message}"
    );
    engine.core.algorithm = "apriori".into();
    assert!(engine
        .execute(
            &mut db,
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        )
        .is_ok());
}
