//! Cross-reference integrity for the documentation set: every relative
//! markdown link in `README.md` and `docs/*.md` must point at a file
//! that exists in the repository, so a renamed or deleted document
//! breaks CI instead of silently leaving dead links.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // The integration crate lives at crates/integration.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// Every `](target)` occurrence in `text`.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("](") {
        let start = i + pos + 2;
        let Some(len) = text[start..].find(')') else {
            break;
        };
        targets.push(text[start..start + len].to_string());
        i = start + len;
    }
    targets
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = repo_root();
    let mut docs = vec![root.join("README.md")];
    for entry in std::fs::read_dir(root.join("docs")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "md") {
            docs.push(path);
        }
    }
    assert!(docs.len() >= 3, "doc set unexpectedly small: {docs:?}");

    let mut checked = 0;
    let mut broken = Vec::new();
    for doc in &docs {
        let text = std::fs::read_to_string(doc).unwrap();
        let dir = doc.parent().unwrap();
        for target in link_targets(&text) {
            // External links and pure intra-page anchors are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            // Strip an anchor suffix: `ARCHITECTURE.md#kernel` checks the file.
            let file = target.split('#').next().unwrap();
            if file.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(file).exists() {
                broken.push(format!("{}: {target}", doc.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken doc links:\n{}",
        broken.join("\n")
    );
    assert!(checked > 0, "the scanner found no relative links at all");
}

#[test]
fn storage_doc_is_linked_from_readme_and_architecture() {
    let root = repo_root();
    assert!(root.join("docs/STORAGE.md").exists());
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let arch = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).unwrap();
    assert!(
        readme.contains("docs/STORAGE.md"),
        "README must link the storage tour"
    );
    assert!(
        arch.contains("STORAGE.md"),
        "ARCHITECTURE.md must link the storage tour"
    );
}

#[test]
fn fuzzing_doc_is_linked_from_readme_and_architecture() {
    let root = repo_root();
    assert!(root.join("docs/FUZZING.md").exists());
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let arch = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).unwrap();
    assert!(
        readme.contains("docs/FUZZING.md"),
        "README must link the fuzzing tour"
    );
    assert!(
        arch.contains("FUZZING.md"),
        "ARCHITECTURE.md must link the fuzzing tour"
    );
}
