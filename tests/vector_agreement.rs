//! Vectorized vs row-at-a-time execution must be observationally
//! identical: same rows in the same order, same errors at the same row,
//! same mined rules and preprocessing reports. The vector path
//! (`\set exec vector`, the default via `auto`) is a pure performance
//! change — this suite is the contract that keeps it that way, with the
//! batch boundaries (`VECTOR_BATCH_ROWS`) deliberately straddled.
//!
//! Three layers of evidence:
//!
//! 1. hand-written queries over tables sized exactly at, one below and
//!    one above the batch size (plus empty and single-row), NULL-heavy
//!    columns included;
//! 2. randomized expressions from the shared fuzz grammar
//!    (`tcdm_fuzz::grammar`) evaluated over a NULL-heavy multi-batch
//!    table, comparing the full result **or error** — including
//!    erroring expressions that must fail at the same row either way;
//! 3. the paper's statements mined under every `exec` × worker-count
//!    combination, asserting bit-identical rules and worker-invariant
//!    `relational.vector.*` telemetry.

use datagen::rng::Rng;
use minerule::paper_example::{purchase_db, FILTERED_ORDERED_SETS};
use minerule::MineRuleEngine;
use relational::{Database, ExecMode, Value, VECTOR_BATCH_ROWS};
use tcdm_fuzz::grammar::{gen_expr, ExprCols};

/// A table of `rows` rows with every value class the expression language
/// touches — ints (positive/negative/zero), floats, strings — and
/// NULL-heavy `b` and `s` columns (every 3rd and every 4th row).
fn sized_db(rows: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b INT, c FLOAT, s VARCHAR)")
        .unwrap();
    let table = db.catalog_mut().table_mut("t").unwrap();
    for i in 0..rows as i64 {
        let b = if i % 3 == 0 {
            Value::Null
        } else {
            Value::Int((i % 11) - 5)
        };
        let s = if i % 4 == 0 {
            Value::Null
        } else {
            Value::Str(["alpha", "Beta", "GAMMA_9"][(i % 3) as usize].to_string())
        };
        table
            .insert(vec![
                Value::Int(i - 2),
                b,
                Value::Float((i as f64) * 0.25 - 1.5),
                s,
            ])
            .unwrap();
    }
    db
}

/// Evaluate `sql` pinned to `mode`, rendering the result-or-error for
/// comparison. Errors are part of the observable contract: a mode that
/// fails differently (or at a different row) is a regression even when
/// successful queries agree.
fn run(build: impl Fn() -> Database, mode: ExecMode, sql: &str) -> String {
    let mut db = build();
    db.set_exec(mode);
    format!("{:?}", db.query(sql))
}

fn assert_modes_agree(build: impl Fn() -> Database + Copy, sql: &str, label: &str) {
    let row = run(build, ExecMode::Row, sql);
    let vector = run(build, ExecMode::Vector, sql);
    assert_eq!(vector, row, "{label}: vector != row on: {sql}");
    let auto = run(build, ExecMode::Auto, sql);
    assert_eq!(auto, row, "{label}: auto != row on: {sql}");
}

// ---------------------------------------------------------------------
// Layer 1: batch boundaries
// ---------------------------------------------------------------------

/// Row counts that straddle every batch boundary: empty, single row,
/// one below / exactly at / one above the batch size, and two batches.
fn boundary_sizes() -> [usize; 6] {
    [
        0,
        1,
        VECTOR_BATCH_ROWS - 1,
        VECTOR_BATCH_ROWS,
        VECTOR_BATCH_ROWS + 1,
        2 * VECTOR_BATCH_ROWS,
    ]
}

#[test]
fn batch_boundaries_agree_on_every_hot_site() {
    // One query per vectorized site: scan filter, projection, GROUP BY
    // bucketing, DISTINCT dedup, hash-join keys.
    let queries = [
        "SELECT a, b + 1, UPPER(s) FROM t WHERE a % 2 = 0 AND c < 100.0",
        "SELECT CASE WHEN b IS NULL THEN -1 ELSE a * b END FROM t",
        "SELECT s, COUNT(*), SUM(a) FROM t GROUP BY s ORDER BY s",
        "SELECT DISTINCT b, s FROM t ORDER BY b, s",
        "SELECT COUNT(*) FROM t t1, t t2 WHERE t1.a = t2.b",
    ];
    for rows in boundary_sizes() {
        let label = format!("rows={rows}");
        for sql in queries {
            assert_modes_agree(|| sized_db(rows), sql, &label);
        }
    }
}

#[test]
fn errors_surface_at_the_same_row_across_batch_boundaries() {
    // A predicate-guarded division places the first failing row at a
    // chosen position; both paths must report the identical error, even
    // when the failure sits exactly on a batch seam. (`a` is `i - 2`, so
    // row index k fails when `a = k - 2`.)
    for rows in [1, VECTOR_BATCH_ROWS, VECTOR_BATCH_ROWS + 1] {
        for fail_at in [0usize, rows / 2, rows - 1] {
            let k = fail_at as i64 - 2;
            let sql = format!("SELECT CASE WHEN a = {k} THEN 1 / 0 ELSE a END FROM t");
            let label = format!("rows={rows} fail_at={fail_at}");
            assert_modes_agree(|| sized_db(rows), &sql, &label);
        }
    }
    // Constant erroring expressions fail on the first row either way.
    for sql in [
        "SELECT 1 / 0 FROM t",
        "SELECT a FROM t WHERE 1 / 0",
        "SELECT a / (b - b) FROM t",
    ] {
        assert_modes_agree(|| sized_db(VECTOR_BATCH_ROWS + 1), sql, "constant error");
    }
}

// ---------------------------------------------------------------------
// Layer 2: randomized grammar over a multi-batch NULL-heavy table
// ---------------------------------------------------------------------

#[test]
fn randomized_expressions_agree_across_batches() {
    let mut rng = Rng::seed_from_u64(0x0baced_10);
    let cols = ExprCols::abcs_fixture();
    for i in 0..60 {
        let expr = gen_expr(&mut rng, 3, &cols);
        let sql = format!("SELECT {expr} AS v FROM t");
        let label = format!("case {i}");
        assert_modes_agree(|| sized_db(VECTOR_BATCH_ROWS + 1), &sql, &label);
    }
}

#[test]
fn randomized_filters_agree_across_batches() {
    let mut rng = Rng::seed_from_u64(0x0baced_20);
    let cols = ExprCols::abcs_fixture();
    for i in 0..40 {
        let pred = gen_expr(&mut rng, 3, &cols);
        let sql = format!("SELECT a, s FROM t WHERE {pred}");
        let label = format!("case {i}");
        assert_modes_agree(|| sized_db(VECTOR_BATCH_ROWS + 1), &sql, &label);
    }
}

// ---------------------------------------------------------------------
// Layer 3: end-to-end mining agreement + telemetry invariance
// ---------------------------------------------------------------------

const SIMPLE: &str = "\
MINE RULE SimpleAssoc AS \
SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
FROM Purchase GROUP BY customer \
EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5";

#[test]
fn mining_is_bit_identical_across_exec_modes_and_workers() {
    for stmt in [SIMPLE, FILTERED_ORDERED_SETS] {
        let mut db = purchase_db();
        let baseline = MineRuleEngine::new()
            .with_exec(ExecMode::Row)
            .execute(&mut db, stmt)
            .unwrap();
        for mode in [ExecMode::Vector, ExecMode::Row, ExecMode::Auto] {
            for workers in [1, 2, 4] {
                let mut db = purchase_db();
                let outcome = MineRuleEngine::new()
                    .with_exec(mode)
                    .with_workers(workers)
                    .execute(&mut db, stmt)
                    .unwrap();
                let label = format!("exec={mode} workers={workers}");
                assert_eq!(outcome.rules, baseline.rules, "{label}");
                assert_eq!(
                    outcome.preprocess_report.executed, baseline.preprocess_report.executed,
                    "{label}: per-step row counts"
                );
            }
        }
    }
}

#[test]
fn vector_counters_publish_and_stay_worker_invariant() {
    let mut snapshots = Vec::new();
    for workers in [1usize, 2, 4] {
        let engine = MineRuleEngine::new()
            .with_exec(ExecMode::Vector)
            .with_workers(workers);
        let mut db = purchase_db();
        engine.execute(&mut db, SIMPLE).unwrap();
        let snapshot = engine.metrics_snapshot();
        assert!(
            snapshot.counter("relational.vector.batches") > 0,
            "workers={workers}: no batches counted: {}",
            snapshot.render_text()
        );
        assert!(
            snapshot.counter("relational.vector.rows") > 0,
            "workers={workers}: no rows counted"
        );
        let vector: Vec<(String, u64)> = snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("relational.vector."))
            .map(|(name, value)| (name.clone(), *value))
            .collect();
        snapshots.push((workers, vector));
    }
    for pair in snapshots.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "vector counters differ between workers={} and workers={}",
            pair[0].0, pair[1].0
        );
    }

    // The row path mints no vector counters at all.
    let engine = MineRuleEngine::new().with_exec(ExecMode::Row);
    let mut db = purchase_db();
    engine.execute(&mut db, SIMPLE).unwrap();
    let snapshot = engine.metrics_snapshot();
    assert!(
        !snapshot
            .counters
            .keys()
            .any(|k| k.starts_with("relational.vector.")),
        "row runs must not mint vector counters: {}",
        snapshot.render_text()
    );
}
