//! End-to-end observability contract: the engine's telemetry registry
//! records exact, deterministic work counters for the paper's example
//! data, and recording never changes the mined rules.

use minerule::paper_example::{purchase_db, FILTERED_ORDERED_SETS};
use minerule::MineRuleEngine;

/// A simple-class statement over the paper's Purchase table (Figure 1):
/// two customer groups, gid-list Apriori, 18 rules at these thresholds.
const SIMPLE: &str = "MINE RULE SimpleAssociations AS \
    SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
    FROM Purchase GROUP BY customer \
    EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5";

#[test]
fn simple_path_records_exact_counters() {
    let mut db = purchase_db();
    let engine = MineRuleEngine::new();
    let outcome = engine.execute(&mut db, SIMPLE).unwrap();
    assert_eq!(outcome.rules.len(), 18);

    let snap = engine.metrics_snapshot();
    // Translator: one simple statement, no directive flags set.
    assert_eq!(snap.counter("translator.statements"), 1);
    assert_eq!(snap.counter("translator.class.simple"), 1);
    assert_eq!(snap.counter("translator.class.general"), 0);
    for flag in ["h", "w", "m", "g", "c", "k", "f", "r"] {
        assert_eq!(
            snap.counter(&format!("translator.directive.{flag}")),
            0,
            "directive {flag}"
        );
    }
    // Preprocessor: row counts per step (Figure 1 data). The cost
    // planner (the default) fuses the simple-class program into one
    // pipelined pass: 6 steps instead of 8, Q2/Q3 counting only the
    // materialised encoded rows (the subsumed view and
    // DistinctGroupsInBody intermediates never materialise).
    assert_eq!(snap.counter("preprocess.steps"), 6);
    assert_eq!(snap.counter("preprocess.fused_steps"), 6);
    assert_eq!(snap.counter("preprocess.rows.Q1"), 1);
    assert_eq!(snap.counter("preprocess.rows.Q2"), 2);
    assert_eq!(snap.counter("preprocess.rows.Q3"), 5);
    assert_eq!(snap.counter("preprocess.rows.Q4"), 6);
    assert_eq!(snap.gauge("preprocess.total_groups"), Some(2));
    assert_eq!(snap.gauge("preprocess.min_groups"), Some(1));
    // The cost planner accounts its planning work.
    assert!(snap.counter("relational.planner.plans") > 0);
    // Core operator: gid-list Apriori over the two encoded groups.
    assert_eq!(snap.counter("core.path.simple"), 1);
    assert_eq!(snap.counter("core.path.general"), 0);
    assert_eq!(snap.counter("core.groups"), 2);
    assert_eq!(snap.counter("core.itemsets.large"), 13);
    assert_eq!(snap.counter("core.level.1.generated"), 5);
    assert_eq!(snap.counter("core.level.1.pruned"), 0);
    assert_eq!(snap.counter("core.level.2.generated"), 10);
    assert_eq!(snap.counter("core.level.2.pruned"), 4);
    assert_eq!(snap.counter("core.level.3.generated"), 2);
    assert_eq!(snap.counter("core.rules.candidates"), 18);
    assert_eq!(snap.counter("core.rules.pruned_confidence"), 0);
    assert_eq!(snap.counter("core.rules.emitted"), 18);
    // Physical layer: gid sets were built and intersected, and the
    // candidate tries (Apriori prune + rule extraction) were walked.
    // Exact values are pinned by unit tests; here presence suffices.
    assert!(
        snap.counter("core.gidset.list.picked") + snap.counter("core.gidset.bitset.picked") > 0,
        "gid-set representation picks recorded"
    );
    assert!(snap.counter("core.gidset.intersects") > 0);
    assert!(snap.counter("core.trie.nodes") > 0);
    assert!(snap.counter("core.trie.lookups") > 0);
    // Postprocessor: every encoded rule stored and decoded back.
    assert_eq!(snap.counter("postprocess.rules_stored"), 18);
    assert_eq!(snap.counter("postprocess.rules_decoded"), 18);
    // Phase spans: exactly one sample each, and the span sums stay
    // consistent with the PhaseTimings view derived from them.
    for phase in [
        "phase.translate",
        "phase.preprocess",
        "phase.core",
        "phase.postprocess",
    ] {
        let h = snap.histogram(phase).unwrap_or_else(|| panic!("{phase}"));
        assert_eq!(h.count(), 1, "{phase}");
    }
    assert!(
        snap.histogram("phase.core").unwrap().sum_us() >= outcome.timings.core.as_micros() as u64,
        "span covers the timed phase"
    );
}

#[test]
fn general_path_records_exact_counters() {
    let mut db = purchase_db();
    let engine = MineRuleEngine::new();
    let outcome = engine.execute(&mut db, FILTERED_ORDERED_SETS).unwrap();
    assert_eq!(outcome.rules.len(), 3, "Figure 2b");
    assert!(outcome.used_general);

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.counter("translator.statements"), 1);
    assert_eq!(snap.counter("translator.class.general"), 1);
    // The statement sets exactly the W, M, C and K directives.
    for (flag, expect) in [
        ("h", 0),
        ("w", 1),
        ("m", 1),
        ("g", 0),
        ("c", 1),
        ("k", 1),
        ("f", 0),
        ("r", 0),
    ] {
        assert_eq!(
            snap.counter(&format!("translator.directive.{flag}")),
            expect,
            "directive {flag}"
        );
    }
    assert_eq!(snap.counter("preprocess.steps"), 17);
    assert_eq!(snap.counter("preprocess.rows.Q0"), 8, "one row per tuple");
    assert_eq!(snap.counter("core.path.general"), 1);
    assert_eq!(snap.counter("core.path.simple"), 0);
    assert_eq!(snap.counter("core.tuples"), 8);
    assert_eq!(snap.counter("core.rules.emitted"), 3);
    assert_eq!(snap.counter("postprocess.rules_stored"), 3);
    assert_eq!(snap.counter("postprocess.rules_decoded"), 3);
}

#[test]
fn telemetry_off_yields_bit_identical_rules_and_records_nothing() {
    let mut db_on = purchase_db();
    let engine_on = MineRuleEngine::new();
    let mut engine_off = MineRuleEngine::new();
    engine_off.set_telemetry_enabled(false);
    assert!(!engine_off.telemetry_enabled());

    for stmt in [SIMPLE, FILTERED_ORDERED_SETS] {
        let mut db_off = purchase_db();
        let on = engine_on.execute(&mut db_on, stmt).unwrap();
        let off = engine_off.execute(&mut db_off, stmt).unwrap();
        // Bit-identical decoded inventory: same rules, same order, same
        // floating-point support/confidence.
        assert_eq!(on.rules, off.rules, "{stmt}");
        // The disabled engine still reports phase wall-clock.
        assert!(off.timings.total() > std::time::Duration::ZERO);
    }
    assert!(
        engine_off.metrics_snapshot().is_empty(),
        "off records nothing"
    );
    assert!(!engine_on.metrics_snapshot().is_empty());
}

#[test]
fn work_counters_are_worker_count_invariant() {
    let run = |workers: usize| {
        let mut db = purchase_db();
        let engine = MineRuleEngine::new().with_workers(workers);
        let outcome = engine.execute(&mut db, SIMPLE).unwrap();
        (outcome.rules, engine.metrics_snapshot())
    };
    let (rules_1, snap_1) = run(1);
    let (rules_4, snap_4) = run(4);
    assert_eq!(rules_1, rules_4, "determinism contract");
    // Every counter except shard accounting is identical: the sharded
    // executor does the same logical work regardless of fan-out.
    for (name, value) in &snap_1.counters {
        if name == "core.shards.run" {
            continue;
        }
        assert_eq!(snap_4.counter(name), *value, "{name}");
    }
    assert!(snap_4.counter("core.shards.run") >= snap_1.counter("core.shards.run"));
}

#[test]
fn planner_counters_absent_under_naive_present_under_cost() {
    // Naive planner: no statistics consulted, nothing fused — neither
    // the relational.planner.* counters nor preprocess.fused_steps are
    // ever minted (zero deltas are skipped at publication), and the full
    // 8-step SQL program runs.
    let mut db = purchase_db();
    let engine = MineRuleEngine::new().with_planner(relational::PlannerMode::Naive);
    let naive = engine.execute(&mut db, SIMPLE).unwrap();
    let snap = engine.metrics_snapshot();
    assert!(
        snap.counters
            .iter()
            .all(|(name, _)| !name.starts_with("relational.planner.")),
        "naive planner must mint no planner counters: {:?}",
        snap.counters
    );
    assert_eq!(snap.counter("preprocess.fused_steps"), 0);
    assert_eq!(snap.counter("preprocess.steps"), 8);

    // Cost planner: planner counters appear, the preprocess program
    // fuses, and both stay invariant under the core's worker count
    // because the relational layer runs single-threaded.
    let run = |workers: usize| {
        let mut db = purchase_db();
        let engine = MineRuleEngine::new().with_workers(workers);
        let outcome = engine.execute(&mut db, SIMPLE).unwrap();
        (outcome.rules, engine.metrics_snapshot())
    };
    let (rules_1, snap_1) = run(1);
    let (rules_4, snap_4) = run(4);
    assert_eq!(rules_1, naive.rules, "planner modes mine identical rules");
    assert_eq!(rules_1, rules_4);
    assert!(snap_1.counter("relational.planner.plans") > 0);
    assert_eq!(snap_1.counter("preprocess.fused_steps"), 6);
    for (name, value) in &snap_1.counters {
        if !name.starts_with("relational.planner.") && name != "preprocess.fused_steps" {
            continue;
        }
        assert_eq!(snap_4.counter(name), *value, "{name} worker-invariant");
    }
}

#[test]
fn storage_counters_absent_on_memory_present_on_paged() {
    // Memory backend (the default): no relational.storage.* counter is
    // ever minted — zero deltas are skipped at publication.
    let mut db = purchase_db();
    let engine = MineRuleEngine::new();
    engine.execute(&mut db, SIMPLE).unwrap();
    let snap = engine.metrics_snapshot();
    assert!(
        snap.counters
            .iter()
            .all(|(name, _)| !name.starts_with("relational.storage.")),
        "memory backend must mint no storage counters: {:?}",
        snap.counters
    );

    // Paged backend: the run commits through the WAL, so the counters
    // appear — and they are invariant under the core's worker count
    // because the relational layer runs single-threaded.
    let run = |workers: usize| {
        let dir =
            std::env::temp_dir().join(format!("tcdm_tel_storage_{workers}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = purchase_db();
        db.set_storage_dir(&dir);
        let engine = MineRuleEngine::new()
            .with_workers(workers)
            .with_storage(relational::StorageBackend::Paged);
        let outcome = engine.execute(&mut db, SIMPLE).unwrap();
        let snap = engine.metrics_snapshot();
        let _ = std::fs::remove_dir_all(&dir);
        (outcome.rules, snap)
    };
    let (rules_1, snap_1) = run(1);
    let (rules_4, snap_4) = run(4);
    assert_eq!(rules_1, rules_4, "paged mining is worker-invariant");
    // Commits always reach the WAL; heap page writes can legitimately
    // stay at zero until a checkpoint, so presence is asserted on the
    // WAL counters.
    for name in [
        "relational.storage.wal_appends",
        "relational.storage.wal_fsyncs",
    ] {
        assert!(snap_1.counter(name) > 0, "{name} present under paged");
    }
    for (name, value) in &snap_1.counters {
        if !name.starts_with("relational.storage.") {
            continue;
        }
        assert_eq!(snap_4.counter(name), *value, "{name} worker-invariant");
    }
}

#[test]
fn snapshot_json_is_schema_versioned() {
    let mut db = purchase_db();
    let engine = MineRuleEngine::new();
    engine.execute(&mut db, SIMPLE).unwrap();
    let json = engine.metrics_snapshot().to_json();
    assert!(json.starts_with("{\"schema_version\":1,"), "{json}");
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"gauges\""));
    assert!(json.contains("\"histograms\""));
    assert!(json.contains("\"log2_buckets\""));

    // Reset empties every family.
    engine.reset_metrics();
    assert!(engine.metrics_snapshot().is_empty());
}
