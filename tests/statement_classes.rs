//! Experiment T1: a matrix of MINE RULE statements covering the
//! translator's classification space (H, W, M, G, C, K, F, R) — each one
//! runs end to end and its results satisfy the operator's semantics.

use minerule::paper_example::purchase_db;
use minerule::{parse_mine_rule, Directives, MineRuleEngine, StatementClass};
use relational::{Database, Value};

fn run(db: &mut Database, stmt: &str) -> minerule::MiningOutcome {
    MineRuleEngine::new().execute(db, stmt).unwrap()
}

fn check_rule_invariants(outcome: &minerule::MiningOutcome, min_s: f64, min_c: f64) {
    for r in &outcome.rules {
        assert!(r.support + 1e-9 >= min_s, "support below threshold: {r:?}");
        assert!(
            r.confidence + 1e-9 >= min_c,
            "confidence below threshold: {r:?}"
        );
        assert!(r.confidence <= 1.0 + 1e-9 && r.support <= 1.0 + 1e-9);
        assert!(
            r.confidence + 1e-9 >= r.support,
            "confidence < support impossible: {r:?}"
        );
        assert!(!r.body.is_empty() && !r.head.is_empty());
    }
}

#[test]
fn plain_simple_statement() {
    let mut db = purchase_db();
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY tr \
                EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5";
    let d = Directives::classify(&parse_mine_rule(stmt).unwrap());
    assert_eq!(d.class(), StatementClass::Simple);
    let out = run(&mut db, stmt);
    check_rule_invariants(&out, 0.25, 0.5);
    // Transactions 2 and 4 both contain {col_shirts, jackets}.
    assert!(out
        .rules
        .iter()
        .any(|r| r.body == vec!["col_shirts"] && r.head == vec!["jackets"]));
}

#[test]
fn w_source_condition_only() {
    let mut db = purchase_db();
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase WHERE price < 200 GROUP BY tr \
                EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.3";
    let d = Directives::classify(&parse_mine_rule(stmt).unwrap());
    assert!(d.w && d.class() == StatementClass::Simple);
    let out = run(&mut db, stmt);
    check_rule_invariants(&out, 0.25, 0.3);
    for r in &out.rules {
        assert!(
            !r.body.contains(&"jackets".to_string()) && !r.head.contains(&"jackets".to_string()),
            "jackets cost 300 and must be filtered by the source condition"
        );
    }
}

#[test]
fn g_group_having_filters_groups() {
    let mut db = purchase_db();
    // Only customers with at least 4 purchase rows qualify (cust2 has 5).
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer HAVING COUNT(item) >= 4 \
                EXTRACTING RULES WITH SUPPORT: 0.4, CONFIDENCE: 0.4";
    let d = Directives::classify(&parse_mine_rule(stmt).unwrap());
    assert!(d.g && d.r, "COUNT in HAVING sets both G and R");
    let out = run(&mut db, stmt);
    // cust1's exclusive items can never appear.
    for r in &out.rules {
        assert!(!r.body.contains(&"ski_pants".to_string()));
        assert!(!r.head.contains(&"hiking_boots".to_string()));
    }
    // Support denominator stays the total group count (Q1 runs before the
    // HAVING selection): cust2's rules have support 1/2.
    assert!(
        out.rules.iter().all(|r| (r.support - 0.5).abs() < 1e-9),
        "{:#?}",
        out.rules
    );
}

#[test]
fn m_mining_condition_without_clusters() {
    let mut db = purchase_db();
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
                SUPPORT, CONFIDENCE WHERE BODY.price >= 100 AND HEAD.price < 100 \
                FROM Purchase GROUP BY tr \
                EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.3";
    let d = Directives::classify(&parse_mine_rule(stmt).unwrap());
    assert!(d.m && !d.c && d.class() == StatementClass::General);
    let out = run(&mut db, stmt);
    assert!(out.used_general);
    check_rule_invariants(&out, 0.25, 0.3);
    // Bodies are expensive items, heads cheap: only col_shirts can head.
    for r in &out.rules {
        assert_eq!(r.head, vec!["col_shirts".to_string()], "{r:?}");
        assert!(!r.body.contains(&"col_shirts".to_string()));
    }
    // {brown_boots} ⇒ {col_shirts} and {jackets} ⇒ {col_shirts} hold in
    // transactions 2 and 2,4 respectively.
    assert!(out.rules.iter().any(|r| r.body == vec!["jackets"]));
}

#[test]
fn c_clusters_without_condition_pair_all_clusters() {
    let mut db = purchase_db();
    // No HAVING on CLUSTER BY: all cluster pairs (including same-date)
    // are eligible, so same-date expensive→cheap pairs count too.
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, \
                SUPPORT, CONFIDENCE WHERE BODY.price >= 100 AND HEAD.price < 100 \
                FROM Purchase GROUP BY customer CLUSTER BY date \
                EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3";
    let d = Directives::classify(&parse_mine_rule(stmt).unwrap());
    assert!(d.c && !d.k);
    let out = run(&mut db, stmt);
    // brown_boots (12/18) and col_shirts (12/18) now pair same-date as
    // well — the rule keeps support 0.5 but the unordered variant also
    // admits jackets ⇒ col_shirts via the same-date cluster pair.
    assert!(out
        .rules
        .iter()
        .any(|r| r.body == vec!["brown_boots"] && r.head == vec!["col_shirts"]));
    check_rule_invariants(&out, 0.2, 0.3);
}

#[test]
fn h_distinct_schemas_with_cardinalities() {
    let mut db = purchase_db();
    // Body over items, head over quantities (different attributes → H).
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..1 item AS BODY, 1..1 qty AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
                EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.3";
    let d = Directives::classify(&parse_mine_rule(stmt).unwrap());
    assert!(d.h);
    let out = run(&mut db, stmt);
    assert!(out.used_general);
    for r in &out.rules {
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.head.len(), 1);
        // Heads are quantities, i.e. integers.
        assert!(r.head[0].parse::<i64>().is_ok(), "{r:?}");
    }
    check_rule_invariants(&out, 0.5, 0.3);
}

#[test]
fn f_aggregate_cluster_condition() {
    let mut db = purchase_db();
    // Body cluster must be strictly more expensive in total than head's.
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
                CLUSTER BY date HAVING SUM(BODY.price) > SUM(HEAD.price) \
                EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.1";
    let d = Directives::classify(&parse_mine_rule(stmt).unwrap());
    assert!(d.c && d.k && d.f);
    let out = run(&mut db, stmt);
    assert!(out.used_general);
    check_rule_invariants(&out, 0.2, 0.1);
    // cust1: 12/17 totals 320, 12/18 totals 300 → pair (12/17 → 12/18)
    // valid, so {ski_pants, hiking_boots} ⇒ {jackets} appears.
    assert!(
        out.rules
            .iter()
            .any(|r| r.head == vec!["jackets"] && r.body.contains(&"ski_pants".to_string())),
        "{:#?}",
        out.rules
    );
}

#[test]
fn multi_table_from_list_joins() {
    let mut db = purchase_db();
    db.execute("CREATE TABLE Category (item VARCHAR, cat VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO Category VALUES ('ski_pants','wear'), ('hiking_boots','shoes'), \
         ('col_shirts','wear'), ('brown_boots','shoes'), ('jackets','wear')",
    )
    .unwrap();
    // Mine category pairs per customer: W set by the join.
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n cat AS BODY, 1..1 cat AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase P, Category C WHERE P.item = C.item \
                GROUP BY customer \
                EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5";
    let d = Directives::classify(&parse_mine_rule(stmt).unwrap());
    assert!(d.w && d.class() == StatementClass::Simple);
    let out = run(&mut db, stmt);
    // Both customers buy wear and shoes → {wear} ⇒ {shoes} with s=1.
    assert!(out
        .rules
        .iter()
        .any(|r| r.body == vec!["wear"] && r.head == vec!["shoes"] && r.support > 0.99));
}

#[test]
fn multi_attribute_item_schema() {
    let mut db = purchase_db();
    // Items identified by (item, qty) pairs.
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item, qty AS BODY, 1..1 item, qty AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
                EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5";
    let out = run(&mut db, stmt);
    check_rule_invariants(&out, 0.5, 0.5);
    for r in &out.rules {
        // Rendered multi-attribute items look like "jackets|1".
        assert!(r.body.iter().all(|i| i.contains('|')), "{r:?}");
    }
}

#[test]
fn empty_result_when_thresholds_unreachable() {
    let mut db = purchase_db();
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY tr \
                EXTRACTING RULES WITH SUPPORT: 0.9, CONFIDENCE: 0.9";
    let out = run(&mut db, stmt);
    assert!(out.rules.is_empty());
    // The output tables still exist (empty), as a SQL user expects.
    assert_eq!(db.query("SELECT * FROM R").unwrap().len(), 0);
}

#[test]
fn select_list_without_support_confidence_columns() {
    let mut db = purchase_db();
    let stmt = "MINE RULE Bare AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD \
                FROM Purchase GROUP BY tr \
                EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5";
    run(&mut db, stmt);
    let rs = db.query("SELECT * FROM Bare").unwrap();
    let cols: Vec<&str> = rs
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(
        cols,
        vec!["BodyId", "HeadId"],
        "no SUPPORT/CONFIDENCE columns"
    );
}

#[test]
fn body_cardinality_minimum_enforced() {
    let mut db = purchase_db();
    let stmt = "MINE RULE R AS SELECT DISTINCT 2..n item AS BODY, 1..1 item AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY tr \
                EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1";
    let out = run(&mut db, stmt);
    assert!(!out.rules.is_empty());
    assert!(
        out.rules.iter().all(|r| r.body.len() >= 2),
        "{:#?}",
        out.rules
    );
}

#[test]
fn group_count_in_output_uses_all_groups() {
    // Support is "number of groups containing the rule / total number of
    // groups" — totals come from Q1, before any HAVING.
    let mut db = purchase_db();
    let stmt = "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
                SUPPORT, CONFIDENCE FROM Purchase GROUP BY tr \
                EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1";
    let out = run(&mut db, stmt);
    assert_eq!(out.preprocess_report.total_groups, 4);
    let rs = db.query("SELECT SUPPORT FROM R").unwrap();
    for row in rs.rows() {
        let s = row[0].as_float().unwrap();
        // All supports are multiples of 1/4.
        assert!((s * 4.0 - (s * 4.0).round()).abs() < 1e-9, "{s}");
    }
    let _ = Value::Null; // keep the import used in all configurations
}
