//! Compiled vs interpreted expression execution must be observationally
//! identical: same rows, same errors, same mined rules, same
//! preprocessing reports. The compiled path (`\set sqlexec compiled`,
//! the default via `auto`) is a pure performance change — this suite is
//! the contract that keeps it that way.
//!
//! Three layers of evidence:
//!
//! 1. randomized expressions (seeded, reproducible) evaluated per row
//!    under both modes, comparing the full result **or error**;
//! 2. hand-written SELECTs exercising every hot site the compiler
//!    touches (scan filters, hash joins, explicit joins, GROUP BY,
//!    DISTINCT, set operations, subquery fallback, ORDER BY);
//! 3. the paper's own statements (§2 / Appendix A shapes) mined under
//!    every `sqlexec` × worker-count combination, asserting bit-identical
//!    rules and preprocessing reports.

use datagen::rng::Rng;
use minerule::paper_example::{purchase_db, FIGURE_2B, FILTERED_ORDERED_SETS};
use minerule::MineRuleEngine;
use relational::{Database, SqlExec};
use tcdm_fuzz::grammar::{gen_expr, ExprCols};

/// Evaluate `sql` on a fresh fixture database pinned to `mode`, rendering
/// the result-or-error for comparison. Errors are part of the observable
/// contract: a mode that fails differently (or at a different row) is a
/// regression even if successful queries agree.
fn run(build: fn() -> Database, mode: SqlExec, sql: &str) -> String {
    let mut db = build();
    db.set_sqlexec(mode);
    format!("{:?}", db.query(sql))
}

fn assert_modes_agree(build: fn() -> Database, sql: &str) {
    let compiled = run(build, SqlExec::Compiled, sql);
    let interpreted = run(build, SqlExec::Interpreted, sql);
    assert_eq!(compiled, interpreted, "modes disagree on: {sql}");
    let auto = run(build, SqlExec::Auto, sql);
    assert_eq!(auto, compiled, "auto != compiled on: {sql}");
}

/// A small table with every value class the expression language touches:
/// positive/negative/zero ints, floats, strings, NULLs in two columns.
fn expr_fixture() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b INT, c FLOAT, s VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO t VALUES \
         (1, 10, 1.5, 'alpha'), \
         (2, NULL, -2.25, 'Beta'), \
         (-3, 0, 0.0, NULL), \
         (0, 7, 100.0, 'alpha'), \
         (42, -5, 0.125, 'GAMMA_9')",
    )
    .unwrap();
    db
}

// ---------------------------------------------------------------------
// Layer 1: randomized expression agreement
// ---------------------------------------------------------------------

// The expression generator lives in the fuzz harness (`tcdm_fuzz::grammar`)
// so the differential fuzzer and this suite share one grammar; this suite
// keeps pinning the compiled-vs-interpreted contract on the fixture's
// column mix, including ill-typed and erroring expressions.

#[test]
fn randomized_expressions_agree() {
    let mut rng = Rng::seed_from_u64(0x5eed_0401);
    let cols = ExprCols::abcs_fixture();
    for i in 0..400 {
        let expr = gen_expr(&mut rng, 3, &cols);
        let sql = format!("SELECT {expr} AS v FROM t");
        let compiled = run(expr_fixture, SqlExec::Compiled, &sql);
        let interpreted = run(expr_fixture, SqlExec::Interpreted, &sql);
        assert_eq!(compiled, interpreted, "case {i}: modes disagree on {sql}");
    }
}

#[test]
fn randomized_filters_agree() {
    // The same generator feeding WHERE exercises the scan-filter site
    // (truthiness of NULL/errors in predicate position).
    let mut rng = Rng::seed_from_u64(20260806);
    let cols = ExprCols::abcs_fixture();
    for i in 0..200 {
        let pred = gen_expr(&mut rng, 3, &cols);
        let sql = format!("SELECT a, s FROM t WHERE {pred}");
        let compiled = run(expr_fixture, SqlExec::Compiled, &sql);
        let interpreted = run(expr_fixture, SqlExec::Interpreted, &sql);
        assert_eq!(compiled, interpreted, "case {i}: modes disagree on {sql}");
    }
}

// ---------------------------------------------------------------------
// Layer 2: hand-written query agreement over the paper's Figure 1 table
// ---------------------------------------------------------------------

const QUERIES: &[&str] = &[
    // Scan filter + projection expressions.
    "SELECT item, price * qty FROM Purchase WHERE price >= 100 ORDER BY item, 2",
    "SELECT UPPER(item), price - 100 FROM Purchase WHERE NOT (price < 100) ORDER BY 1",
    // Comma join (hash join keys) and cross join.
    "SELECT p1.item, p2.item FROM Purchase p1, Purchase p2 \
     WHERE p1.tr = p2.tr AND p1.item < p2.item ORDER BY 1, 2",
    "SELECT COUNT(*) FROM Purchase p1, Purchase p2 WHERE p1.price > p2.price",
    // Explicit JOIN ... ON (the ON-predicate site), incl. LEFT OUTER.
    "SELECT p1.item, p2.item FROM Purchase p1 JOIN Purchase p2 \
     ON p1.customer = p2.customer AND p1.date < p2.date ORDER BY 1, 2",
    "SELECT p1.tr, p2.item FROM Purchase p1 LEFT OUTER JOIN Purchase p2 \
     ON p1.price = p2.price AND p1.item <> p2.item ORDER BY 1, 2",
    // GROUP BY keys + HAVING + aggregate projections.
    "SELECT customer, COUNT(*), SUM(price * qty) FROM Purchase \
     GROUP BY customer ORDER BY customer",
    "SELECT customer, MAX(price) FROM Purchase GROUP BY customer \
     HAVING COUNT(DISTINCT item) >= 3 ORDER BY customer",
    "SELECT tr, COUNT(*) FROM Purchase WHERE price >= 25 GROUP BY tr \
     HAVING SUM(qty) > 1 ORDER BY tr",
    // DISTINCT dedup.
    "SELECT DISTINCT customer, date FROM Purchase ORDER BY customer, date",
    "SELECT DISTINCT price >= 100 FROM Purchase ORDER BY 1",
    // Set operations (zero-clone dedup paths).
    "SELECT item FROM Purchase WHERE price >= 150 UNION \
     SELECT item FROM Purchase WHERE qty >= 2 ORDER BY item",
    "SELECT item FROM Purchase WHERE customer = 'cust1' INTERSECT \
     SELECT item FROM Purchase WHERE customer = 'cust2' ORDER BY item",
    "SELECT item FROM Purchase EXCEPT \
     SELECT item FROM Purchase WHERE price < 100 ORDER BY item",
    // Subqueries: the compiler's interpreter-fallback ops.
    "SELECT item FROM Purchase WHERE price > \
     (SELECT AVG(price) FROM Purchase) ORDER BY item",
    "SELECT DISTINCT customer FROM Purchase WHERE item IN \
     (SELECT item FROM Purchase WHERE price < 100) ORDER BY customer",
    "SELECT DISTINCT p1.item FROM Purchase p1 WHERE EXISTS \
     (SELECT * FROM Purchase p2 WHERE p2.item = p1.item AND p2.qty > 1) \
     ORDER BY p1.item",
    // Derived table + outer expressions.
    "SELECT customer, total FROM \
     (SELECT customer, SUM(price * qty) AS total FROM Purchase GROUP BY customer) spend \
     WHERE total > 500 ORDER BY customer",
    // Date arithmetic (the temporal statements lean on this).
    "SELECT item FROM Purchase \
     WHERE date BETWEEN DATE '1995-12-18' AND DATE '1995-12-31' ORDER BY item",
    "SELECT COUNT(*) FROM Purchase p1, Purchase p2 \
     WHERE p1.customer = p2.customer AND p1.date < p2.date",
    // CASE + IN + LIKE through a full pipeline.
    "SELECT item, CASE WHEN price >= 100 THEN 'premium' ELSE 'basic' END \
     FROM Purchase WHERE item LIKE '%oots' OR item IN ('jackets', 'col_shirts') \
     ORDER BY item, 2",
    // LIMIT after ORDER BY.
    "SELECT item, price FROM Purchase ORDER BY price DESC, item LIMIT 3",
];

#[test]
fn handwritten_queries_agree() {
    for sql in QUERIES {
        assert_modes_agree(purchase_db, sql);
    }
}

#[test]
fn error_reporting_agrees() {
    // Per-row evaluation errors must surface identically: same variant,
    // same message, regardless of constant folding or compilation.
    for sql in [
        "SELECT price / 0 FROM Purchase",
        "SELECT price / (qty - qty) FROM Purchase",
        "SELECT item + 1 FROM Purchase",
        "SELECT ABS(item) FROM Purchase",
        "SELECT nonexistent FROM Purchase",
        "SELECT item FROM Purchase WHERE LENGTH(price) > (1 / 0)",
    ] {
        assert_modes_agree(purchase_db, sql);
    }
}

// ---------------------------------------------------------------------
// Layer 3: end-to-end mining agreement (rules + preprocessing reports)
// ---------------------------------------------------------------------

const SIMPLE: &str = "\
MINE RULE SimpleAssoc AS \
SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
FROM Purchase GROUP BY customer \
EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5";

#[test]
fn mining_is_bit_identical_across_modes_and_workers() {
    for stmt in [SIMPLE, FILTERED_ORDERED_SETS] {
        let mut db = purchase_db();
        let baseline = MineRuleEngine::new()
            .with_sqlexec(SqlExec::Interpreted)
            .execute(&mut db, stmt)
            .unwrap();
        for mode in [SqlExec::Compiled, SqlExec::Interpreted, SqlExec::Auto] {
            for workers in [1, 2, 4] {
                let mut db = purchase_db();
                let outcome = MineRuleEngine::new()
                    .with_sqlexec(mode)
                    .with_workers(workers)
                    .execute(&mut db, stmt)
                    .unwrap();
                let label = format!("sqlexec={mode} workers={workers}");
                assert_eq!(outcome.rules, baseline.rules, "{label}");
                assert_eq!(
                    outcome.preprocess_report.executed, baseline.preprocess_report.executed,
                    "{label}: per-step row counts"
                );
                assert_eq!(
                    outcome.preprocess_report.total_groups, baseline.preprocess_report.total_groups,
                    "{label}"
                );
                assert_eq!(
                    outcome.preprocess_report.min_groups, baseline.preprocess_report.min_groups,
                    "{label}"
                );
            }
        }
    }
}

#[test]
fn compiled_mode_reproduces_figure_2b() {
    // The §2 statement under the compiled path must still produce exactly
    // the paper's Figure 2b rules.
    let mut db = purchase_db();
    let outcome = MineRuleEngine::new()
        .with_sqlexec(SqlExec::Compiled)
        .execute(&mut db, FILTERED_ORDERED_SETS)
        .unwrap();
    assert!(outcome.used_general);
    assert_eq!(outcome.rules.len(), FIGURE_2B.len());
    for (rule, (body, head, support, confidence)) in outcome.rules.iter().zip(FIGURE_2B) {
        assert_eq!(rule.body, *body);
        assert_eq!(rule.head, *head);
        assert!((rule.support - support).abs() < 1e-9);
        assert!((rule.confidence - confidence).abs() < 1e-9);
    }
}

#[test]
fn compiled_mode_publishes_compile_counters() {
    // The telemetry plumbing: compiled runs publish relational.compile.*
    // and relational.rows.*; interpreted runs publish no compile counters.
    let engine = MineRuleEngine::new().with_sqlexec(SqlExec::Compiled);
    let mut db = purchase_db();
    engine.execute(&mut db, SIMPLE).unwrap();
    let snapshot = engine.metrics_snapshot();
    for counter in [
        "relational.compile.programs",
        "relational.rows.scanned",
        "relational.rows.joined",
    ] {
        assert!(
            snapshot.counter(counter) > 0,
            "missing {counter}: {}",
            snapshot.render_text()
        );
    }

    let engine = MineRuleEngine::new().with_sqlexec(SqlExec::Interpreted);
    let mut db = purchase_db();
    engine.execute(&mut db, SIMPLE).unwrap();
    let snapshot = engine.metrics_snapshot();
    assert!(
        !snapshot
            .counters
            .contains_key("relational.compile.programs"),
        "interpreted runs must not mint compile counters"
    );
    assert!(
        snapshot.counter("relational.rows.scanned") > 0,
        "row counters are mode-independent"
    );
}
