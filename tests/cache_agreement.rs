//! The cache agreement contract: every combination of worker count ×
//! preprocess cache × mined-result cache × index policy mines
//! bit-identical rules — including warm (cache-hit) runs after a
//! threshold-only refinement, incremental re-mines after a source-table
//! delta, and runs after a source-table mutation (which must *never*
//! serve stale artifacts).

use minerule::paper_example::{purchase_db, FILTERED_ORDERED_SETS};
use minerule::{DecodedRule, MineRuleEngine};
use relational::IndexPolicy;

const WORKERS: [usize; 3] = [1, 2, 4];
const CACHE: [bool; 2] = [true, false];
const POLICIES: [IndexPolicy; 2] = [IndexPolicy::Auto, IndexPolicy::Off];

/// Bit-exact signature of a rule set (f64s compared by bit pattern).
fn signature(rules: &[DecodedRule]) -> Vec<String> {
    rules
        .iter()
        .map(|r| {
            format!(
                "{:?}=>{:?} s={:016x} c={:016x}",
                r.body,
                r.head,
                r.support.to_bits(),
                r.confidence.to_bits()
            )
        })
        .collect()
}

fn simple(support: f64, confidence: f64) -> String {
    format!(
        "MINE RULE SimpleAssoc AS SELECT DISTINCT item AS BODY, item AS HEAD, \
         SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
         EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: {confidence}"
    )
}

#[test]
fn threshold_refinement_agrees_across_all_knobs() {
    let mut reference: Option<(Vec<String>, Vec<String>)> = None;
    for workers in WORKERS {
        for cache in CACHE {
            for policy in POLICIES {
                let label = format!("workers={workers} cache={cache} indexes={policy}");
                let mut db = purchase_db();
                db.set_index_policy(policy);
                let engine = MineRuleEngine::new()
                    .with_workers(workers)
                    .with_preprocache(cache);

                // Cold run, then a support-only refinement of the same
                // statement: with the cache on, the second run must be a
                // warm hit that skips every Qi step.
                let cold = engine.execute(&mut db, &simple(0.25, 0.1)).unwrap();
                assert!(!cold.preprocess_report.executed.is_empty(), "{label}");
                let warm = engine.execute(&mut db, &simple(0.5, 0.4)).unwrap();

                let snapshot = engine.metrics_snapshot();
                if cache {
                    assert!(
                        warm.preprocess_report.executed.is_empty(),
                        "{label}: warm run must not execute preprocessing"
                    );
                    assert_eq!(snapshot.counter("preprocess.cache.hit"), 1, "{label}");
                    assert_eq!(snapshot.counter("preprocess.cache.miss"), 1, "{label}");
                } else {
                    assert!(
                        !warm.preprocess_report.executed.is_empty(),
                        "{label}: cache off must preprocess every run"
                    );
                    assert_eq!(snapshot.counter("preprocess.cache.hit"), 0, "{label}");
                }
                // The warm report still states the *current* threshold.
                assert_eq!(
                    warm.preprocess_report.min_groups,
                    minerule::preprocess::min_groups_for(warm.preprocess_report.total_groups, 0.5),
                    "{label}"
                );

                let sigs = (signature(&cold.rules), signature(&warm.rules));
                assert!(!sigs.0.is_empty() && !sigs.1.is_empty(), "{label}");
                match &reference {
                    None => reference = Some(sigs),
                    Some(expected) => {
                        assert_eq!(&sigs.0, &expected.0, "{label}: cold rules diverge");
                        assert_eq!(&sigs.1, &expected.1, "{label}: warm rules diverge");
                    }
                }
            }
        }
    }
}

#[test]
fn general_class_agrees_across_all_knobs() {
    let mut reference: Option<Vec<String>> = None;
    for workers in WORKERS {
        for cache in CACHE {
            for policy in POLICIES {
                let label = format!("workers={workers} cache={cache} indexes={policy}");
                let mut db = purchase_db();
                db.set_index_policy(policy);
                let engine = MineRuleEngine::new()
                    .with_workers(workers)
                    .with_preprocache(cache);
                // Run the paper's §2 statement twice: identical statement,
                // so with the cache on the second run is a warm hit even
                // though the thresholds did not move.
                let first = engine.execute(&mut db, FILTERED_ORDERED_SETS).unwrap();
                let second = engine.execute(&mut db, FILTERED_ORDERED_SETS).unwrap();
                assert_eq!(
                    second.preprocess_report.executed.is_empty(),
                    cache,
                    "{label}"
                );
                let sig = signature(&second.rules);
                assert_eq!(signature(&first.rules), sig, "{label}: rerun diverges");
                match &reference {
                    None => reference = Some(sig),
                    Some(expected) => assert_eq!(&sig, expected, "{label}: rules diverge"),
                }
            }
        }
    }
}

#[test]
fn source_mutation_never_serves_stale_artifacts() {
    for policy in POLICIES {
        let label = format!("indexes={policy}");
        // Cached engine: cold run, mutate the source, rerun.
        let mut db = purchase_db();
        db.set_index_policy(policy);
        let engine = MineRuleEngine::new().with_preprocache(true);
        engine.execute(&mut db, &simple(0.25, 0.1)).unwrap();
        db.execute(
            "INSERT INTO Purchase VALUES \
             (9, 'c9', 'col_shirts', DATE '1997-01-08', 25, 1)",
        )
        .unwrap();
        let after = engine.execute(&mut db, &simple(0.25, 0.1)).unwrap();
        assert!(
            !after.preprocess_report.executed.is_empty(),
            "{label}: a mutated source must force a cold preprocess"
        );
        let snapshot = engine.metrics_snapshot();
        assert_eq!(snapshot.counter("preprocess.cache.hit"), 0, "{label}");
        assert_eq!(snapshot.counter("preprocess.cache.miss"), 2, "{label}");

        // Reference: an uncached engine over a database that was mutated
        // the same way sees exactly the same rules.
        let mut fresh = purchase_db();
        fresh.set_index_policy(policy);
        fresh
            .execute(
                "INSERT INTO Purchase VALUES \
                 (9, 'c9', 'col_shirts', DATE '1997-01-08', 25, 1)",
            )
            .unwrap();
        let reference = MineRuleEngine::new()
            .with_preprocache(false)
            .execute(&mut fresh, &simple(0.25, 0.1))
            .unwrap();
        assert_eq!(
            signature(&after.rules),
            signature(&reference.rules),
            "{label}: post-mutation rules diverge from a cold run"
        );
    }
}

#[test]
fn looser_threshold_refinement_misses_but_agrees() {
    // Group by transaction (4 groups) so the two supports actually map to
    // different :mingroups (2 vs 1) — grouping by customer (2 groups)
    // would round both to 1 and legitimately hit.
    fn by_tr(support: f64) -> String {
        format!(
            "MINE RULE TrAssoc AS SELECT DISTINCT item AS BODY, item AS HEAD, \
             SUPPORT, CONFIDENCE FROM Purchase GROUP BY tr \
             EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: 0.1"
        )
    }
    let mut db = purchase_db();
    let engine = MineRuleEngine::new().with_preprocache(true);
    engine.execute(&mut db, &by_tr(0.5)).unwrap();
    // A *looser* support needs items the cached artifacts pruned, so the
    // superset rule forces a cold run.
    let loose = engine.execute(&mut db, &by_tr(0.25)).unwrap();
    assert!(!loose.preprocess_report.executed.is_empty());
    let snapshot = engine.metrics_snapshot();
    assert_eq!(snapshot.counter("preprocess.cache.hit"), 0);

    let reference = MineRuleEngine::new()
        .with_preprocache(false)
        .execute(&mut purchase_db(), &by_tr(0.25))
        .unwrap();
    assert_eq!(signature(&loose.rules), signature(&reference.rules));
}

// ---- mined-result cache ------------------------------------------------

/// A simple-class statement over `tr` (4 groups), so support thresholds
/// 0.25 / 0.5 map to distinct `:mingroups` (1 vs 2) and loosening is a
/// genuine mined-result cache miss.
fn tr_mine(support: f64, confidence: f64) -> String {
    format!(
        "MINE RULE TrCached AS SELECT DISTINCT item AS BODY, item AS HEAD, \
         SUPPORT, CONFIDENCE FROM Purchase GROUP BY tr \
         EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: {confidence}"
    )
}

const DELTA_INSERT: &str =
    "INSERT INTO Purchase VALUES (9, 'c9', 'col_shirts', DATE '1997-01-08', 25, 1)";

/// An UPDATE is logged as a delete+insert pair, so it rides the same
/// incremental delta path as the INSERT above — while genuinely changing
/// the mined rules (transaction 1 swaps an item).
const DELTA_UPDATE: &str =
    "UPDATE Purchase SET item = 'wool_socks' WHERE tr = 1 AND item = 'hiking_boots'";

/// Counters that prove the core operator ran (or did not).
fn core_work(snapshot: &minerule::telemetry::MetricsSnapshot) -> Vec<(String, u64)> {
    snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("core.level.") || name.starts_with("core.path."))
        .map(|(name, value)| (name.clone(), *value))
        .collect()
}

/// The tentpole sequence — cold mine, loosen (clean miss + recapture),
/// tighten support (refine), tighten confidence (refine), insert delta
/// (incremental re-mine), update delta (delete+insert re-mine) — must
/// stay bit-identical to a cold mine at every stage, for every worker
/// count, with the cache on or off. Warm stages must do zero
/// core-operator work.
#[test]
fn mined_result_refinement_sequence_agrees_across_workers() {
    // (mutation applied before the mine, support, confidence, warm?)
    let stages: [(Option<&str>, f64, f64, bool); 6] = [
        (None, 0.5, 0.4, false),               // cold capture
        (None, 0.25, 0.1, false),              // loosened support: clean miss
        (None, 0.5, 0.1, true),                // tightened support: refine
        (None, 0.5, 0.7, true),                // tightened confidence: refine
        (Some(DELTA_INSERT), 0.25, 0.1, true), // delta: incremental re-mine
        (Some(DELTA_UPDATE), 0.25, 0.1, true), // update delta: delete+insert re-mine
    ];
    for workers in WORKERS {
        for minecache in CACHE {
            let label = format!("workers={workers} minecache={minecache}");
            let mut db = purchase_db();
            let engine = MineRuleEngine::new()
                .with_workers(workers)
                .with_minecache(minecache);
            let mut mutations: Vec<&str> = Vec::new();
            for (stage, (mutation, support, confidence, warm)) in stages.iter().enumerate() {
                if let Some(dml) = mutation {
                    db.execute(dml).unwrap();
                    mutations.push(dml);
                }
                let before = core_work(&engine.metrics_snapshot());
                let run = engine
                    .execute(&mut db, &tr_mine(*support, *confidence))
                    .unwrap();
                let after = core_work(&engine.metrics_snapshot());
                if minecache && *warm {
                    assert_eq!(
                        before, after,
                        "{label} stage {stage}: warm serve must skip the core operator"
                    );
                } else {
                    assert_ne!(
                        before, after,
                        "{label} stage {stage}: cold stage must run the core operator"
                    );
                }

                // Reference: a cold engine over a fresh, equally-mutated db.
                let mut fresh = purchase_db();
                for dml in &mutations {
                    fresh.execute(dml).unwrap();
                }
                let reference = MineRuleEngine::new()
                    .with_preprocache(false)
                    .with_minecache(false)
                    .execute(&mut fresh, &tr_mine(*support, *confidence))
                    .unwrap();
                assert!(!reference.rules.is_empty(), "{label} stage {stage}");
                assert_eq!(
                    signature(&run.rules),
                    signature(&reference.rules),
                    "{label} stage {stage}: rules diverge from a cold mine"
                );
            }
            let snapshot = engine.metrics_snapshot();
            if minecache {
                assert_eq!(snapshot.counter("core.minecache.miss"), 2, "{label}");
                assert_eq!(snapshot.counter("core.minecache.hit"), 4, "{label}");
                assert_eq!(snapshot.counter("core.minecache.refine"), 2, "{label}");
                assert_eq!(snapshot.counter("core.minecache.delta"), 2, "{label}");
            } else {
                for name in [
                    "core.minecache.miss",
                    "core.minecache.hit",
                    "core.minecache.refine",
                    "core.minecache.delta",
                ] {
                    assert_eq!(snapshot.counter(name), 0, "{label}: {name}");
                }
            }
        }
    }
}

/// Overflowing the bounded store evicts the oldest entry; a rerun of the
/// evicted statement is a clean miss that still agrees with a cold mine.
#[test]
fn mined_result_eviction_recaptures_and_agrees() {
    // The cache fingerprint ignores thresholds and the output name, so
    // distinct entries need distinct source fragments: vary GROUP BY.
    const GROUPINGS: [&str; 9] = [
        "tr",
        "customer",
        "date",
        "price",
        "qty",
        "tr, customer",
        "tr, date",
        "customer, date",
        "tr, price",
    ];
    fn named(group_by: &str) -> String {
        format!(
            "MINE RULE Evict AS SELECT DISTINCT item AS BODY, item AS HEAD, \
             SUPPORT, CONFIDENCE FROM Purchase GROUP BY {group_by} \
             EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1"
        )
    }
    let mut db = purchase_db();
    let engine = MineRuleEngine::new().with_minecache(true);
    // Nine distinct statements against an 8-entry store: the first one
    // is evicted by the time the ninth lands.
    for group_by in GROUPINGS {
        engine.execute(&mut db, &named(group_by)).unwrap();
    }
    let snapshot = engine.metrics_snapshot();
    assert!(snapshot.counter("core.minecache.evict") >= 1);
    assert_eq!(snapshot.counter("core.minecache.hit"), 0);

    let rerun = engine.execute(&mut db, &named("tr")).unwrap();
    let snapshot = engine.metrics_snapshot();
    assert_eq!(
        snapshot.counter("core.minecache.miss"),
        10,
        "the evicted statement must miss, not serve stale results"
    );
    let reference = MineRuleEngine::new()
        .with_preprocache(false)
        .with_minecache(false)
        .execute(&mut purchase_db(), &named("tr"))
        .unwrap();
    assert_eq!(signature(&rerun.rules), signature(&reference.rules));
}

/// The two caches are independent: a general-class rerun is a preprocess
/// cache *hit* that still feeds a mined-result cache *miss* (the result
/// cache only captures the simple fused-pass shape).
#[test]
fn preprocess_hit_feeds_mined_result_miss() {
    let mut db = purchase_db();
    let engine = MineRuleEngine::new()
        .with_preprocache(true)
        .with_minecache(true);
    let first = engine.execute(&mut db, FILTERED_ORDERED_SETS).unwrap();
    let second = engine.execute(&mut db, FILTERED_ORDERED_SETS).unwrap();
    assert!(second.preprocess_report.executed.is_empty());
    let snapshot = engine.metrics_snapshot();
    assert_eq!(snapshot.counter("preprocess.cache.hit"), 1);
    assert_eq!(snapshot.counter("core.minecache.hit"), 0);
    assert_eq!(snapshot.counter("core.minecache.miss"), 2);
    assert_eq!(signature(&first.rules), signature(&second.rules));
}

#[test]
fn confidence_only_refinement_always_hits() {
    let mut db = purchase_db();
    let engine = MineRuleEngine::new().with_preprocache(true);
    engine.execute(&mut db, &simple(0.25, 0.1)).unwrap();
    let warm = engine.execute(&mut db, &simple(0.25, 0.8)).unwrap();
    assert!(warm.preprocess_report.executed.is_empty());
    assert_eq!(engine.metrics_snapshot().counter("preprocess.cache.hit"), 1);
    let reference = MineRuleEngine::new()
        .with_preprocache(false)
        .execute(&mut purchase_db(), &simple(0.25, 0.8))
        .unwrap();
    assert_eq!(signature(&warm.rules), signature(&reference.rules));
}
