//! Golden reproduction of the paper's §2 worked example (Figures 1, 2a,
//! 2b) through the full public API — experiment ids F1, F2a, F2b of
//! DESIGN.md.

use minerule::paper_example::{
    purchase_db, run_paper_example, FIGURE_2B, FILTERED_ORDERED_SETS, PURCHASE_ROWS,
};
use minerule::{parse_mine_rule, Directives, MineRuleEngine, StatementClass};
use relational::Value;

#[test]
fn f1_purchase_table_matches_figure_1() {
    let mut db = purchase_db();
    let rs = db
        .query("SELECT tr, customer, item, price, qty FROM Purchase ORDER BY tr, item")
        .unwrap();
    assert_eq!(rs.len(), PURCHASE_ROWS.len());
    // Spot-check the first and last Figure 1 rows.
    assert_eq!(rs.rows()[0][2], Value::Str("hiking_boots".into()));
    assert_eq!(rs.rows()[0][3], Value::Int(180));
    let last = rs.rows().last().unwrap();
    assert_eq!(last[0], Value::Int(4));
    assert_eq!(last[4], Value::Int(2), "qty of the 2 jackets in tr 4");
}

#[test]
fn f2a_clusters_match_figure_2a() {
    let mut db = purchase_db();
    // Figure 2a: cust1 has clusters 12/17 (2 items) and 12/18 (1 item);
    // cust2 has 12/18 (3 items) and 12/19 (2 items).
    let rs = db
        .query(
            "SELECT customer, COUNT(DISTINCT date) AS clusters FROM Purchase \
             GROUP BY customer ORDER BY customer",
        )
        .unwrap();
    assert_eq!(rs.rows()[0][1], Value::Int(2));
    assert_eq!(rs.rows()[1][1], Value::Int(2));
}

#[test]
fn f2b_rules_match_figure_2b_exactly() {
    let (_, outcome) = run_paper_example().unwrap();
    let mut got: Vec<(Vec<String>, Vec<String>, f64, f64)> = outcome
        .rules
        .iter()
        .map(|r| (r.body.clone(), r.head.clone(), r.support, r.confidence))
        .collect();
    got.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut expected: Vec<(Vec<String>, Vec<String>, f64, f64)> = FIGURE_2B
        .iter()
        .map(|(b, h, s, c)| {
            (
                b.iter().map(|x| x.to_string()).collect(),
                h.iter().map(|x| x.to_string()).collect(),
                *s,
                *c,
            )
        })
        .collect();
    expected.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    assert_eq!(got.len(), expected.len(), "{got:#?}");
    for (g, e) in got.iter().zip(&expected) {
        assert_eq!(g.0, e.0, "body");
        assert_eq!(g.1, e.1, "head");
        assert!((g.2 - e.2).abs() < 1e-9, "support of {:?}", g.0);
        assert!((g.3 - e.3).abs() < 1e-9, "confidence of {:?}", g.0);
    }
}

#[test]
fn f2b_output_tables_are_sql3_style_relations() {
    let (mut db, _) = run_paper_example().unwrap();
    // The rule table has the normalised schema of §4.4.
    let rs = db
        .query("SELECT BodyId, HeadId, SUPPORT, CONFIDENCE FROM FilteredOrderedSets")
        .unwrap();
    assert_eq!(rs.len(), 3);
    // The bodies table decodes each BodyId to its items.
    let rs = db
        .query(
            "SELECT item FROM FilteredOrderedSets_Bodies \
             WHERE BodyId IN (SELECT BodyId FROM FilteredOrderedSets) ORDER BY item",
        )
        .unwrap();
    assert!(rs.len() >= 3);
    // Every head is col_shirts.
    let rs = db
        .query("SELECT DISTINCT item FROM FilteredOrderedSets_Heads")
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows()[0][0], Value::Str("col_shirts".into()));
}

#[test]
fn paper_statement_classification() {
    let stmt = parse_mine_rule(FILTERED_ORDERED_SETS).unwrap();
    let d = Directives::classify(&stmt);
    assert!(d.w && d.m && d.c && d.k);
    assert!(!d.h && !d.g && !d.f && !d.r);
    assert_eq!(d.class(), StatementClass::General);
}

#[test]
fn rerun_after_cleanup_is_idempotent() {
    let mut db = purchase_db();
    let engine = MineRuleEngine::new();
    let first = engine.execute(&mut db, FILTERED_ORDERED_SETS).unwrap();
    let second = engine.execute(&mut db, FILTERED_ORDERED_SETS).unwrap();
    assert_eq!(first.rules, second.rules);
}

#[test]
fn source_condition_filters_1996_purchases() {
    // Add a 1996 purchase that would otherwise create a new rule; the
    // FROM..WHERE of the statement must exclude it (step 1 of §2).
    let mut db = purchase_db();
    db.execute(
        "INSERT INTO Purchase VALUES \
         (5, 'cust1', 'jackets', DATE '1996-01-05', 300, 1), \
         (6, 'cust1', 'col_shirts', DATE '1996-01-06', 25, 1)",
    )
    .unwrap();
    let outcome = MineRuleEngine::new()
        .execute(&mut db, FILTERED_ORDERED_SETS)
        .unwrap();
    assert_eq!(outcome.rules.len(), FIGURE_2B.len(), "{:#?}", outcome.rules);
}
