//! Differential testing: the full pipeline (translator → preprocessor →
//! core operator → postprocessor) against the brute-force reference
//! evaluator of MINE RULE's operational semantics, on randomized small
//! datasets across every statement class. Datasets are generated from
//! per-test seeds, so every run checks the same deterministic battery.

use datagen::rng::Rng;

use minerule::reference::reference_mine;
use minerule::{parse_mine_rule, DecodedRule, MineRuleEngine};
use relational::Database;

const CASES: u64 = 32;

// The dataset generators live in the fuzz harness
// (`tcdm_fuzz::grammar`) so the differential fuzzer and this suite draw
// from one scenario space: Purchase-like tables with deterministic
// expensive/cheap item prices.
use tcdm_fuzz::grammar::{build_purchase_db, random_purchases};

fn compare(db: &mut Database, statement: &str) {
    let stmt = parse_mine_rule(statement).unwrap();
    let expected = reference_mine(db, &stmt).unwrap();
    let outcome = MineRuleEngine::new().execute(db, statement).unwrap();
    let norm = |rules: &[DecodedRule]| -> Vec<(Vec<String>, Vec<String>, String, String)> {
        let mut v: Vec<_> = rules
            .iter()
            .map(|r| {
                (
                    r.body.clone(),
                    r.head.clone(),
                    format!("{:.6}", r.support),
                    format!("{:.6}", r.confidence),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        norm(&outcome.rules),
        norm(&expected),
        "pipeline vs reference diverge on:\n{statement}"
    );
}

/// Run `statement` (a closure so each case can vary thresholds) against
/// `CASES` deterministic random databases.
fn check_class(seed: u64, statement: impl Fn(&mut Rng) -> String) {
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..CASES {
        let purchases = random_purchases(&mut rng);
        let mut db = build_purchase_db(&purchases);
        let stmt = statement(&mut rng);
        compare(&mut db, &stmt);
    }
}

#[test]
fn simple_class_matches_reference() {
    check_class(0xD0, |rng| {
        let support = [0.2, 0.4, 0.6][rng.gen_range_usize(0, 3)];
        let confidence = [0.1, 0.5][rng.gen_range_usize(0, 2)];
        format!(
            "MINE RULE Diff AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
             SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: {confidence}"
        )
    });
}

#[test]
fn wide_heads_match_reference() {
    check_class(0xD1, |_| {
        "MINE RULE Diff AS SELECT DISTINCT 1..n item AS BODY, 1..2 item AS HEAD, \
         SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
         EXTRACTING RULES WITH SUPPORT: 0.3, CONFIDENCE: 0.1"
            .into()
    });
}

#[test]
fn mining_condition_matches_reference() {
    check_class(0xD2, |_| {
        "MINE RULE Diff AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
         SUPPORT, CONFIDENCE WHERE BODY.price >= 100 AND HEAD.price < 100 \
         FROM Purchase GROUP BY customer \
         EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.1"
            .into()
    });
}

#[test]
fn clustered_statement_matches_reference() {
    check_class(0xD3, |_| {
        "MINE RULE Diff AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, \
         SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer CLUSTER BY date \
         EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1"
            .into()
    });
}

#[test]
fn temporal_statement_matches_reference() {
    // The paper's full shape: mining condition + ordered clusters.
    check_class(0xD4, |_| {
        "MINE RULE Diff AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, \
         SUPPORT, CONFIDENCE WHERE BODY.price >= 100 AND HEAD.price < 100 \
         FROM Purchase GROUP BY customer CLUSTER BY date HAVING BODY.date < HEAD.date \
         EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.1"
            .into()
    });
}

#[test]
fn group_having_matches_reference() {
    check_class(0xD5, |_| {
        "MINE RULE Diff AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
         SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer HAVING COUNT(item) >= 2 \
         EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.1"
            .into()
    });
}

#[test]
fn source_condition_matches_reference() {
    check_class(0xD6, |_| {
        "MINE RULE Diff AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
         SUPPORT, CONFIDENCE FROM Purchase WHERE price < 125 GROUP BY customer \
         EXTRACTING RULES WITH SUPPORT: 0.3, CONFIDENCE: 0.2"
            .into()
    });
}

#[test]
fn coupled_mining_condition_matches_reference() {
    // A condition relating BODY and HEAD attributes of the *pair*
    // (not decomposable per side) exercises the Q8 join fully.
    check_class(0xD7, |_| {
        "MINE RULE Diff AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
         SUPPORT, CONFIDENCE WHERE BODY.price > HEAD.price \
         FROM Purchase GROUP BY customer \
         EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.1"
            .into()
    });
}

#[test]
fn aggregate_cluster_condition_matches_reference() {
    check_class(0xD8, |_| {
        "MINE RULE Diff AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, \
         SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
         CLUSTER BY date HAVING SUM(BODY.price) > SUM(HEAD.price) \
         EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1"
            .into()
    });
}

#[test]
fn cross_schema_matches_reference() {
    // H = true: body on item, head on qty (deterministic dataset).
    let mut db = build_purchase_db(&[
        vec![(0, 1), (0, 5), (1, 5)],
        vec![(0, 1), (1, 5)],
        vec![(0, 2), (1, 1)],
    ]);
    let stmt = "MINE RULE Diff AS SELECT DISTINCT 1..1 item AS BODY, 1..1 qty AS HEAD, \
         SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer \
         EXTRACTING RULES WITH SUPPORT: 0.3, CONFIDENCE: 0.1";
    let parsed = parse_mine_rule(stmt).unwrap();
    let expected = reference_mine(&mut db, &parsed).unwrap();
    let outcome = MineRuleEngine::new().execute(&mut db, stmt).unwrap();
    assert_eq!(outcome.rules, expected);
    assert!(!outcome.rules.is_empty());
}
