//! Save/load round-trips at the workspace level: a persisted database
//! reloads bit-exact (tables, views, sequences), supports MINE RULE
//! immediately, and every reloaded table carries a *fresh* version stamp
//! so no pre-save index or preprocess-cache entry can ever hit it.
//!
//! The second half covers the paged storage backend: kill-and-recover
//! sweeps that inject a crash at *every* WAL append/fsync boundary and
//! check that recovery keeps exactly the committed prefix, plus
//! paged-vs-memory mining agreement across worker counts.

use minerule::paper_example::purchase_db;
use minerule::MineRuleEngine;
use relational::sequence::Sequence;
use relational::{persist, Database, StorageBackend, StorageConfig, Value, WalFault, WalFaultKind};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tcdm_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const STMT: &str =
    "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
     FROM Purchase GROUP BY customer \
     EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1";

#[test]
fn mined_database_roundtrips_and_mines_again() {
    let dir = temp_dir("mine");
    let mut db = purchase_db();
    let original = MineRuleEngine::new().execute(&mut db, STMT).unwrap();
    persist::save(&db, &dir).unwrap();

    let mut reloaded = persist::load(&dir).unwrap();
    // The mined output tables came back bit-exact.
    for table in ["R", "R_Bodies", "R_Heads", "Purchase"] {
        let a = db.query(&format!("SELECT * FROM {table}")).unwrap();
        let b = reloaded.query(&format!("SELECT * FROM {table}")).unwrap();
        assert_eq!(a.rows(), b.rows(), "{table} differs after reload");
    }
    // Mining over the reloaded database reproduces the same rules.
    let again = MineRuleEngine::new().execute(&mut reloaded, STMT).unwrap();
    let sig = |rules: &[minerule::DecodedRule]| -> Vec<String> {
        rules.iter().map(|r| r.display()).collect::<Vec<_>>()
    };
    assert_eq!(sig(&original.rules), sig(&again.rules));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reloaded_tables_get_fresh_version_stamps() {
    let dir = temp_dir("versions");
    let mut db = purchase_db();
    MineRuleEngine::new().execute(&mut db, STMT).unwrap();
    let saved_version = db.catalog().table("Purchase").unwrap().version();
    persist::save(&db, &dir).unwrap();

    let reloaded = persist::load(&dir).unwrap();
    let reloaded_version = reloaded.catalog().table("Purchase").unwrap().version();
    // Versions are globally unique: a reload is a *new* table generation,
    // so stale index registry or preprocess-cache entries keyed on the
    // old version can never hit the reloaded data.
    assert_ne!(saved_version, reloaded_version);
    assert!(
        reloaded_version > saved_version,
        "version stamps are monotone across generations"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A workload touching every catalog object kind: tables (create,
/// insert, update, delete), a view and a sequence. One statement = one
/// WAL transaction, so every statement is a recovery boundary.
const CRASH_STMTS: &[&str] = &[
    "CREATE TABLE t (a INT, b VARCHAR)",
    "INSERT INTO t VALUES (1, 'one'), (2, 'two')",
    "CREATE VIEW big AS SELECT a FROM t WHERE a > 1",
    "CREATE SEQUENCE ids",
    "INSERT INTO t VALUES (3, 'three')",
    "UPDATE t SET b = 'big' WHERE a >= 2",
    "DELETE FROM t WHERE a = 1",
];

/// Assert both databases hold the same catalog and the same rows in
/// every table (bit-exact `Value` comparison).
fn assert_same_state(a: &mut Database, b: &mut Database, context: &str) {
    assert_eq!(
        a.catalog().table_names(),
        b.catalog().table_names(),
        "{context}: table set"
    );
    assert_eq!(
        a.catalog().view_definitions(),
        b.catalog().view_definitions(),
        "{context}: views"
    );
    assert_eq!(
        a.catalog().sequence_states(),
        b.catalog().sequence_states(),
        "{context}: sequences"
    );
    let names: Vec<String> = a
        .catalog()
        .table_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    for name in names {
        let qa = a.query(&format!("SELECT * FROM {name}")).unwrap();
        let qb = b.query(&format!("SELECT * FROM {name}")).unwrap();
        assert_eq!(qa.rows(), qb.rows(), "{context}: rows of {name}");
    }
}

/// Inject a crash at every WAL append and fsync boundary of the
/// workload. After each simulated crash the store is poisoned (every
/// further statement errors, like a dead process); reopening must
/// recover exactly the statements that reported success and nothing
/// else — the committed prefix.
#[test]
fn recovery_keeps_the_committed_prefix_at_every_crash_point() {
    // Clean run: establish the deterministic operation counts. The
    // boundaries below init (store creation) are skipped — faults are
    // armed only after open.
    let dir = temp_dir("crash_clean");
    let mut db = Database::open_paged(&dir).unwrap();
    let base_appends = db.stats().storage_wal_appends;
    let base_fsyncs = db.stats().storage_wal_fsyncs;
    for stmt in CRASH_STMTS {
        db.execute(stmt).unwrap();
    }
    let total_appends = db.stats().storage_wal_appends;
    let total_fsyncs = db.stats().storage_wal_fsyncs;
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(total_appends > base_appends && total_fsyncs > base_fsyncs);

    let mut crash_points = Vec::new();
    for at in base_appends..total_appends {
        crash_points.push(WalFault {
            kind: WalFaultKind::Append,
            at,
        });
        crash_points.push(WalFault {
            kind: WalFaultKind::TornAppend,
            at,
        });
    }
    for at in base_fsyncs..total_fsyncs {
        crash_points.push(WalFault {
            kind: WalFaultKind::Fsync,
            at,
        });
    }

    for fault in crash_points {
        let dir = temp_dir("crash_sweep");
        let mut db = Database::open_paged(&dir).unwrap();
        db.inject_wal_fault(Some(fault));
        let mut committed = Vec::new();
        let mut failed = 0;
        for stmt in CRASH_STMTS {
            match db.execute(stmt) {
                Ok(_) => committed.push(*stmt),
                Err(_) => failed += 1,
            }
        }
        assert!(failed > 0, "{fault:?}: the injected crash must fire");
        drop(db); // the "kill"

        let mut recovered = Database::open_paged(&dir).unwrap();
        let mut expected = Database::new();
        for stmt in &committed {
            expected.execute(stmt).unwrap();
        }
        assert_same_state(&mut recovered, &mut expected, &format!("{fault:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The paged backend mines bit-identical rules to the memory backend
/// for every worker count, and the mined output tables survive a
/// reopen bit-exact.
#[test]
fn paged_and_memory_backends_mine_identical_rules() {
    let sig = |rules: &[minerule::DecodedRule]| -> Vec<String> {
        rules.iter().map(|r| r.display()).collect()
    };
    for workers in [1usize, 2, 4] {
        let mut mem_db = purchase_db();
        let memory = MineRuleEngine::new()
            .with_workers(workers)
            .execute(&mut mem_db, STMT)
            .unwrap();

        let dir = temp_dir(&format!("agree_{workers}"));
        let mut db = purchase_db();
        db.set_storage_dir(&dir);
        let paged = MineRuleEngine::new()
            .with_workers(workers)
            .with_storage(StorageBackend::Paged)
            .execute(&mut db, STMT)
            .unwrap();
        assert_eq!(
            sig(&memory.rules),
            sig(&paged.rules),
            "workers={workers}: paged and memory backends must agree"
        );
        db.checkpoint().unwrap();
        drop(db);

        let mut reopened = Database::open_paged(&dir).unwrap();
        assert_same_state(&mut reopened, &mut mem_db, &format!("workers={workers}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A one-page cache with an aggressive checkpoint threshold forces
/// evictions and mid-run checkpoints; the mined rules and the durable
/// state are still identical to the memory backend's.
#[test]
fn tiny_cache_and_frequent_checkpoints_preserve_agreement() {
    let mut mem_db = purchase_db();
    let memory = MineRuleEngine::new().execute(&mut mem_db, STMT).unwrap();

    let dir = temp_dir("tiny_cache");
    let mut db = purchase_db();
    db.set_storage_dir(&dir);
    db.set_storage_config(StorageConfig {
        cache_pages: 1,
        checkpoint_bytes: 4096,
    });
    db.set_storage(StorageBackend::Paged).unwrap();
    let paged = MineRuleEngine::new().execute(&mut db, STMT).unwrap();
    assert_eq!(memory.rules, paged.rules, "bit-identical under pressure");
    assert!(
        db.stats().storage_cache_evictions > 0,
        "the one-page budget must actually evict"
    );
    db.checkpoint().unwrap();
    drop(db);

    let mut reopened = Database::open_paged(&dir).unwrap();
    assert_same_state(&mut reopened, &mut mem_db, "tiny cache");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reopening a paged store mints fresh table version stamps, exactly
/// like a TSV reload: stale index or preprocess-cache entries keyed on
/// pre-crash versions can never hit recovered data.
#[test]
fn paged_reopen_mints_fresh_version_stamps() {
    let dir = temp_dir("paged_versions");
    let mut db = Database::open_paged(&dir).unwrap();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let saved = db.catalog().table("t").unwrap().version();
    db.checkpoint().unwrap();
    drop(db);

    let reopened = Database::open_paged(&dir).unwrap();
    let recovered = reopened.catalog().table("t").unwrap().version();
    assert_ne!(saved, recovered);
    assert!(recovered > saved, "versions stay monotone across reopens");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequences_resume_from_persisted_state() {
    let dir = temp_dir("sequences");
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.catalog_mut()
        .create_sequence(Sequence::new("ids", 10, 3))
        .unwrap();
    // Consume the first value (10); 13 must be next after reload.
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("CREATE TABLE consumed AS (SELECT ids.NEXTVAL AS v, a FROM t)")
        .unwrap();
    persist::save(&db, &dir).unwrap();

    let mut reloaded = persist::load(&dir).unwrap();
    let states = reloaded.catalog().sequence_states();
    assert!(
        states
            .iter()
            .any(|(name, _, increment)| name.eq_ignore_ascii_case("ids") && *increment == 3),
        "sequence missing after reload: {states:?}"
    );
    reloaded.execute("INSERT INTO t VALUES (2)").unwrap();
    reloaded.execute("DROP TABLE consumed").unwrap();
    reloaded
        .execute("CREATE TABLE consumed AS (SELECT ids.NEXTVAL AS v, a FROM t)")
        .unwrap();
    let rs = reloaded.query("SELECT MIN(v) FROM consumed").unwrap();
    assert_eq!(
        rs.scalar(),
        Some(&Value::Int(13)),
        "sequence must resume where the saved database stopped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
