//! Save/load round-trips at the workspace level: a persisted database
//! reloads bit-exact (tables, views, sequences), supports MINE RULE
//! immediately, and every reloaded table carries a *fresh* version stamp
//! so no pre-save index or preprocess-cache entry can ever hit it.

use minerule::paper_example::purchase_db;
use minerule::MineRuleEngine;
use relational::sequence::Sequence;
use relational::{persist, Database, Value};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tcdm_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const STMT: &str =
    "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD, SUPPORT, CONFIDENCE \
     FROM Purchase GROUP BY customer \
     EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1";

#[test]
fn mined_database_roundtrips_and_mines_again() {
    let dir = temp_dir("mine");
    let mut db = purchase_db();
    let original = MineRuleEngine::new().execute(&mut db, STMT).unwrap();
    persist::save(&db, &dir).unwrap();

    let mut reloaded = persist::load(&dir).unwrap();
    // The mined output tables came back bit-exact.
    for table in ["R", "R_Bodies", "R_Heads", "Purchase"] {
        let a = db.query(&format!("SELECT * FROM {table}")).unwrap();
        let b = reloaded.query(&format!("SELECT * FROM {table}")).unwrap();
        assert_eq!(a.rows(), b.rows(), "{table} differs after reload");
    }
    // Mining over the reloaded database reproduces the same rules.
    let again = MineRuleEngine::new().execute(&mut reloaded, STMT).unwrap();
    let sig = |rules: &[minerule::DecodedRule]| -> Vec<String> {
        rules.iter().map(|r| r.display()).collect::<Vec<_>>()
    };
    assert_eq!(sig(&original.rules), sig(&again.rules));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reloaded_tables_get_fresh_version_stamps() {
    let dir = temp_dir("versions");
    let mut db = purchase_db();
    MineRuleEngine::new().execute(&mut db, STMT).unwrap();
    let saved_version = db.catalog().table("Purchase").unwrap().version();
    persist::save(&db, &dir).unwrap();

    let reloaded = persist::load(&dir).unwrap();
    let reloaded_version = reloaded.catalog().table("Purchase").unwrap().version();
    // Versions are globally unique: a reload is a *new* table generation,
    // so stale index registry or preprocess-cache entries keyed on the
    // old version can never hit the reloaded data.
    assert_ne!(saved_version, reloaded_version);
    assert!(
        reloaded_version > saved_version,
        "version stamps are monotone across generations"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequences_resume_from_persisted_state() {
    let dir = temp_dir("sequences");
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.catalog_mut()
        .create_sequence(Sequence::new("ids", 10, 3))
        .unwrap();
    // Consume the first value (10); 13 must be next after reload.
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("CREATE TABLE consumed AS (SELECT ids.NEXTVAL AS v, a FROM t)")
        .unwrap();
    persist::save(&db, &dir).unwrap();

    let mut reloaded = persist::load(&dir).unwrap();
    let states = reloaded.catalog().sequence_states();
    assert!(
        states
            .iter()
            .any(|(name, _, increment)| name.eq_ignore_ascii_case("ids") && *increment == 3),
        "sequence missing after reload: {states:?}"
    );
    reloaded.execute("INSERT INTO t VALUES (2)").unwrap();
    reloaded.execute("DROP TABLE consumed").unwrap();
    reloaded
        .execute("CREATE TABLE consumed AS (SELECT ids.NEXTVAL AS v, a FROM t)")
        .unwrap();
    let rs = reloaded.query("SELECT MIN(v) FROM consumed").unwrap();
    assert_eq!(
        rs.scalar(),
        Some(&Value::Int(13)),
        "sequence must resume where the saved database stopped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
