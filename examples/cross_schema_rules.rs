//! General rules whose body and head live on *different attributes*
//! (directive H): "which skills imply which tools inside project teams".
//! This is the class of statements no classical association-rule tool
//! could express — MINE RULE handles it with the `Hset` encoding and the
//! general core operator.
//!
//! Run with: `cargo run --example cross_schema_rules`

use minerule::MineRuleEngine;
use relational::Database;

fn main() {
    let mut db = Database::new();
    db.execute("CREATE TABLE Staffing (project VARCHAR, skill VARCHAR, tool VARCHAR)")
        .expect("create");
    // Each row: a project member with a skill using a tool.
    db.execute(
        "INSERT INTO Staffing VALUES \
         ('alpha', 'sql',  'oracle'), \
         ('alpha', 'c',    'gdb'), \
         ('alpha', 'sql',  'tkprof'), \
         ('beta',  'sql',  'oracle'), \
         ('beta',  'ada',  'gnat'), \
         ('gamma', 'sql',  'oracle'), \
         ('gamma', 'c',    'gdb'), \
         ('delta', 'sql',  'db2'), \
         ('delta', 'c',    'gdb'), \
         ('eps',   'ada',  'gnat'), \
         ('eps',   'sql',  'oracle')",
    )
    .expect("insert");

    // Body drawn from `skill`, head from `tool`: H = true.
    let statement = "\
        MINE RULE SkillTools AS \
        SELECT DISTINCT 1..2 skill AS BODY, 1..1 tool AS HEAD, SUPPORT, CONFIDENCE \
        FROM Staffing GROUP BY project \
        EXTRACTING RULES WITH SUPPORT: 0.4, CONFIDENCE: 0.6";

    let outcome = MineRuleEngine::new()
        .execute(&mut db, statement)
        .expect("cross-schema mining runs");

    println!(
        "classified as {} [{}]\n",
        outcome.translation.class, outcome.translation.directives
    );
    assert!(outcome.translation.directives.h, "body/head schemas differ");

    println!("skill ⇒ tool rules across projects:");
    for r in &outcome.rules {
        println!("  {}", r.display());
    }

    // Both encodings exist in the catalog: Bset for skills, Hset for tools.
    let bset = db.query("SELECT * FROM Bset").unwrap().sorted();
    let hset = db.query("SELECT * FROM Hset").unwrap().sorted();
    println!("\nBset (large skills):\n{bset}");
    println!("Hset (large tools):\n{hset}");
}
