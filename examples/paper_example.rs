//! Figures 1 and 2 of the paper, reproduced end to end: the `Purchase`
//! table, the grouped/clustered view, the `FilteredOrderedSets` statement
//! and its exact output rules.
//!
//! Run with: `cargo run --example paper_example`

use minerule::paper_example::{run_paper_example, FILTERED_ORDERED_SETS};

fn main() {
    let (mut db, outcome) = run_paper_example().expect("paper example runs");

    println!("== Figure 1: the Purchase table ==");
    let rs = db
        .query("SELECT tr, customer, item, date, price, qty FROM Purchase ORDER BY tr, item")
        .unwrap();
    println!("{rs}");

    println!("== Figure 2a: grouped by customer, clustered by date ==");
    let rs = db
        .query(
            "SELECT customer, date, item, tr, price, qty FROM Purchase \
             ORDER BY customer, date, item",
        )
        .unwrap();
    println!("{rs}");

    println!("== The MINE RULE statement (§2) ==");
    println!("{FILTERED_ORDERED_SETS}\n");
    println!(
        "classified as: {} [{}]\n",
        outcome.translation.class, outcome.translation.directives
    );

    println!("== Figure 2b: FilteredOrderedSets ==");
    for rule in &outcome.rules {
        println!("  {}", rule.display());
    }

    println!("\n== The same rules as database tables ==");
    for table in [
        "FilteredOrderedSets",
        "FilteredOrderedSets_Bodies",
        "FilteredOrderedSets_Heads",
    ] {
        let rs = db
            .query(&format!("SELECT * FROM {table}"))
            .unwrap()
            .sorted();
        println!("{table}:\n{rs}");
    }

    println!("phase timings: {:?}", outcome.timings);
}
