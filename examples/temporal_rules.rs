//! General rules with temporal clusters: "expensive purchases followed by
//! cheap purchases on a later date by the same customer" — the exact
//! shape of the paper's §2 statement, on a synthetic retail table with
//! planted follow-up patterns.
//!
//! Run with: `cargo run --release --example temporal_rules`

use datagen::{generate_retail, RetailConfig};
use minerule::MineRuleEngine;
use relational::Database;

fn main() {
    let config = RetailConfig {
        customers: 300,
        dates_per_customer: 4,
        items_per_date: 2.5,
        catalog: 30,
        expensive_items: 10,
        follow_up_probability: 0.7,
        ..RetailConfig::default()
    };
    let data = generate_retail(&config);
    let mut db = Database::new();
    data.load(&mut db, "Purchase").expect("load purchases");
    println!(
        "{} purchase rows for {} customers\n",
        data.rows.len(),
        config.customers
    );

    // The paper's §2 statement shape on the synthetic data: premise items
    // cost ≥ 100, consequence items < 100, consequence strictly later.
    let statement = "\
        MINE RULE FollowUps AS \
        SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE \
        WHERE BODY.price >= 100 AND HEAD.price < 100 \
        FROM Purchase \
        GROUP BY customer \
        CLUSTER BY date HAVING BODY.date < HEAD.date \
        EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.3";

    let outcome = MineRuleEngine::new()
        .execute(&mut db, statement)
        .expect("temporal mining runs");

    println!(
        "classified as {} [{}] — general core operator: {}\n",
        outcome.translation.class, outcome.translation.directives, outcome.used_general
    );
    println!(
        "found {} temporal rules; strongest first:",
        outcome.rules.len()
    );
    let mut rules = outcome.rules.clone();
    rules.sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).unwrap());
    for r in rules.iter().take(15) {
        println!("  {}", r.display());
    }

    // Check the planted pattern is recovered: every expensive item k has
    // complement item (k mod cheap-range) + expensive_items.
    let planted = rules.iter().filter(|r| {
        r.body.len() == 1 && r.head.len() == 1 && r.body[0].starts_with("item") && {
            let k: u32 = r.body[0][4..].parse().unwrap_or(999);
            let comp = datagen::retail::complement_of(k, &config);
            r.head[0] == datagen::retail::item_name(comp)
        }
    });
    println!(
        "\nplanted follow-up pairs recovered: {}/{}",
        planted.count(),
        config.expensive_items
    );

    println!("\nphase timings: {:?}", outcome.timings);
}
