//! Market-basket mining at scale: Quest-style synthetic baskets, mined by
//! every member of the algorithm pool. Demonstrates algorithm
//! interoperability — all pool members are interchangeable behind the
//! same MINE RULE statement and produce the same rules.
//!
//! Run with: `cargo run --release --example market_basket`

use datagen::{generate_quest, load_quest, QuestConfig};
use minerule::MineRuleEngine;
use relational::Database;

fn main() {
    let config = QuestConfig {
        transactions: 2000,
        avg_transaction_size: 8.0,
        avg_pattern_size: 3.0,
        patterns: 50,
        items: 200,
        ..QuestConfig::default()
    };
    println!(
        "generating {} baskets ({})...",
        config.transactions,
        config.name()
    );
    let data = generate_quest(&config);

    let mut db = Database::new();
    load_quest(&data, &mut db, "Baskets").expect("load baskets");
    println!("loaded {} (tr, item) rows\n", data.row_count());

    let statement = "\
        MINE RULE BasketRules AS \
        SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
        FROM Baskets GROUP BY tr \
        EXTRACTING RULES WITH SUPPORT: 0.03, CONFIDENCE: 0.5";

    let mut reference: Option<Vec<String>> = None;
    for algorithm in [
        "apriori",
        "count",
        "dhp",
        "partition",
        "sampling",
        "eclat",
        "fpgrowth",
    ] {
        let engine = MineRuleEngine::new().with_algorithm(algorithm);
        let outcome = engine.execute(&mut db, statement).expect("mining runs");
        let rendered: Vec<String> = outcome.rules.iter().map(|r| r.display()).collect();
        println!(
            "{algorithm:>12}: {} rules, core {:?} (preprocess {:?})",
            rendered.len(),
            outcome.timings.core,
            outcome.timings.preprocess,
        );
        match &reference {
            None => reference = Some(rendered),
            Some(r) => assert_eq!(&rendered, r, "pool member {algorithm} disagrees"),
        }
    }

    println!("\nall five algorithms produced identical rule sets ✓");
    println!("\ntop rules by confidence:");
    let mut rules = reference.unwrap();
    rules.sort_by(|a, b| b.cmp(a));
    for r in rules.iter().take(10) {
        println!("  {r}");
    }
}
