//! Quickstart: load a tiny sales table and mine simple association rules
//! with one MINE RULE statement.
//!
//! Run with: `cargo run --example quickstart`

use minerule::MineRuleEngine;
use relational::Database;

fn main() {
    // 1. A SQL server with some sales data: which products were bought
    //    together in each transaction.
    let mut db = Database::new();
    db.execute("CREATE TABLE Sales (tr INT, product VARCHAR)")
        .expect("create table");
    db.execute(
        "INSERT INTO Sales VALUES \
         (1, 'bread'), (1, 'butter'), (1, 'milk'), \
         (2, 'bread'), (2, 'butter'), \
         (3, 'bread'), (3, 'milk'), \
         (4, 'butter'), (4, 'milk'), \
         (5, 'bread'), (5, 'butter'), (5, 'jam')",
    )
    .expect("insert rows");

    // 2. One MINE RULE statement: bodies of any size, single-item heads,
    //    40% support, 70% confidence.
    let statement = "\
        MINE RULE BreadRules AS \
        SELECT DISTINCT 1..n product AS BODY, 1..1 product AS HEAD, SUPPORT, CONFIDENCE \
        FROM Sales GROUP BY tr \
        EXTRACTING RULES WITH SUPPORT: 0.4, CONFIDENCE: 0.7";

    let outcome = MineRuleEngine::new()
        .execute(&mut db, statement)
        .expect("mining succeeds");

    println!("statement class: {}", outcome.translation.class);
    println!("directives:      {}", outcome.translation.directives);
    println!(
        "groups: {} (large threshold: {} groups)\n",
        outcome.preprocess_report.total_groups, outcome.preprocess_report.min_groups
    );
    println!("rules:");
    for rule in &outcome.rules {
        println!("  {}", rule.display());
    }

    // 3. The whole point of tight coupling: the rules are ordinary tables
    //    inside the same database, ready to join with anything else.
    let rs = db
        .query(
            "SELECT product, COUNT(*) AS uses FROM BreadRules_Bodies \
             GROUP BY product ORDER BY uses DESC, product",
        )
        .expect("rules are queryable");
    println!("\nitems appearing in rule bodies (via plain SQL):\n{rs}");
}
