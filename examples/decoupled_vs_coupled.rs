//! The paper's central argument (§1), made measurable: the same mining
//! task run through (a) the decoupled flow — export to a flat file, mine
//! outside the database, re-import rule strings — and (b) the
//! tightly-coupled kernel. Both find the same rules; the decoupled path
//! pays for serialisation, re-parsing and re-encoding, and its imported
//! rules are opaque strings rather than joinable itemset tables.
//!
//! Run with: `cargo run --release --example decoupled_vs_coupled`

use std::time::Instant;

use datagen::{generate_quest, load_quest, QuestConfig};
use minerule::{decoupled, MineRuleEngine};
use relational::Database;

fn main() {
    let config = QuestConfig {
        transactions: 3000,
        avg_transaction_size: 8.0,
        patterns: 40,
        items: 150,
        ..QuestConfig::default()
    };
    let data = generate_quest(&config);
    let mut db = Database::new();
    load_quest(&data, &mut db, "Baskets").expect("load");
    println!(
        "dataset: {} baskets, {} rows\n",
        config.transactions,
        data.row_count()
    );

    let (min_support, min_confidence) = (0.02, 0.5);

    // (a) Decoupled: extract → standalone miner → import.
    let t = Instant::now();
    let flat_rules = decoupled::run_decoupled(
        &mut db,
        "SELECT tr, item FROM Baskets",
        min_support,
        min_confidence,
        "ToolRules",
    )
    .expect("decoupled flow");
    let decoupled_time = t.elapsed();

    // (b) Tightly-coupled: one MINE RULE statement.
    let statement = format!(
        "MINE RULE CoupledRules AS \
         SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
         FROM Baskets GROUP BY tr \
         EXTRACTING RULES WITH SUPPORT: {min_support}, CONFIDENCE: {min_confidence}"
    );
    let t = Instant::now();
    let outcome = MineRuleEngine::new()
        .execute(&mut db, &statement)
        .expect("coupled flow");
    let coupled_time = t.elapsed();

    // Same rule inventory?
    let mut a: Vec<String> = flat_rules
        .iter()
        .map(|r| format!("{:?}=>{:?}", r.body, r.head))
        .collect();
    let mut b: Vec<String> = outcome
        .rules
        .iter()
        .map(|r| format!("{:?}=>{:?}", r.body, r.head))
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "architectures must find identical rules");

    println!("both architectures found {} rules ✓\n", a.len());
    println!("decoupled  total: {decoupled_time:?}");
    println!(
        "coupled    total: {coupled_time:?}  (preprocess {:?}, core {:?}, postprocess {:?})",
        outcome.timings.preprocess, outcome.timings.core, outcome.timings.postprocess
    );

    // The qualitative difference: what can you *do* with the rules now?
    println!("\ncoupled rules join back to the data (items per body):");
    let rs = db
        .query(
            "SELECT item, COUNT(*) AS n FROM CoupledRules_Bodies \
             GROUP BY item ORDER BY n DESC, item LIMIT 5",
        )
        .unwrap();
    println!("{rs}");
    println!("decoupled rules are opaque strings:");
    let rs = db
        .query("SELECT body, head FROM ToolRules ORDER BY body LIMIT 5")
        .unwrap();
    println!("{rs}");
}
