//! # datagen — synthetic workloads for the MINE RULE reproduction
//!
//! Two generator families:
//!
//! * [`quest`] — IBM Quest-style market baskets (the T·I·D synthetic
//!   family of Agrawal & Srikant used by all the algorithms the paper's
//!   core operator builds on), for simple association rules;
//! * [`retail`] — `Purchase`-shaped rows (customers, dates, prices,
//!   quantities) with planted temporal follow-up patterns, for general
//!   rules with `CLUSTER BY` and mining conditions.
//!
//! Both are deterministic per seed, so tests and benchmarks are
//! reproducible.

pub mod quest;
pub mod retail;
pub mod rng;

pub use quest::{generate as generate_quest, QuestConfig, QuestData};
pub use retail::{generate as generate_retail, RetailConfig, RetailData};

use relational::{Database, Value};

/// Load Quest baskets into `db` as table `name (tr INT, item VARCHAR)` —
/// the canonical input shape for a simple MINE RULE statement grouping by
/// `tr` and mining `item`.
pub fn load_quest(data: &QuestData, db: &mut Database, name: &str) -> relational::Result<()> {
    db.execute(&format!("CREATE TABLE {name} (tr INT, item VARCHAR)"))?;
    let table = db.catalog_mut().table_mut(name)?;
    for (tr, item) in data.rows() {
        table.insert(vec![Value::Int(tr), Value::Str(format!("i{item:05}"))])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quest_loads_as_tr_item() {
        let data = generate_quest(&QuestConfig {
            transactions: 10,
            ..QuestConfig::default()
        });
        let mut db = Database::new();
        load_quest(&data, &mut db, "Sales").unwrap();
        let rs = db.query("SELECT COUNT(DISTINCT tr) FROM Sales").unwrap();
        assert_eq!(rs.scalar().unwrap(), &Value::Int(10));
    }
}
