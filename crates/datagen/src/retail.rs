//! Purchase-style retail generator for *general* MINE RULE statements.
//!
//! Produces rows shaped like the paper's Figure 1 `Purchase` table —
//! `(tr, customer, item, date, price, qty)` — with two planted structures
//! that the general core operator should recover:
//!
//! * **temporal follow-ups**: a purchase of an expensive item is followed,
//!   on a later date, by a purchase of its cheap complement (exercises
//!   `CLUSTER BY date HAVING BODY.date < HEAD.date` plus the price mining
//!   condition);
//! * **co-occurrence**: item pairs bought together on one date (exercises
//!   plain grouped rules).

use crate::rng::Rng;
use relational::{Date, Value};

/// Parameters of the retail model.
#[derive(Debug, Clone, Copy)]
pub struct RetailConfig {
    /// Number of customers (groups).
    pub customers: usize,
    /// Shopping dates per customer (clusters).
    pub dates_per_customer: usize,
    /// Items bought per date, on average.
    pub items_per_date: f64,
    /// Catalog size; item `k` is "expensive" when `k < expensive_items`.
    pub catalog: u32,
    /// How many catalog items cost ≥ 100.
    pub expensive_items: u32,
    /// Probability that an expensive purchase is followed by its cheap
    /// complement on the next date (the planted temporal rule).
    pub follow_up_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RetailConfig {
    fn default() -> Self {
        RetailConfig {
            customers: 200,
            dates_per_customer: 4,
            items_per_date: 3.0,
            catalog: 60,
            expensive_items: 20,
            follow_up_probability: 0.6,
            seed: 42,
        }
    }
}

/// One generated purchase row.
#[derive(Debug, Clone, PartialEq)]
pub struct PurchaseRow {
    pub tr: i64,
    pub customer: String,
    pub item: String,
    pub date: Date,
    pub price: i64,
    pub qty: i64,
}

/// The generated table plus its catalog metadata.
#[derive(Debug, Clone)]
pub struct RetailData {
    pub config: RetailConfig,
    pub rows: Vec<PurchaseRow>,
}

/// Item `k`'s display name.
pub fn item_name(k: u32) -> String {
    format!("item{k:04}")
}

/// Item `k`'s price: expensive items cost 100 + 10k, cheap ones 5 + k.
pub fn item_price(k: u32, expensive_items: u32) -> i64 {
    if k < expensive_items {
        100 + 10 * k as i64
    } else {
        5 + (k % 90) as i64
    }
}

/// The cheap complement of expensive item `k` (the planted follow-up).
pub fn complement_of(k: u32, config: &RetailConfig) -> u32 {
    config.expensive_items + (k % (config.catalog - config.expensive_items).max(1))
}

/// Generate the dataset.
pub fn generate(config: &RetailConfig) -> RetailData {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut rows = Vec::new();
    let mut tr: i64 = 0;
    let base_date = Date::from_ymd(1995, 1, 2).expect("valid base date");

    for c in 0..config.customers {
        let customer = format!("cust{c:05}");
        // Follow-ups scheduled for future dates: (date index, item).
        let mut pending: Vec<(usize, u32)> = Vec::new();
        for d in 0..config.dates_per_customer {
            tr += 1;
            let date = base_date.plus_days((d * 7 + (c % 7)) as i32);
            let mut items: Vec<u32> = Vec::new();
            // Deliver planted follow-ups due today.
            pending.retain(|&(due, item)| {
                if due == d {
                    items.push(item);
                    false
                } else {
                    true
                }
            });
            let n = 1 + rng.poisson(config.items_per_date - 1.0);
            while items.len() < n {
                let k = rng.gen_range_u32(0, config.catalog);
                if items.contains(&k) {
                    continue;
                }
                items.push(k);
                // An expensive purchase may plant its cheap complement on
                // the next date.
                if k < config.expensive_items
                    && d + 1 < config.dates_per_customer
                    && rng.gen_f64() < config.follow_up_probability
                {
                    pending.push((d + 1, complement_of(k, config)));
                }
            }
            items.sort_unstable();
            items.dedup();
            for k in items {
                rows.push(PurchaseRow {
                    tr,
                    customer: customer.clone(),
                    item: item_name(k),
                    date,
                    price: item_price(k, config.expensive_items),
                    qty: 1 + (rng.gen_f64() * 3.0) as i64,
                });
            }
        }
    }
    RetailData {
        config: *config,
        rows,
    }
}

impl RetailData {
    /// Load into a database as table `name` with the Figure 1 schema.
    pub fn load(&self, db: &mut relational::Database, name: &str) -> relational::Result<()> {
        db.execute(&format!(
            "CREATE TABLE {name} (tr INT, customer VARCHAR, item VARCHAR, \
             date DATE, price INT, qty INT)"
        ))?;
        let table = db.catalog_mut().table_mut(name)?;
        for r in &self.rows {
            table.insert(vec![
                Value::Int(r.tr),
                Value::Str(r.customer.clone()),
                Value::Str(r.item.clone()),
                Value::Date(r.date),
                Value::Int(r.price),
                Value::Int(r.qty),
            ])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RetailConfig::default();
        assert_eq!(generate(&cfg).rows, generate(&cfg).rows);
        assert_ne!(
            generate(&cfg).rows,
            generate(&RetailConfig { seed: 1, ..cfg }).rows
        );
    }

    #[test]
    fn prices_split_at_100() {
        assert!(item_price(0, 20) >= 100);
        assert!(item_price(19, 20) >= 100);
        assert!(item_price(20, 20) < 100);
        assert!(item_price(59, 20) < 100);
    }

    #[test]
    fn rows_have_figure1_shape() {
        let data = generate(&RetailConfig {
            customers: 5,
            ..RetailConfig::default()
        });
        assert!(!data.rows.is_empty());
        for r in &data.rows {
            assert!(r.customer.starts_with("cust"));
            assert!(r.item.starts_with("item"));
            assert!(r.qty >= 1);
            assert!(r.price > 0);
        }
    }

    #[test]
    fn follow_ups_are_planted() {
        // With probability 1, every expensive purchase (except on the last
        // date) must be followed by its complement.
        let cfg = RetailConfig {
            customers: 20,
            follow_up_probability: 1.0,
            ..RetailConfig::default()
        };
        let data = generate(&cfg);
        let mut follow_ups = 0;
        for c in 0..cfg.customers {
            let customer = format!("cust{c:05}");
            let mine: Vec<&PurchaseRow> = data
                .rows
                .iter()
                .filter(|r| r.customer == customer)
                .collect();
            for r in &mine {
                if r.price >= 100 {
                    let k: u32 = r.item[4..].parse().unwrap();
                    let comp = item_name(complement_of(k, &cfg));
                    if mine.iter().any(|x| x.item == comp && x.date > r.date) {
                        follow_ups += 1;
                    }
                }
            }
        }
        assert!(follow_ups > 10, "planted follow-ups missing: {follow_ups}");
    }

    #[test]
    fn loads_into_database() {
        let mut db = relational::Database::new();
        let data = generate(&RetailConfig {
            customers: 3,
            ..RetailConfig::default()
        });
        data.load(&mut db, "Purchase").unwrap();
        let rs = db.query("SELECT COUNT(*) FROM Purchase").unwrap();
        assert_eq!(
            rs.scalar().unwrap(),
            &relational::Value::Int(data.rows.len() as i64)
        );
    }
}
