//! IBM Quest-style synthetic market-basket generator.
//!
//! Reimplements the synthetic data model of Agrawal & Srikant (VLDB '94),
//! used by every algorithm the paper's core operator draws on
//! (`T<avg basket>` `I<avg pattern>` `D<transactions>` families such as
//! T10.I4.D100K). Transactions are built from a pool of *potential large
//! itemsets*: pattern sizes are Poisson-distributed, patterns share items
//! with their predecessor (correlation), pattern picks are
//! exponentially-weighted, and patterns are corrupted before insertion.

use crate::rng::Rng;

/// Parameters of the Quest model. Field names follow the original paper.
#[derive(Debug, Clone, Copy)]
pub struct QuestConfig {
    /// `|D|` — number of transactions (groups).
    pub transactions: usize,
    /// `|T|` — average transaction size (Poisson mean).
    pub avg_transaction_size: f64,
    /// `|I|` — average size of potential large itemsets (Poisson mean).
    pub avg_pattern_size: f64,
    /// `|L|` — number of potential large itemsets in the pool.
    pub patterns: usize,
    /// `N` — number of distinct items.
    pub items: u32,
    /// Fraction of a pattern's items drawn from its predecessor.
    pub correlation: f64,
    /// Mean corruption level (items dropped from a pattern instance).
    pub corruption: f64,
    /// RNG seed — runs are fully deterministic.
    pub seed: u64,
}

impl Default for QuestConfig {
    /// A laptop-scale T10.I4 family default.
    fn default() -> Self {
        QuestConfig {
            transactions: 1000,
            avg_transaction_size: 10.0,
            avg_pattern_size: 4.0,
            patterns: 100,
            items: 500,
            correlation: 0.5,
            corruption: 0.5,
            seed: 42,
        }
    }
}

impl QuestConfig {
    /// `T<t>.I<i>.D<d>` naming shorthand.
    pub fn name(&self) -> String {
        format!(
            "T{}.I{}.D{}",
            self.avg_transaction_size as u32, self.avg_pattern_size as u32, self.transactions
        )
    }
}

/// The generated dataset: transactions of item identifiers.
#[derive(Debug, Clone)]
pub struct QuestData {
    pub config: QuestConfig,
    /// Sorted, deduplicated item lists, one per transaction.
    pub transactions: Vec<Vec<u32>>,
}

/// Generate a dataset under the Quest model.
pub fn generate(config: &QuestConfig) -> QuestData {
    let mut rng = Rng::seed_from_u64(config.seed);

    // Pattern pool.
    let mut patterns: Vec<Vec<u32>> = Vec::with_capacity(config.patterns);
    for i in 0..config.patterns {
        let size = rng.poisson(config.avg_pattern_size).max(1);
        let mut items: Vec<u32> = Vec::with_capacity(size);
        // Correlated fraction from the previous pattern.
        if i > 0 {
            let prev = &patterns[i - 1];
            for &it in prev {
                if (items.len() as f64) < size as f64 * config.correlation && rng.gen_f64() < 0.5 {
                    items.push(it);
                }
            }
        }
        while items.len() < size {
            let it = rng.gen_range_u32(0, config.items);
            if !items.contains(&it) {
                items.push(it);
            }
        }
        items.sort_unstable();
        items.dedup();
        patterns.push(items);
    }

    // Exponentially-distributed pattern weights, normalised.
    let mut weights: Vec<f64> = (0..config.patterns)
        .map(|_| -(rng.gen_f64().max(1e-12)).ln())
        .collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    // Cumulative distribution for weighted picks.
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    // Per-pattern corruption level (clamped normal around the mean).
    let corruption: Vec<f64> = (0..config.patterns)
        .map(|_| {
            let u: f64 = rng.gen_f64() + rng.gen_f64() + rng.gen_f64() - 1.5;
            (config.corruption + u * 0.1).clamp(0.0, 0.95)
        })
        .collect();

    // Transactions.
    let mut transactions = Vec::with_capacity(config.transactions);
    for _ in 0..config.transactions {
        let target = rng.poisson(config.avg_transaction_size).max(1);
        let mut items: Vec<u32> = Vec::with_capacity(target + 4);
        let mut guard = 0;
        while items.len() < target && guard < 50 {
            guard += 1;
            let pick = rng.gen_f64();
            let idx = cdf.partition_point(|&c| c < pick).min(patterns.len() - 1);
            for &it in &patterns[idx] {
                // Corrupt: drop items with the pattern's corruption level.
                if rng.gen_f64() >= corruption[idx] {
                    items.push(it);
                }
            }
        }
        items.sort_unstable();
        items.dedup();
        items.truncate(target.max(1));
        transactions.push(items);
    }
    QuestData {
        config: *config,
        transactions,
    }
}

impl QuestData {
    /// Rows `(transaction id, item id)` for loading into a database.
    pub fn rows(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.transactions
            .iter()
            .enumerate()
            .flat_map(|(t, items)| items.iter().map(move |&i| (t as i64 + 1, i as i64)))
    }

    /// Total (transaction, item) row count.
    pub fn row_count(&self) -> usize {
        self.transactions.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = QuestConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.transactions, b.transactions);
        let c = generate(&QuestConfig { seed: 7, ..cfg });
        assert_ne!(a.transactions, c.transactions);
    }

    #[test]
    fn sizes_near_configured_mean() {
        let data = generate(&QuestConfig {
            transactions: 2000,
            ..QuestConfig::default()
        });
        assert_eq!(data.transactions.len(), 2000);
        let avg = data.row_count() as f64 / data.transactions.len() as f64;
        assert!(
            (5.0..=12.0).contains(&avg),
            "avg basket size {avg} far from T10 (truncation biases down)"
        );
    }

    #[test]
    fn items_in_range_sorted_dedup() {
        let cfg = QuestConfig {
            items: 50,
            ..QuestConfig::default()
        };
        let data = generate(&cfg);
        for t in &data.transactions {
            assert!(!t.is_empty());
            assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
            assert!(t.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn skewed_weights_make_frequent_patterns() {
        // Some pair must be frequent: patterns repeat across transactions.
        let data = generate(&QuestConfig {
            transactions: 500,
            items: 100,
            patterns: 20,
            ..QuestConfig::default()
        });
        let mut pair_counts = std::collections::HashMap::new();
        for t in &data.transactions {
            for i in 0..t.len() {
                for j in (i + 1)..t.len() {
                    *pair_counts.entry((t[i], t[j])).or_insert(0u32) += 1;
                }
            }
        }
        let max = pair_counts.values().copied().max().unwrap_or(0);
        assert!(max >= 25, "expected a pair in ≥5% of baskets, max={max}");
    }

    #[test]
    fn name_formats_family() {
        assert_eq!(QuestConfig::default().name(), "T10.I4.D1000");
    }
}
