//! A small, self-contained pseudo-random number generator so the
//! generators (and the test suite) run without any external crates.
//!
//! The generator is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64 — the standard construction for expanding a 64-bit seed
//! into a full 256-bit state. It is deterministic per seed, fast, and
//! statistically strong far beyond what synthetic-workload generation
//! needs. It is **not** cryptographic, and does not need to be.

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Seed the full 256-bit state from a 64-bit seed via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform float in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_below(0)");
        // Lemire's multiply-shift with rejection for exact uniformity.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.gen_below((hi - lo) as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.gen_below((hi - lo) as u64) as usize
    }

    /// Sample a Poisson variate (Knuth's method; suitable for small means).
    pub fn poisson(&mut self, mean: f64) -> usize {
        if mean <= 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.gen_f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numeric guard for absurd means
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds_and_cover() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = rng.gen_range_u32(0, 10);
            assert!(k < 10);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..100 {
            let k = rng.gen_range_usize(5, 8);
            assert!((5..8).contains(&k));
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 20_000;
        let total: usize = (0..n).map(|_| rng.poisson(4.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((3.8..4.2).contains(&mean), "poisson mean drifted: {mean}");
    }
}
