//! Static type metadata: data types, columns and schemas.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::Value;

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
    Bool,
    Date,
}

impl DataType {
    /// True when `value` may be stored in a column of this type.
    /// NULL is storable everywhere; ints are accepted by FLOAT columns.
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Float, Value::Int(_))
                | (DataType::Str, Value::Str(_))
                | (DataType::Bool, Value::Bool(_))
                | (DataType::Date, Value::Date(_))
        )
    }

    /// Parse a SQL type name.
    pub fn from_sql_name(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" | "DECIMAL" => Some(DataType::Float),
            "VARCHAR" | "CHAR" | "TEXT" | "STRING" => Some(DataType::Str),
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "DATE" => Some(DataType::Date),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "VARCHAR",
            DataType::Bool => "BOOLEAN",
            DataType::Date => "DATE",
        };
        write!(f, "{s}")
    }
}

/// One column of a schema. `qualifier` carries the table name or alias the
/// column is visible under during execution (empty for anonymous results).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    pub qualifier: Option<String>,
}

impl Column {
    /// An unqualified column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            qualifier: None,
        }
    }

    /// A column qualified by a table name or alias.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        dtype: DataType,
    ) -> Column {
        Column {
            name: name.into(),
            dtype,
            qualifier: Some(qualifier.into()),
        }
    }
}

/// An ordered list of columns. Column names are matched case-insensitively,
/// as SQL identifiers are case-insensitive in this engine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Append a column (used when composing join schemas).
    pub fn push(&mut self, column: Column) {
        self.columns.push(column);
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Resolve a possibly-qualified column reference to its index.
    ///
    /// Unqualified names must be unambiguous across the schema; qualified
    /// names match on both qualifier and name.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, c) in self.columns.iter().enumerate() {
            let name_ok = c.name.eq_ignore_ascii_case(name);
            let qual_ok = match qualifier {
                None => true,
                Some(q) => c
                    .qualifier
                    .as_deref()
                    .is_some_and(|cq| cq.eq_ignore_ascii_case(q)),
            };
            if name_ok && qual_ok {
                if found.is_some() {
                    let full = match qualifier {
                        Some(q) => format!("{q}.{name}"),
                        None => name.to_string(),
                    };
                    return Err(Error::AmbiguousColumn { name: full });
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| Error::UnknownColumn {
            name: match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            },
        })
    }

    /// Indexes of all columns visible under `qualifier` (for `t.*`).
    pub fn columns_of(&self, qualifier: &str) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.qualifier
                    .as_deref()
                    .is_some_and(|q| q.eq_ignore_ascii_case(qualifier))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Copy of this schema with every qualifier replaced by `qualifier`
    /// (applied when a table factor gets an alias).
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column::qualified(qualifier, c.name.clone(), c.dtype))
                .collect(),
        }
    }

    /// Copy with all qualifiers stripped (result sets presented to users).
    pub fn unqualified(&self) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column::new(c.name.clone(), c.dtype))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::qualified("t", "a", DataType::Int),
            Column::qualified("t", "b", DataType::Str),
            Column::qualified("u", "a", DataType::Int),
        ])
    }

    #[test]
    fn resolve_qualified() {
        let s = sample();
        assert_eq!(s.resolve(Some("u"), "a").unwrap(), 2);
        assert_eq!(s.resolve(Some("T"), "A").unwrap(), 0);
    }

    #[test]
    fn resolve_unqualified_unique() {
        let s = sample();
        assert_eq!(s.resolve(None, "b").unwrap(), 1);
    }

    #[test]
    fn resolve_unqualified_ambiguous() {
        let s = sample();
        assert!(matches!(
            s.resolve(None, "a"),
            Err(Error::AmbiguousColumn { .. })
        ));
    }

    #[test]
    fn resolve_missing() {
        let s = sample();
        assert!(matches!(
            s.resolve(None, "zz"),
            Err(Error::UnknownColumn { .. })
        ));
    }

    #[test]
    fn datatype_admits_nulls_and_int_in_float() {
        assert!(DataType::Str.admits(&Value::Null));
        assert!(DataType::Float.admits(&Value::Int(3)));
        assert!(!DataType::Int.admits(&Value::Str("x".into())));
    }

    #[test]
    fn datatype_names_parse() {
        assert_eq!(DataType::from_sql_name("integer"), Some(DataType::Int));
        assert_eq!(DataType::from_sql_name("VARCHAR"), Some(DataType::Str));
        assert_eq!(DataType::from_sql_name("blob"), None);
    }

    #[test]
    fn columns_of_lists_per_qualifier() {
        let s = sample();
        assert_eq!(s.columns_of("t"), vec![0, 1]);
        assert_eq!(s.columns_of("u"), vec![2]);
    }
}
