//! In-memory base tables.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Error, Result};
use crate::row::Row;
use crate::stats::TableStats;
use crate::types::Schema;

/// Process-global version stamp source. Every stamp is unique, so a table
/// version identifies one exact row snapshot of one exact table instance:
/// dropping and recreating a table (or reloading a saved database) can
/// never resurrect a version that an index or cache entry was built
/// against.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// Maximum rows the per-table change log retains across all records.
/// Beyond this the log rebases to the current version: bulk loads stay
/// cheap, while the small INSERT/DELETE deltas of an interactive mining
/// session (the mined-result cache's re-mining path) remain replayable.
const CHANGE_LOG_ROWS: usize = 4096;

/// The row-level difference between two version stamps of one table, as
/// reported by [`Table::changes_since`]: every row inserted and every row
/// deleted, in mutation order. Rows are physical — a row inserted and
/// later deleted inside the window appears in both lists.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableDelta {
    pub inserted: Vec<Row>,
    pub deleted: Vec<Row>,
}

impl TableDelta {
    /// Total rows in the delta (inserted + deleted).
    pub fn row_count(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// True when the window saw no row changes.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }
}

/// One logged mutation: the version it produced plus the rows it moved.
/// `tracked` is false for mutations whose row-level effect is not logged
/// (TRUNCATE); a window crossing one yields no delta. UPDATE logs as a
/// tracked delete+insert pair via [`Table::apply_updates`].
#[derive(Debug, Clone)]
struct ChangeRecord {
    version: u64,
    inserted: Vec<Row>,
    deleted: Vec<Row>,
    tracked: bool,
}

/// A materialised table: a schema plus row storage.
///
/// Storage is a plain `Vec<Row>`; the engine targets the working-set sizes
/// of the mining preprocessor (encoded tables of at most a few million
/// small rows), for which contiguous row vectors beat any paging scheme.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    version: u64,
    stats: TableStats,
    /// Row-level mutation log, oldest first. Applies on top of
    /// `change_base`; bounded by `CHANGE_LOG_ROWS` total rows.
    changes: Vec<ChangeRecord>,
    /// The version the oldest retained change record applies on top of.
    change_base: u64,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        let stats = TableStats::new(schema.len());
        let mut t = Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            version: next_version(),
            stats,
            changes: Vec::new(),
            change_base: 0,
        };
        t.stats.stamp(t.version);
        t.change_base = t.version;
        t
    }

    /// The table's current version stamp. Monotonically increasing across
    /// the whole process: bumped by every mutation, and globally unique,
    /// so consumers (hash indexes, the preprocess artifact cache) detect
    /// both in-place mutation and drop/recreate by a simple equality
    /// check.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Table name as stored in the catalog.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Stored rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of stored rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Planner statistics for this table, current as of [`Table::version`]
    /// (maintenance happens inside every mutating call, so the stamp never
    /// lags the table).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Append a row after checking arity and column types.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Arity {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (value, column) in row.iter().zip(self.schema.columns()) {
            if !column.dtype.admits(value) {
                return Err(Error::type_mismatch(format!(
                    "column '{}' of table '{}' is {} but value is {}",
                    column.name,
                    self.name,
                    column.dtype,
                    value.type_name()
                )));
            }
        }
        self.stats.observe_row(&row);
        self.rows.push(row.clone());
        self.version = next_version();
        self.stats.stamp(self.version);
        self.log_change(ChangeRecord {
            version: self.version,
            inserted: vec![row],
            deleted: Vec::new(),
            tracked: true,
        });
        Ok(())
    }

    /// Append many rows; stops at the first bad row.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Remove all rows matching the predicate; returns how many were removed.
    pub fn delete_where(&mut self, pred: impl FnMut(&Row) -> bool) -> usize {
        let mask: Vec<bool> = self.rows.iter().map(pred).collect();
        self.delete_mask(&mask)
    }

    /// Remove every row whose mask position is true; returns how many were
    /// removed. Positions beyond the mask are kept. This is the DELETE
    /// primitive: removed rows enter the change log, so a consumer holding
    /// an older version stamp can replay the delta.
    pub fn delete_mask(&mut self, mask: &[bool]) -> usize {
        let mut deleted = Vec::new();
        let mut kept = Vec::with_capacity(self.rows.len());
        for (i, row) in self.rows.drain(..).enumerate() {
            if mask.get(i).copied().unwrap_or(false) {
                deleted.push(row);
            } else {
                kept.push(row);
            }
        }
        self.rows = kept;
        // Distinct sketches cannot subtract: rebuild over the survivors.
        self.stats.rebuild(&self.rows);
        self.version = next_version();
        self.stats.stamp(self.version);
        let removed = deleted.len();
        self.log_change(ChangeRecord {
            version: self.version,
            inserted: Vec::new(),
            deleted,
            tracked: true,
        });
        removed
    }

    /// Replace rows in place: each `(index, new_row)` swaps the stored
    /// row at `index` after arity/type checking (all-or-nothing — a bad
    /// row leaves the table untouched). The whole batch logs as one
    /// tracked change record holding the old rows as deletions and the
    /// new rows as insertions, so UPDATE windows stay replayable by
    /// [`Table::changes_since`]. Returns how many rows were replaced.
    pub fn apply_updates(&mut self, changes: Vec<(usize, Row)>) -> Result<usize> {
        for (i, row) in &changes {
            if *i >= self.rows.len() {
                return Err(Error::unsupported(format!(
                    "update index {i} out of bounds for table '{}'",
                    self.name
                )));
            }
            if row.len() != self.schema.len() {
                return Err(Error::Arity {
                    expected: self.schema.len(),
                    got: row.len(),
                });
            }
            for (value, column) in row.iter().zip(self.schema.columns()) {
                if !column.dtype.admits(value) {
                    return Err(Error::type_mismatch(format!(
                        "column '{}' of table '{}' is {} but value is {}",
                        column.name,
                        self.name,
                        column.dtype,
                        value.type_name()
                    )));
                }
            }
        }
        if changes.is_empty() {
            return Ok(0);
        }
        let mut inserted = Vec::with_capacity(changes.len());
        let mut deleted = Vec::with_capacity(changes.len());
        for (i, row) in changes {
            inserted.push(row.clone());
            deleted.push(std::mem::replace(&mut self.rows[i], row));
        }
        // Distinct sketches cannot subtract: rebuild over the new rows.
        self.stats.rebuild(&self.rows);
        self.version = next_version();
        self.stats.stamp(self.version);
        let n = inserted.len();
        self.log_change(ChangeRecord {
            version: self.version,
            inserted,
            deleted,
            tracked: true,
        });
        Ok(n)
    }

    /// Drop every row.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.stats.reset();
        self.version = next_version();
        self.stats.stamp(self.version);
        self.log_change(ChangeRecord {
            version: self.version,
            inserted: Vec::new(),
            deleted: Vec::new(),
            tracked: false,
        });
    }

    /// Append a mutation record, rebasing the log when its retained row
    /// total exceeds [`CHANGE_LOG_ROWS`] (old windows become unanswerable;
    /// new ones start from the current version).
    fn log_change(&mut self, record: ChangeRecord) {
        self.changes.push(record);
        let rows: usize = self
            .changes
            .iter()
            .map(|c| c.inserted.len() + c.deleted.len())
            .sum();
        if rows > CHANGE_LOG_ROWS {
            self.changes.clear();
            self.change_base = self.version;
        }
    }

    /// The row-level delta between `version` and the table's current
    /// state, or `None` when it cannot be reconstructed: the stamp is not
    /// one this table's retained log starts from, the window fell off the
    /// bounded log, or it crosses an untracked mutation (TRUNCATE).
    /// `Some(delta)` is exact: applying it to the `version` snapshot
    /// yields the current rows.
    pub fn changes_since(&self, version: u64) -> Option<TableDelta> {
        if version == self.version {
            return Some(TableDelta::default());
        }
        // The stamp must be a state the retained log applies on top of.
        if version != self.change_base && !self.changes.iter().any(|c| c.version == version) {
            return None;
        }
        let mut delta = TableDelta::default();
        for record in self.changes.iter().filter(|c| c.version > version) {
            if !record.tracked {
                return None;
            }
            delta.inserted.extend(record.inserted.iter().cloned());
            delta.deleted.extend(record.deleted.iter().cloned());
        }
        Some(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::types::{Column, DataType};
    use crate::value::Value;

    fn t() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
            ]),
        )
    }

    #[test]
    fn insert_and_read_back() {
        let mut table = t();
        table.insert(row![1, "x"]).unwrap();
        assert_eq!(table.row_count(), 1);
        assert_eq!(table.rows()[0][1], Value::Str("x".into()));
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut table = t();
        assert!(matches!(table.insert(row![1]), Err(Error::Arity { .. })));
    }

    #[test]
    fn insert_rejects_wrong_type() {
        let mut table = t();
        assert!(table.insert(row!["no", "x"]).is_err());
    }

    #[test]
    fn insert_accepts_null_anywhere() {
        let mut table = t();
        table.insert(vec![Value::Null, Value::Null]).unwrap();
    }

    #[test]
    fn versions_bump_on_every_mutation_and_never_repeat() {
        let mut table = t();
        let mut seen = vec![table.version()];
        table.insert(row![1, "x"]).unwrap();
        seen.push(table.version());
        table.insert_all(vec![row![2, "y"]]).unwrap();
        seen.push(table.version());
        table.delete_where(|r| r[0] == Value::Int(1));
        seen.push(table.version());
        table.truncate();
        seen.push(table.version());
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "every mutation restamps");
        // A freshly created table never reuses an old stamp.
        assert!(t().version() > seen[0]);
    }

    #[test]
    fn stats_track_every_mutation_and_stamp_versions() {
        let mut table = t();
        table
            .insert_all(vec![row![1, "x"], row![2, "y"], row![3, "x"]])
            .unwrap();
        assert_eq!(table.stats().row_count(), 3);
        assert_eq!(table.stats().distinct(0), Some(3));
        assert_eq!(table.stats().distinct(1), Some(2));
        assert_eq!(table.stats().as_of_version(), table.version());
        table.delete_where(|r| r[1] == Value::Str("x".into()));
        assert_eq!(table.stats().row_count(), 1);
        assert_eq!(table.stats().distinct(0), Some(1));
        assert_eq!(table.stats().as_of_version(), table.version());
        table.truncate();
        assert_eq!(table.stats().row_count(), 0);
        assert_eq!(table.stats().distinct(1), Some(0));
        assert_eq!(table.stats().as_of_version(), table.version());
    }

    #[test]
    fn changes_since_replays_inserts_and_deletes() {
        let mut table = t();
        table.insert(row![1, "x"]).unwrap();
        let v0 = table.version();
        table.insert(row![2, "y"]).unwrap();
        table.insert(row![3, "z"]).unwrap();
        table.delete_where(|r| r[0] == Value::Int(1));
        let delta = table.changes_since(v0).expect("window is tracked");
        assert_eq!(delta.inserted, vec![row![2, "y"], row![3, "z"]]);
        assert_eq!(delta.deleted, vec![row![1, "x"]]);
        assert_eq!(delta.row_count(), 3);
        // The current stamp always yields an empty delta.
        assert_eq!(
            table.changes_since(table.version()),
            Some(TableDelta::default())
        );
    }

    #[test]
    fn changes_since_rejects_alien_and_pre_log_versions() {
        let mut table = t();
        table.insert(row![1, "x"]).unwrap();
        assert!(
            table.changes_since(0).is_none(),
            "never a stamp of this table"
        );
        assert!(
            table.changes_since(table.version() + 1_000_000).is_none(),
            "future stamps are alien"
        );
    }

    #[test]
    fn truncate_breaks_the_change_window() {
        let mut table = t();
        let v0 = table.version();
        table.insert(row![1, "x"]).unwrap();
        table.truncate();
        table.insert(row![2, "y"]).unwrap();
        assert!(
            table.changes_since(v0).is_none(),
            "windows crossing an untracked mutation yield no delta"
        );
    }

    #[test]
    fn change_log_rebases_beyond_capacity() {
        let mut table = t();
        let v0 = table.version();
        for i in 0..(CHANGE_LOG_ROWS as i64 + 10) {
            table.insert(row![i, "x"]).unwrap();
        }
        assert!(table.changes_since(v0).is_none(), "window fell off the log");
        // Small deltas on top of the rebased log are replayable again.
        let v1 = table.version();
        table.insert(row![-1, "y"]).unwrap();
        let delta = table.changes_since(v1).expect("fresh window after rebase");
        assert_eq!(delta.inserted, vec![row![-1, "y"]]);
    }

    #[test]
    fn apply_updates_replaces_rows_and_logs_a_tracked_delta() {
        let mut table = t();
        table
            .insert_all(vec![row![1, "x"], row![2, "y"], row![3, "x"]])
            .unwrap();
        let v0 = table.version();
        let n = table
            .apply_updates(vec![(0, row![10, "x"]), (2, row![3, "z"])])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(table.rows()[0], row![10, "x"]);
        assert_eq!(table.rows()[2], row![3, "z"]);
        assert_eq!(table.stats().as_of_version(), table.version());
        let delta = table.changes_since(v0).expect("UPDATE windows replay");
        assert_eq!(delta.inserted, vec![row![10, "x"], row![3, "z"]]);
        assert_eq!(delta.deleted, vec![row![1, "x"], row![3, "x"]]);
    }

    #[test]
    fn apply_updates_is_all_or_nothing() {
        let mut table = t();
        table.insert(row![1, "x"]).unwrap();
        let v0 = table.version();
        assert!(table.apply_updates(vec![(0, row!["bad", "y"])]).is_err());
        assert_eq!(table.version(), v0, "failed batch leaves no trace");
        assert_eq!(table.rows()[0], row![1, "x"]);
        // An empty batch is a no-op, not a version bump.
        assert_eq!(table.apply_updates(Vec::new()).unwrap(), 0);
        assert_eq!(table.version(), v0);
    }

    #[test]
    fn delete_where_removes_matching() {
        let mut table = t();
        table
            .insert_all(vec![row![1, "x"], row![2, "y"], row![3, "x"]])
            .unwrap();
        let removed = table.delete_where(|r| r[1] == Value::Str("x".into()));
        assert_eq!(removed, 2);
        assert_eq!(table.row_count(), 1);
    }
}
