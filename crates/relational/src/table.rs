//! In-memory base tables.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Error, Result};
use crate::row::Row;
use crate::stats::TableStats;
use crate::types::Schema;

/// Process-global version stamp source. Every stamp is unique, so a table
/// version identifies one exact row snapshot of one exact table instance:
/// dropping and recreating a table (or reloading a saved database) can
/// never resurrect a version that an index or cache entry was built
/// against.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// A materialised table: a schema plus row storage.
///
/// Storage is a plain `Vec<Row>`; the engine targets the working-set sizes
/// of the mining preprocessor (encoded tables of at most a few million
/// small rows), for which contiguous row vectors beat any paging scheme.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    version: u64,
    stats: TableStats,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        let stats = TableStats::new(schema.len());
        let mut t = Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            version: next_version(),
            stats,
        };
        t.stats.stamp(t.version);
        t
    }

    /// The table's current version stamp. Monotonically increasing across
    /// the whole process: bumped by every mutation, and globally unique,
    /// so consumers (hash indexes, the preprocess artifact cache) detect
    /// both in-place mutation and drop/recreate by a simple equality
    /// check.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Table name as stored in the catalog.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Stored rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of stored rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Planner statistics for this table, current as of [`Table::version`]
    /// (maintenance happens inside every mutating call, so the stamp never
    /// lags the table).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Append a row after checking arity and column types.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Arity {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (value, column) in row.iter().zip(self.schema.columns()) {
            if !column.dtype.admits(value) {
                return Err(Error::type_mismatch(format!(
                    "column '{}' of table '{}' is {} but value is {}",
                    column.name,
                    self.name,
                    column.dtype,
                    value.type_name()
                )));
            }
        }
        self.stats.observe_row(&row);
        self.rows.push(row);
        self.version = next_version();
        self.stats.stamp(self.version);
        Ok(())
    }

    /// Append many rows; stops at the first bad row.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Remove all rows matching the predicate; returns how many were removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        // Distinct sketches cannot subtract: rebuild over the survivors.
        self.stats.rebuild(&self.rows);
        self.version = next_version();
        self.stats.stamp(self.version);
        before - self.rows.len()
    }

    /// Drop every row.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.stats.reset();
        self.version = next_version();
        self.stats.stamp(self.version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::types::{Column, DataType};
    use crate::value::Value;

    fn t() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
            ]),
        )
    }

    #[test]
    fn insert_and_read_back() {
        let mut table = t();
        table.insert(row![1, "x"]).unwrap();
        assert_eq!(table.row_count(), 1);
        assert_eq!(table.rows()[0][1], Value::Str("x".into()));
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut table = t();
        assert!(matches!(table.insert(row![1]), Err(Error::Arity { .. })));
    }

    #[test]
    fn insert_rejects_wrong_type() {
        let mut table = t();
        assert!(table.insert(row!["no", "x"]).is_err());
    }

    #[test]
    fn insert_accepts_null_anywhere() {
        let mut table = t();
        table.insert(vec![Value::Null, Value::Null]).unwrap();
    }

    #[test]
    fn versions_bump_on_every_mutation_and_never_repeat() {
        let mut table = t();
        let mut seen = vec![table.version()];
        table.insert(row![1, "x"]).unwrap();
        seen.push(table.version());
        table.insert_all(vec![row![2, "y"]]).unwrap();
        seen.push(table.version());
        table.delete_where(|r| r[0] == Value::Int(1));
        seen.push(table.version());
        table.truncate();
        seen.push(table.version());
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "every mutation restamps");
        // A freshly created table never reuses an old stamp.
        assert!(t().version() > seen[0]);
    }

    #[test]
    fn stats_track_every_mutation_and_stamp_versions() {
        let mut table = t();
        table
            .insert_all(vec![row![1, "x"], row![2, "y"], row![3, "x"]])
            .unwrap();
        assert_eq!(table.stats().row_count(), 3);
        assert_eq!(table.stats().distinct(0), Some(3));
        assert_eq!(table.stats().distinct(1), Some(2));
        assert_eq!(table.stats().as_of_version(), table.version());
        table.delete_where(|r| r[1] == Value::Str("x".into()));
        assert_eq!(table.stats().row_count(), 1);
        assert_eq!(table.stats().distinct(0), Some(1));
        assert_eq!(table.stats().as_of_version(), table.version());
        table.truncate();
        assert_eq!(table.stats().row_count(), 0);
        assert_eq!(table.stats().distinct(1), Some(0));
        assert_eq!(table.stats().as_of_version(), table.version());
    }

    #[test]
    fn delete_where_removes_matching() {
        let mut table = t();
        table
            .insert_all(vec![row![1, "x"], row![2, "y"], row![3, "x"]])
            .unwrap();
        let removed = table.delete_where(|r| r[1] == Value::Str("x".into()));
        assert_eq!(removed, 2);
        assert_eq!(table.row_count(), 1);
    }
}
