//! Sequence objects (`CREATE SEQUENCE` / `<name>.NEXTVAL`).
//!
//! The paper's preprocessor (Appendix A) generates group/item identifiers
//! with Oracle sequences; this module provides the same facility.

/// A monotonically increasing integer generator.
#[derive(Debug, Clone)]
pub struct Sequence {
    name: String,
    next: i64,
    increment: i64,
}

impl Sequence {
    /// Create a sequence starting at `start` with step `increment`.
    pub fn new(name: impl Into<String>, start: i64, increment: i64) -> Sequence {
        Sequence {
            name: name.into(),
            next: start,
            increment,
        }
    }

    /// Sequence name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Return the current value and advance (`NEXTVAL`).
    pub fn nextval(&mut self) -> i64 {
        let v = self.next;
        self.next += self.increment;
        v
    }

    /// Peek at the value the next `nextval` call will return.
    pub fn peek(&self) -> i64 {
        self.next
    }

    /// The step between drawn values.
    pub fn increment(&self) -> i64 {
        self.increment
    }

    /// Reset back to a given value (used when re-running preprocessing).
    pub fn reset(&mut self, start: i64) {
        self.next = start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nextval_advances() {
        let mut s = Sequence::new("gid", 1, 1);
        assert_eq!(s.nextval(), 1);
        assert_eq!(s.nextval(), 2);
        assert_eq!(s.peek(), 3);
    }

    #[test]
    fn custom_increment() {
        let mut s = Sequence::new("s", 10, 5);
        assert_eq!(s.nextval(), 10);
        assert_eq!(s.nextval(), 15);
    }

    #[test]
    fn reset_restarts() {
        let mut s = Sequence::new("s", 1, 1);
        s.nextval();
        s.reset(1);
        assert_eq!(s.nextval(), 1);
    }
}
