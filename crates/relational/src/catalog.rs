//! The catalog ("data dictionary"): tables, views, sequences.
//!
//! The MINE RULE translator consults the data dictionary to validate
//! attribute lists (§4.1 of the paper), so the catalog exposes schema
//! lookup as a first-class operation.

use std::collections::HashMap;

use crate::error::{Error, ObjectKind, Result};
use crate::sequence::Sequence;
use crate::sql::ast::SelectStmt;
use crate::table::Table;
use crate::types::Schema;

/// A non-materialised view: a stored SELECT re-evaluated at use.
#[derive(Debug, Clone)]
pub struct View {
    pub name: String,
    pub query: SelectStmt,
}

/// All named objects known to a [`crate::engine::Database`].
///
/// Names are case-insensitive; the original spelling is preserved on the
/// objects themselves for display.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, View>,
    sequences: HashMap<String, Sequence>,
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn check_free(&self, name: &str) -> Result<()> {
        let k = key(name);
        if self.tables.contains_key(&k) {
            return Err(Error::DuplicateObject {
                kind: ObjectKind::Table,
                name: name.to_string(),
            });
        }
        if self.views.contains_key(&k) {
            return Err(Error::DuplicateObject {
                kind: ObjectKind::View,
                name: name.to_string(),
            });
        }
        Ok(())
    }

    /// Register a new base table.
    pub fn create_table(&mut self, table: Table) -> Result<()> {
        self.check_free(table.name())?;
        self.tables.insert(key(table.name()), table);
        Ok(())
    }

    /// Register a new view.
    pub fn create_view(&mut self, view: View) -> Result<()> {
        self.check_free(&view.name)?;
        self.views.insert(key(&view.name), view);
        Ok(())
    }

    /// Register a new sequence.
    pub fn create_sequence(&mut self, seq: Sequence) -> Result<()> {
        let k = key(seq.name());
        if self.sequences.contains_key(&k) {
            return Err(Error::DuplicateObject {
                kind: ObjectKind::Sequence,
                name: seq.name().to_string(),
            });
        }
        self.sequences.insert(k, seq);
        Ok(())
    }

    /// Drop a table. `if_exists` suppresses the missing-object error.
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        if self.tables.remove(&key(name)).is_none() && !if_exists {
            return Err(Error::UnknownObject {
                kind: ObjectKind::Table,
                name: name.to_string(),
            });
        }
        Ok(())
    }

    /// Drop a view.
    pub fn drop_view(&mut self, name: &str, if_exists: bool) -> Result<()> {
        if self.views.remove(&key(name)).is_none() && !if_exists {
            return Err(Error::UnknownObject {
                kind: ObjectKind::View,
                name: name.to_string(),
            });
        }
        Ok(())
    }

    /// Drop a sequence.
    pub fn drop_sequence(&mut self, name: &str, if_exists: bool) -> Result<()> {
        if self.sequences.remove(&key(name)).is_none() && !if_exists {
            return Err(Error::UnknownObject {
                kind: ObjectKind::Sequence,
                name: name.to_string(),
            });
        }
        Ok(())
    }

    /// Look up a base table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&key(name))
            .ok_or_else(|| Error::UnknownObject {
                kind: ObjectKind::Table,
                name: name.to_string(),
            })
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&key(name))
            .ok_or_else(|| Error::UnknownObject {
                kind: ObjectKind::Table,
                name: name.to_string(),
            })
    }

    /// Look up a view.
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.get(&key(name))
    }

    /// Look up a sequence mutably (NEXTVAL advances it).
    pub fn sequence_mut(&mut self, name: &str) -> Result<&mut Sequence> {
        self.sequences
            .get_mut(&key(name))
            .ok_or_else(|| Error::UnknownObject {
                kind: ObjectKind::Sequence,
                name: name.to_string(),
            })
    }

    /// True when a base table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&key(name))
    }

    /// True when a view with this name exists.
    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(&key(name))
    }

    /// True when a sequence with this name exists.
    pub fn has_sequence(&self, name: &str) -> bool {
        self.sequences.contains_key(&key(name))
    }

    /// The schema of a base table (data-dictionary access for the
    /// translator). Views are resolved by the executor, not here.
    pub fn table_schema(&self, name: &str) -> Result<&Schema> {
        Ok(self.table(name)?.schema())
    }

    /// `(name, SQL text)` of every view, sorted by name (persistence).
    pub fn view_definitions(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .views
            .values()
            .map(|v| (v.name.clone(), v.query.to_string()))
            .collect();
        out.sort();
        out
    }

    /// `(name, next value, increment)` of every sequence, sorted by name.
    pub fn sequence_states(&self) -> Vec<(String, i64, i64)> {
        let mut out: Vec<(String, i64, i64)> = self
            .sequences
            .values()
            .map(|s| (s.name().to_string(), s.peek(), s.increment()))
            .collect();
        out.sort();
        out
    }

    /// True when the catalog holds no tables, views or sequences
    /// (drives the attach direction when switching storage backends).
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.views.is_empty() && self.sequences.is_empty()
    }

    /// Names of all base tables, sorted (deterministic listings).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.values().map(|t| t.name()).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Column, DataType};

    fn table(name: &str) -> Table {
        Table::new(name, Schema::new(vec![Column::new("a", DataType::Int)]))
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.create_table(table("Purchase")).unwrap();
        assert!(c.table("purchase").is_ok());
        assert!(c.table("PURCHASE").is_ok());
        assert!(c.has_table("PuRcHaSe"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table(table("t")).unwrap();
        assert!(matches!(
            c.create_table(table("T")),
            Err(Error::DuplicateObject { .. })
        ));
    }

    #[test]
    fn drop_missing_table_errors_unless_if_exists() {
        let mut c = Catalog::new();
        assert!(c.drop_table("nope", false).is_err());
        assert!(c.drop_table("nope", true).is_ok());
    }

    #[test]
    fn sequences_are_separate_namespace() {
        let mut c = Catalog::new();
        c.create_table(table("x")).unwrap();
        c.create_sequence(Sequence::new("x", 1, 1)).unwrap();
        assert!(c.has_table("x") && c.has_sequence("x"));
    }

    #[test]
    fn table_names_sorted() {
        let mut c = Catalog::new();
        c.create_table(table("b")).unwrap();
        c.create_table(table("a")).unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
    }
}
