//! Table and column statistics for the cost-based planner.
//!
//! Every base table carries a [`TableStats`]: an exact row count plus a
//! per-column distinct-value estimate. Statistics are maintained
//! *incrementally* — [`TableStats::observe_row`] folds each inserted row
//! into the per-column sketches — and stamped with the table's version
//! (PR 5's monotonic stamps), so a consumer can always tell which row
//! snapshot an estimate describes. Deletions cannot be subtracted from a
//! distinct sketch, so `DELETE` triggers a rebuild over the surviving rows
//! and `TRUNCATE` resets to empty; both are cheap at the working-set sizes
//! this engine targets.
//!
//! The distinct estimator is exact up to [`KMV_K`] values and degrades to
//! a KMV ("k minimum values") sketch beyond that: it keeps the `k`
//! smallest 64-bit value hashes seen and estimates the distinct count as
//! `(k - 1) / max_kept` on the unit interval. The sketch is insertion
//! -order independent and deterministic (the hasher is keyed with fixed
//! zeros), which keeps planner decisions — and therefore rule outputs —
//! reproducible across runs and worker counts.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use crate::row::Row;
use crate::value::Value;

/// Sketch capacity: exact below this many distinct values per column,
/// KMV-estimated above. 256 bounds the error near 6% while keeping the
/// per-column footprint at 2 KiB.
pub const KMV_K: usize = 256;

fn value_hash(v: &Value) -> u64 {
    // DefaultHasher::new() is SipHash with fixed zero keys: deterministic
    // across processes, which the planner's reproducibility contract needs.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Distinct-count estimator for one column: the `k` smallest value hashes.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// The `KMV_K` smallest hashes seen (BTreeSet keeps them ordered so
    /// eviction of the largest is O(log k)).
    sketch: BTreeSet<u64>,
    /// True once an insertion was rejected because the sketch was full —
    /// from then on the count is an estimate, not exact.
    saturated: bool,
}

impl ColumnStats {
    /// Fold one value into the sketch. NULLs are counted like any other
    /// value: the planner cares about key multiplicity, and NULL join keys
    /// collide with nothing, so one extra "distinct" is the safe direction.
    pub fn observe(&mut self, v: &Value) {
        let h = value_hash(v);
        if self.sketch.len() < KMV_K {
            self.sketch.insert(h);
        } else if let Some(&max) = self.sketch.iter().next_back() {
            if h < max {
                if self.sketch.insert(h) {
                    self.sketch.remove(&max);
                }
                self.saturated = true;
            } else if h != max {
                self.saturated = true;
            }
        }
    }

    /// Estimated number of distinct values. Exact while fewer than
    /// [`KMV_K`] distinct values have been seen.
    pub fn distinct(&self) -> u64 {
        if !self.saturated {
            return self.sketch.len() as u64;
        }
        let Some(&max) = self.sketch.iter().next_back() else {
            return 0;
        };
        // KMV estimate: k-th smallest hash at fraction max/2^64 of the
        // unit interval implies (k-1)/fraction distinct values.
        let fraction = (max as f64) / (u64::MAX as f64);
        if fraction <= 0.0 {
            return self.sketch.len() as u64;
        }
        ((self.sketch.len() as f64 - 1.0) / fraction).round() as u64
    }
}

/// Statistics for one table: exact row count, per-column distinct
/// estimates, and the table version they describe.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    rows: u64,
    columns: Vec<ColumnStats>,
    as_of_version: u64,
}

impl TableStats {
    /// Empty statistics for a table with `width` columns.
    pub fn new(width: usize) -> TableStats {
        TableStats {
            rows: 0,
            columns: vec![ColumnStats::default(); width],
            as_of_version: 0,
        }
    }

    /// Exact number of rows described by these statistics.
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// Estimated distinct count for column `idx` (None when out of range).
    pub fn distinct(&self, idx: usize) -> Option<u64> {
        self.columns.get(idx).map(|c| c.distinct())
    }

    /// The table version these statistics describe.
    pub fn as_of_version(&self) -> u64 {
        self.as_of_version
    }

    /// Fold one inserted row into the statistics (incremental path).
    pub fn observe_row(&mut self, row: &Row) {
        self.rows += 1;
        for (c, v) in self.columns.iter_mut().zip(row.iter()) {
            c.observe(v);
        }
    }

    /// Reset to empty (TRUNCATE).
    pub fn reset(&mut self) {
        let width = self.columns.len();
        *self = TableStats::new(width);
    }

    /// Rebuild from scratch over the surviving rows (DELETE path:
    /// distinct sketches cannot subtract, so deletions recompute).
    pub fn rebuild(&mut self, rows: &[Row]) {
        self.reset();
        for row in rows {
            self.observe_row(row);
        }
    }

    /// Stamp the version these statistics are current as of.
    pub fn stamp(&mut self, version: u64) {
        self.as_of_version = version;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_sketch_capacity() {
        let mut c = ColumnStats::default();
        for i in 0..100 {
            c.observe(&Value::Int(i));
        }
        assert_eq!(c.distinct(), 100);
        // Re-observing existing values changes nothing.
        for i in 0..100 {
            c.observe(&Value::Int(i));
        }
        assert_eq!(c.distinct(), 100);
    }

    #[test]
    fn estimate_within_tolerance_above_capacity() {
        let mut c = ColumnStats::default();
        let n = 10_000i64;
        for i in 0..n {
            c.observe(&Value::Int(i));
        }
        let est = c.distinct() as f64;
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.15, "estimate {est} for {n} distinct (err {err:.3})");
    }

    #[test]
    fn estimate_is_insertion_order_independent() {
        let mut fwd = ColumnStats::default();
        let mut rev = ColumnStats::default();
        for i in 0..5_000i64 {
            fwd.observe(&Value::Int(i));
            rev.observe(&Value::Int(4_999 - i));
        }
        assert_eq!(fwd.distinct(), rev.distinct());
    }

    #[test]
    fn table_stats_track_rows_and_columns() {
        let mut s = TableStats::new(2);
        for i in 0..10 {
            s.observe_row(&vec![Value::Int(i % 3), Value::Int(i)]);
        }
        assert_eq!(s.row_count(), 10);
        assert_eq!(s.distinct(0), Some(3));
        assert_eq!(s.distinct(1), Some(10));
        assert_eq!(s.distinct(2), None);
    }

    #[test]
    fn reset_and_rebuild() {
        let mut s = TableStats::new(1);
        let rows: Vec<Row> = (0..6).map(|i| vec![Value::Int(i % 2)]).collect();
        for r in &rows {
            s.observe_row(r);
        }
        assert_eq!(s.row_count(), 6);
        s.reset();
        assert_eq!(s.row_count(), 0);
        assert_eq!(s.distinct(0), Some(0));
        s.rebuild(&rows[..3]);
        assert_eq!(s.row_count(), 3);
        assert_eq!(s.distinct(0), Some(2));
    }

    #[test]
    fn nulls_count_as_one_distinct() {
        let mut c = ColumnStats::default();
        c.observe(&Value::Null);
        c.observe(&Value::Null);
        c.observe(&Value::Int(1));
        assert_eq!(c.distinct(), 2);
    }
}
