//! Planner mode: cost-based versus naive statement planning.
//!
//! Under [`PlannerMode::Cost`] the executor consults catalog statistics
//! ([`crate::stats::TableStats`]) to choose a join order (greedy smallest
//! -estimated-intermediate-first), pick the hash-join build side by actual
//! input size and index availability, and report estimation error. Under
//! [`PlannerMode::Naive`] the FROM list is folded left-to-right with the
//! next factor always the build side — the engine's historical behaviour.
//!
//! Both modes produce bit-identical results, including row order: the
//! cost path tracks, for every joined row, the indices of the factor rows
//! it combines, and emits the final relation in the canonical
//! lexicographic order a left-to-right fold would produce.

use std::fmt;

/// How the engine plans FROM lists and access paths.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlannerMode {
    /// Statistics-driven join ordering, build-side and access-path
    /// selection (the default).
    #[default]
    Cost,
    /// Historical left-to-right fold; no statistics consulted.
    Naive,
}

impl PlannerMode {
    /// Parse a mode name (`cost` | `naive`), ASCII-case-insensitively.
    pub fn from_name(name: &str) -> Option<PlannerMode> {
        match name.to_ascii_lowercase().as_str() {
            "cost" => Some(PlannerMode::Cost),
            "naive" => Some(PlannerMode::Naive),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            PlannerMode::Cost => "cost",
            PlannerMode::Naive => "naive",
        }
    }
}

impl fmt::Display for PlannerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for m in [PlannerMode::Cost, PlannerMode::Naive] {
            assert_eq!(PlannerMode::from_name(m.name()), Some(m));
        }
        assert_eq!(PlannerMode::from_name("COST"), Some(PlannerMode::Cost));
        assert_eq!(PlannerMode::from_name("rule"), None);
    }

    #[test]
    fn default_is_cost() {
        assert_eq!(PlannerMode::default(), PlannerMode::Cost);
    }
}
