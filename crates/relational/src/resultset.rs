//! Query results.

use std::fmt;

use crate::row::Row;
use crate::types::Schema;
use crate::value::Value;

/// The materialised result of a query: a schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    schema: Schema,
    rows: Vec<Row>,
}

impl ResultSet {
    /// Build a result set.
    pub fn new(schema: Schema, rows: Vec<Row>) -> ResultSet {
        ResultSet { schema, rows }
    }

    /// An empty result with an empty schema.
    pub fn empty() -> ResultSet {
        ResultSet {
            schema: Schema::default(),
            rows: Vec::new(),
        }
    }

    /// Result schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Result rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a 1×1 result, if the shape matches.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.schema.len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Index of a column by (unqualified) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema
            .columns()
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Sort rows lexicographically (stable presentation for tests/examples).
    pub fn sorted(mut self) -> ResultSet {
        self.rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        self
    }
}

impl fmt::Display for ResultSet {
    /// ASCII table rendering, used by the examples.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| match &c.qualifier {
                Some(q) => format!("{q}.{}", c.name),
                None => c.name.clone(),
            })
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        sep(f)?;
        write!(f, "|")?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |")?;
        }
        writeln!(f)?;
        sep(f)?;
        for row in &cells {
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:<w$} |")?;
            }
            writeln!(f)?;
        }
        sep(f)?;
        writeln!(f, "({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::types::{Column, DataType};

    fn rs() -> ResultSet {
        ResultSet::new(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
            ]),
            vec![row![2, "y"], row![1, "x"]],
        )
    }

    #[test]
    fn scalar_requires_1x1() {
        assert!(rs().scalar().is_none());
        let one = ResultSet::new(
            Schema::new(vec![Column::new("n", DataType::Int)]),
            vec![row![42]],
        );
        assert_eq!(one.scalar(), Some(&Value::Int(42)));
    }

    #[test]
    fn sorted_orders_rows() {
        let s = rs().sorted();
        assert_eq!(s.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn display_renders_table() {
        let text = rs().to_string();
        assert!(text.contains("| a | b |"));
        assert!(text.contains("(2 rows)"));
    }

    #[test]
    fn column_index_is_case_insensitive() {
        assert_eq!(rs().column_index("B"), Some(1));
        assert_eq!(rs().column_index("zz"), None);
    }
}
