//! Runtime values: the dynamic cell type of the engine.
//!
//! SQL three-valued logic is modelled by [`Value::Null`]; comparisons and
//! arithmetic that touch NULL yield NULL, and predicates treat non-TRUE as
//! filtered-out. Values must be hashable and totally orderable so they can
//! be used as grouping keys and sort keys; floats are ordered by IEEE total
//! order and hashed by bit pattern.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};

/// A calendar date, stored as days since 1970-01-01 (may be negative).
///
/// The representation makes comparison and interval arithmetic trivial,
/// which matters because MINE RULE temporal clauses (`CLUSTER BY date
/// HAVING BODY.date < HEAD.date`) compare dates per candidate rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    days: i32,
}

impl Date {
    /// Construct from a civil calendar date. Returns `None` for invalid
    /// dates such as February 30th.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Option<Date> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date {
            days: days_from_civil(year, month, day),
        })
    }

    /// Days since the Unix epoch (1970-01-01).
    pub fn days_since_epoch(self) -> i32 {
        self.days
    }

    /// Construct directly from a day count since the epoch.
    pub fn from_days_since_epoch(days: i32) -> Date {
        Date { days }
    }

    /// Decompose into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.days)
    }

    /// Add a (possibly negative) number of days.
    pub fn plus_days(self, n: i32) -> Date {
        Date {
            days: self.days + n,
        }
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Date> {
        let mut it = s.split('-');
        let y: i32 = it.next()?.parse().ok()?;
        let m: u32 = it.next()?.parse().ok()?;
        let d: u32 = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Date::from_ymd(y, m, d)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

// Howard Hinnant's civil-days algorithms (public domain).
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m as i64) + 9) % 12; // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + (d as i64) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146097 + doe - 719468) as i32
}

fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// A single cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean (result of predicates, also storable).
    Bool(bool),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a predicate outcome: NULL and false are both "not true".
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Extract an `i64`, coercing from float when lossless.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(Error::type_mismatch(format!("expected INT, got {other}"))),
        }
    }

    /// Extract an `f64`, coercing from int.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(Error::type_mismatch(format!("expected FLOAT, got {other}"))),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::type_mismatch(format!(
                "expected STRING, got {other}"
            ))),
        }
    }

    /// Extract a date.
    pub fn as_date(&self) -> Result<Date> {
        match self {
            Value::Date(d) => Ok(*d),
            other => Err(Error::type_mismatch(format!("expected DATE, got {other}"))),
        }
    }

    /// SQL comparison with NULL propagation: returns `None` if either side
    /// is NULL, `Some(ordering)` otherwise. Numeric types compare across
    /// int/float; all other cross-type comparisons are errors.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>> {
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (a, b) => return Err(Error::type_mismatch(format!("cannot compare {a} with {b}"))),
        })
    }

    /// Total ordering used for ORDER BY and for deterministic output:
    /// NULL sorts first, then values grouped by type tag.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Date(_) => 4,
            }
        }
        match self.sql_cmp(other) {
            Ok(Some(ord)) => ord,
            _ => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                _ => tag(self).cmp(&tag(other)),
            },
        }
    }

    /// Name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Str(_) => "STRING",
            Value::Bool(_) => "BOOL",
            Value::Date(_) => "DATE",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Equality used for grouping/dedup: NULLs compare equal to each
        // other (SQL GROUP BY semantics), numerics compare across types.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => matches!(self.sql_cmp(other), Ok(Some(Ordering::Equal))),
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash identically because
            // they compare equal. Hash every numeric as its f64 bits
            // (exact for |i| < 2^53, which covers engine-generated ids).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (1995, 12, 17), (2000, 2, 29), (1899, 3, 31)] {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.ymd(), (y, m, d));
        }
    }

    #[test]
    fn date_rejects_invalid() {
        assert!(Date::from_ymd(1999, 2, 29).is_none());
        assert!(Date::from_ymd(1999, 13, 1).is_none());
        assert!(Date::from_ymd(1999, 0, 1).is_none());
        assert!(Date::from_ymd(1999, 4, 31).is_none());
    }

    #[test]
    fn date_ordering_follows_calendar() {
        let a = Date::from_ymd(1995, 12, 17).unwrap();
        let b = Date::from_ymd(1995, 12, 18).unwrap();
        assert!(a < b);
        assert_eq!(a.plus_days(1), b);
    }

    #[test]
    fn date_parse_display_roundtrip() {
        let d = Date::parse("1995-12-18").unwrap();
        assert_eq!(d.to_string(), "1995-12-18");
        assert!(Date::parse("1995-12").is_none());
        assert!(Date::parse("nonsense").is_none());
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null).unwrap(), None);
    }

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)).unwrap(),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_cross_type_is_error() {
        assert!(Value::Int(1).sql_cmp(&Value::Str("1".into())).is_err());
    }

    #[test]
    fn grouping_equality_treats_nulls_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn int_and_float_hash_consistently_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(Value::Int(7), Value::Float(7.0));
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut v = [Value::Int(3), Value::Null, Value::Int(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Int(1));
    }
}
