//! TSV snapshots: an inspectable interchange format for whole databases.
//!
//! This is the *export/import* side of persistence — save a database to
//! a directory, load it back, diff it, check it into a repo. The format
//! is deliberately plain: a `_catalog.txt` manifest plus one
//! tab-separated file per table. Values are tagged (`I:`, `F:`, `S:`,
//! `B:`, `D:`, `N`) and floats are stored as hexadecimal bit patterns,
//! making the round-trip bit-exact.
//!
//! For *transactional durability* — crash-safe commit of every executed
//! statement, with WAL recovery on reopen — use the paged storage
//! backend ([`crate::storage`], `docs/STORAGE.md`) instead; this module
//! stays the human-readable snapshot format.

use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::catalog::View;
use crate::engine::Database;
use crate::error::{Error, Result};
use crate::row::Row;
use crate::sequence::Sequence;
use crate::sql::parser::parse_statement;
use crate::table::Table;
use crate::types::{Column, DataType, Schema};
use crate::value::{Date, Value};

fn io_err(e: std::io::Error) -> Error {
    Error::unsupported(format!("persistence I/O error: {e}"))
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "N".to_string(),
        Value::Int(i) => format!("I:{i}"),
        Value::Float(f) => format!("F:{:016x}", f.to_bits()),
        Value::Str(s) => format!(
            "S:{}",
            s.replace('\\', "\\\\")
                .replace('\t', "\\t")
                .replace('\n', "\\n")
        ),
        Value::Bool(b) => format!("B:{}", if *b { 1 } else { 0 }),
        Value::Date(d) => format!("D:{d}"),
    }
}

fn decode_value(s: &str) -> Result<Value> {
    if s == "N" {
        return Ok(Value::Null);
    }
    let (tag, body) = s
        .split_once(':')
        .ok_or_else(|| Error::unsupported(format!("bad persisted value '{s}'")))?;
    Ok(match tag {
        "I" => Value::Int(
            body.parse()
                .map_err(|_| Error::unsupported(format!("bad persisted int '{body}'")))?,
        ),
        "F" => Value::Float(f64::from_bits(
            u64::from_str_radix(body, 16)
                .map_err(|_| Error::unsupported(format!("bad persisted float '{body}'")))?,
        )),
        "S" => {
            let mut out = String::with_capacity(body.len());
            let mut chars = body.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    match chars.next() {
                        Some('t') => out.push('\t'),
                        Some('n') => out.push('\n'),
                        Some('\\') => out.push('\\'),
                        other => {
                            return Err(Error::unsupported(format!(
                                "bad escape in persisted string: \\{other:?}"
                            )))
                        }
                    }
                } else {
                    out.push(c);
                }
            }
            Value::Str(out)
        }
        "B" => Value::Bool(body == "1"),
        "D" => Value::Date(
            Date::parse(body)
                .ok_or_else(|| Error::unsupported(format!("bad persisted date '{body}'")))?,
        ),
        other => return Err(Error::unsupported(format!("unknown value tag '{other}'"))),
    })
}

/// Save the whole catalog (tables, views, sequences) under `dir`.
/// The directory is created; existing files are overwritten.
pub fn save(db: &Database, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir).map_err(io_err)?;
    let mut manifest = BufWriter::new(fs::File::create(dir.join("_catalog.txt")).map_err(io_err)?);

    for name in db.catalog().table_names() {
        let table = db.catalog().table(name)?;
        writeln!(manifest, "table\t{name}").map_err(io_err)?;
        for c in table.schema().columns() {
            writeln!(manifest, "col\t{}\t{}", c.name, c.dtype).map_err(io_err)?;
        }
        let mut out = BufWriter::new(
            fs::File::create(dir.join(format!("{}.tsv", name.to_ascii_lowercase())))
                .map_err(io_err)?,
        );
        for row in table.rows() {
            let line: Vec<String> = row.iter().map(encode_value).collect();
            writeln!(out, "{}", line.join("\t")).map_err(io_err)?;
        }
        out.flush().map_err(io_err)?;
    }
    for (name, query) in db.catalog().view_definitions() {
        writeln!(manifest, "view\t{name}\t{query}").map_err(io_err)?;
    }
    for (name, next, increment) in db.catalog().sequence_states() {
        writeln!(manifest, "sequence\t{name}\t{next}\t{increment}").map_err(io_err)?;
    }
    manifest.flush().map_err(io_err)?;
    Ok(())
}

/// Load a database previously written by [`save`].
pub fn load(dir: &Path) -> Result<Database> {
    let manifest = fs::File::open(dir.join("_catalog.txt")).map_err(io_err)?;
    let mut db = Database::new();
    let mut pending: Option<(String, Vec<Column>)> = None;

    let finish_table =
        |db: &mut Database, pending: &mut Option<(String, Vec<Column>)>| -> Result<()> {
            if let Some((name, cols)) = pending.take() {
                let mut table = Table::new(name.clone(), Schema::new(cols));
                let path = dir.join(format!("{}.tsv", name.to_ascii_lowercase()));
                if path.exists() {
                    let file = fs::File::open(path).map_err(io_err)?;
                    for line in BufReader::new(file).lines() {
                        let line = line.map_err(io_err)?;
                        if line.is_empty() {
                            continue;
                        }
                        let row: Result<Row> = line.split('\t').map(decode_value).collect();
                        table.insert(row?)?;
                    }
                }
                db.catalog_mut().create_table(table)?;
            }
            Ok(())
        };

    for line in BufReader::new(manifest).lines() {
        let line = line.map_err(io_err)?;
        let mut parts = line.splitn(4, '\t');
        match parts.next() {
            Some("table") => {
                finish_table(&mut db, &mut pending)?;
                let name = parts
                    .next()
                    .ok_or_else(|| Error::unsupported("manifest: table without name"))?;
                pending = Some((name.to_string(), Vec::new()));
            }
            Some("col") => {
                let (Some(name), Some(ty)) = (parts.next(), parts.next()) else {
                    return Err(Error::unsupported("manifest: malformed col line"));
                };
                let dtype = DataType::from_sql_name(ty)
                    .ok_or_else(|| Error::unsupported(format!("manifest: bad type {ty}")))?;
                match &mut pending {
                    Some((_, cols)) => cols.push(Column::new(name, dtype)),
                    None => return Err(Error::unsupported("manifest: col outside table")),
                }
            }
            Some("view") => {
                finish_table(&mut db, &mut pending)?;
                let (Some(name), Some(sql)) = (parts.next(), parts.next()) else {
                    return Err(Error::unsupported("manifest: malformed view line"));
                };
                let stmt = parse_statement(sql)?;
                let crate::sql::ast::Statement::Select(query) = stmt else {
                    return Err(Error::unsupported("manifest: view body is not a SELECT"));
                };
                db.catalog_mut().create_view(View {
                    name: name.to_string(),
                    query,
                })?;
            }
            Some("sequence") => {
                finish_table(&mut db, &mut pending)?;
                let (Some(name), Some(next), Some(inc)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(Error::unsupported("manifest: malformed sequence line"));
                };
                let next: i64 = next
                    .parse()
                    .map_err(|_| Error::unsupported("manifest: bad sequence value"))?;
                let inc: i64 = inc
                    .parse()
                    .map_err(|_| Error::unsupported("manifest: bad sequence increment"))?;
                db.catalog_mut()
                    .create_sequence(Sequence::new(name.to_string(), next, inc))?;
            }
            Some("") | None => {}
            Some(other) => {
                return Err(Error::unsupported(format!(
                    "manifest: unknown record '{other}'"
                )))
            }
        }
    }
    finish_table(&mut db, &mut pending)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relational_persist_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_tables_views_sequences() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, b VARCHAR, c FLOAT, d DATE, e BOOLEAN)")
            .unwrap();
        db.execute(
            "INSERT INTO t VALUES \
             (1, 'plain', 1.5, DATE '1995-12-17', TRUE), \
             (2, NULL, 0.1, NULL, FALSE)",
        )
        .unwrap();
        db.execute("CREATE VIEW v AS (SELECT a FROM t WHERE e = TRUE)")
            .unwrap();
        db.execute("CREATE SEQUENCE s START WITH 5 INCREMENT BY 2")
            .unwrap();
        // NEXTVAL evaluates per input row (2 rows): draws 5 and 7.
        db.query("SELECT s.NEXTVAL FROM t LIMIT 1").unwrap();

        let dir = tempdir("roundtrip");
        save(&db, &dir).unwrap();
        let mut loaded = load(&dir).unwrap();

        let orig = db.query("SELECT * FROM t ORDER BY a").unwrap();
        let back = loaded.query("SELECT * FROM t ORDER BY a").unwrap();
        assert_eq!(orig, back);
        assert_eq!(loaded.query("SELECT * FROM v").unwrap().len(), 1);
        // Sequence resumes where it left off (next draw is 9).
        let rs = loaded.query("SELECT s.NEXTVAL FROM t LIMIT 1").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(9));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (s VARCHAR)").unwrap();
        db.catalog_mut()
            .table_mut("t")
            .unwrap()
            .insert(row!["tab\there\nand \\ slash"])
            .unwrap();
        let dir = tempdir("escapes");
        save(&db, &dir).unwrap();
        let mut loaded = load(&dir).unwrap();
        let rs = loaded.query("SELECT s FROM t").unwrap();
        assert_eq!(
            rs.rows()[0][0],
            Value::Str("tab\there\nand \\ slash".into())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_bits_roundtrip_exactly() {
        let tricky = [0.1f64, f64::MIN_POSITIVE, 1e300, -0.0];
        for f in tricky {
            let v = Value::Float(f);
            let decoded = decode_value(&encode_value(&v)).unwrap();
            match decoded {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits()),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(load(Path::new("/nonexistent/definitely/missing")).is_err());
    }
}
