//! # relational — an in-memory SQL92-subset engine
//!
//! This crate is the "SQL server" substrate of the tightly-coupled data
//! mining architecture of Meo, Psaila & Ceri (ICDE 1998). It provides just
//! enough of SQL92 — plus Oracle-style sequences — for the paper's
//! preprocessing and postprocessing programs (Appendix A, queries
//! `Q0`–`Q11`) to run unchanged in structure:
//!
//! * typed tables, views, sequences in a case-insensitive catalog;
//! * `SELECT` with comma joins (planned as hash joins), `WHERE`,
//!   `GROUP BY`/`HAVING`, `DISTINCT`, `ORDER BY`, `LIMIT`, derived tables,
//!   scalar/`IN`/`EXISTS` subqueries and host variables (`:totg`);
//! * `INSERT INTO t (SELECT ...)`, `CREATE TABLE ... AS`, `DELETE`,
//!   `UPDATE`, `CREATE SEQUENCE`/`NEXTVAL`;
//! * `DATE` values with interval arithmetic, needed by temporal
//!   MINE RULE statements.
//!
//! The mining kernel (crate `minerule`) drives this engine exactly the way
//! the paper's kernel drives a commercial SQL server: by generating SQL
//! text, executing it, and reading encoded tables back.
//!
//! ## Quickstart
//!
//! ```
//! use relational::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE purchase (tr INT, item VARCHAR, price INT)").unwrap();
//! db.execute("INSERT INTO purchase VALUES (1, 'ski_pants', 140), (1, 'hiking_boots', 180)").unwrap();
//! let rs = db.query("SELECT item FROM purchase WHERE price >= 150").unwrap();
//! assert_eq!(rs.len(), 1);
//! ```

pub mod catalog;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod persist;
pub mod planner;
pub mod resultset;
pub mod row;
pub mod sequence;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod table;
pub mod types;
pub mod value;

pub use engine::{Database, ExecOutcome, ExecStats};
pub use error::{Error, ObjectKind, Result};
pub use expr::compile::{CompiledExpr, ExecCounter, ExecMode, SqlExec};
pub use expr::vector::{ColumnBatch, VECTOR_BATCH_ROWS};
pub use index::{HashIndex, IndexPolicy};
pub use planner::PlannerMode;
pub use resultset::ResultSet;
pub use row::Row;
pub use stats::TableStats;
pub use storage::{StorageBackend, StorageConfig, StorageStats, WalFault, WalFaultKind};
pub use table::{Table, TableDelta};
pub use types::{Column, DataType, Schema};
pub use value::{Date, Value};
