//! Row representation.

use crate::value::Value;

/// A row is an ordered vector of values matching some [`crate::types::Schema`].
pub type Row = Vec<Value>;

/// Build a row from anything convertible to values. Handy in tests:
/// `row![1, "x", 2.5]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::value::Value::from($v)),*]
    };
}
