//! Scalar expression AST, shared by the SQL dialect and the MINE RULE
//! operator (whose grouping/cluster/mining conditions are SQL expressions).
//!
//! The AST can be rendered back to SQL text ([`Expr::to_sql`]); the mining
//! translator relies on this to splice user-written conditions into the
//! generated preprocessing queries of Appendix A.

pub mod compile;
pub mod eval;
pub mod vector;

use std::fmt;

/// Callback rewriting a (qualifier, name) column reference.
pub type QualifierMap<'a> = dyn FnMut(Option<&str>, &str) -> (Option<String>, String) + 'a;

use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
        }
    }

    /// Binding power for the pretty-printer (higher binds tighter).
    fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
            BinOp::Add | BinOp::Sub | BinOp::Concat => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Parse an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A possibly-qualified column reference.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// A host variable reference (`:totg`), bound on the session.
    HostVar(String),
    /// Unary operator application.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        negated: bool,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        negated: bool,
        list: Vec<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] LIKE pattern` with `%` and `_` wildcards.
    Like {
        expr: Box<Expr>,
        negated: bool,
        pattern: Box<Expr>,
    },
    /// Scalar function call (ABS, UPPER, LOWER, LENGTH, ...).
    Func { name: String, args: Vec<Expr> },
    /// Aggregate call. `arg` is `None` for `COUNT(*)`.
    Aggregate {
        func: AggFunc,
        distinct: bool,
        arg: Option<Box<Expr>>,
    },
    /// Scalar subquery `(SELECT ...)` producing a single value.
    ScalarSubquery(Box<crate::sql::ast::SelectStmt>),
    /// `EXISTS (SELECT ...)`.
    Exists {
        negated: bool,
        query: Box<crate::sql::ast::SelectStmt>,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        expr: Box<Expr>,
        negated: bool,
        query: Box<crate::sql::ast::SelectStmt>,
    },
    /// `<sequence>.NEXTVAL` — draws the next identifier from a sequence.
    NextVal(String),
    /// `CAST(expr AS TYPE)`.
    Cast {
        expr: Box<Expr>,
        dtype: crate::types::DataType,
    },
    /// Searched CASE: `CASE WHEN c THEN v ... [ELSE e] END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Shorthand for a qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Shorthand for a literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Build `left op right`.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// AND-combine a list of predicates; `None` when the list is empty.
    pub fn conjoin(preds: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        preds
            .into_iter()
            .reduce(|a, b| Expr::binary(a, BinOp::And, b))
    }

    /// True when the expression contains an aggregate call at any depth
    /// (ignoring subqueries, whose aggregates belong to the inner query).
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Aggregate { .. }) {
                found = true;
            }
        });
        found
    }

    /// Collect every column reference at any depth (ignoring subqueries).
    pub fn column_refs(&self) -> Vec<(Option<&str>, &str)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column { qualifier, name } = e {
                out.push((qualifier.as_deref(), name.as_str()));
            }
        });
        out
    }

    /// Pre-order traversal of the expression tree, not descending into
    /// subqueries.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Literal(_)
            | Expr::Column { .. }
            | Expr::HostVar(_)
            | Expr::NextVal(_)
            | Expr::ScalarSubquery(_)
            | Expr::Exists { .. } => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.walk(f)
            }
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
        }
    }

    /// Rewrite every column qualifier using `f` (old qualifier → new).
    /// Used by the mining translator to retarget `BODY.x` / `HEAD.x`
    /// references onto concrete table aliases.
    pub fn map_qualifiers(&self, f: &mut QualifierMap) -> Expr {
        fn rec(e: &Expr, f: &mut QualifierMap) -> Expr {
            e.map_qualifiers(f)
        }
        match self {
            Expr::Column { qualifier, name } => {
                let (q, n) = f(qualifier.as_deref(), name);
                Expr::Column {
                    qualifier: q,
                    name: n,
                }
            }
            Expr::Literal(_) | Expr::HostVar(_) | Expr::NextVal(_) => self.clone(),
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(rec(expr, f)),
            },
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(rec(left, f)),
                op: *op,
                right: Box::new(rec(right, f)),
            },
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => Expr::Between {
                expr: Box::new(rec(expr, f)),
                negated: *negated,
                low: Box::new(rec(low, f)),
                high: Box::new(rec(high, f)),
            },
            Expr::InList {
                expr,
                negated,
                list,
            } => Expr::InList {
                expr: Box::new(rec(expr, f)),
                negated: *negated,
                list: list.iter().map(|e| rec(e, f)).collect(),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(rec(expr, f)),
                negated: *negated,
            },
            Expr::Like {
                expr,
                negated,
                pattern,
            } => Expr::Like {
                expr: Box::new(rec(expr, f)),
                negated: *negated,
                pattern: Box::new(rec(pattern, f)),
            },
            Expr::Func { name, args } => Expr::Func {
                name: name.clone(),
                args: args.iter().map(|e| rec(e, f)).collect(),
            },
            Expr::Aggregate {
                func,
                distinct,
                arg,
            } => Expr::Aggregate {
                func: *func,
                distinct: *distinct,
                arg: arg.as_ref().map(|a| Box::new(rec(a, f))),
            },
            Expr::Cast { expr, dtype } => Expr::Cast {
                expr: Box::new(rec(expr, f)),
                dtype: *dtype,
            },
            Expr::ScalarSubquery(q) => Expr::ScalarSubquery(q.clone()),
            Expr::Exists { negated, query } => Expr::Exists {
                negated: *negated,
                query: query.clone(),
            },
            Expr::InSubquery {
                expr,
                negated,
                query,
            } => Expr::InSubquery {
                expr: Box::new(rec(expr, f)),
                negated: *negated,
                query: query.clone(),
            },
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (rec(c, f), rec(v, f)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(rec(e, f))),
            },
        }
    }

    /// Render back to SQL text.
    pub fn to_sql(&self) -> String {
        self.to_string()
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
                Value::Date(d) => write!(f, "DATE '{d}'"),
                other => write!(f, "{other}"),
            },
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::HostVar(n) => write!(f, ":{n}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    write!(f, "-")?;
                    expr.fmt_prec(f, 7)
                }
                UnaryOp::Not => {
                    write!(f, "NOT ")?;
                    expr.fmt_prec(f, 3)
                }
            },
            Expr::Binary { left, op, right } => {
                let p = op.precedence();
                let need_paren = p < parent_prec;
                if need_paren {
                    write!(f, "(")?;
                }
                left.fmt_prec(f, p)?;
                write!(f, " {} ", op.sql())?;
                right.fmt_prec(f, p + 1)?;
                if need_paren {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                expr.fmt_prec(f, 4)?;
                write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
                low.fmt_prec(f, 5)?;
                write!(f, " AND ")?;
                high.fmt_prec(f, 5)
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                expr.fmt_prec(f, 4)?;
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    e.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::IsNull { expr, negated } => {
                expr.fmt_prec(f, 4)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                expr.fmt_prec(f, 4)?;
                write!(f, " {}LIKE ", if *negated { "NOT " } else { "" })?;
                pattern.fmt_prec(f, 5)
            }
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::Aggregate {
                func,
                distinct,
                arg,
            } => {
                write!(f, "{}(", func.sql())?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    Some(a) => a.fmt_prec(f, 0)?,
                    None => write!(f, "*")?,
                }
                write!(f, ")")
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Exists { negated, query } => {
                write!(f, "{}EXISTS ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::InSubquery {
                expr,
                negated,
                query,
            } => {
                expr.fmt_prec(f, 4)?;
                write!(f, " {}IN ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::NextVal(seq) => write!(f, "{seq}.NEXTVAL"),
            Expr::Cast { expr, dtype } => {
                write!(f, "CAST(")?;
                expr.fmt_prec(f, 0)?;
                write!(f, " AS {dtype})")
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN ")?;
                    c.fmt_prec(f, 0)?;
                    write!(f, " THEN ")?;
                    v.fmt_prec(f, 0)?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE ")?;
                    e.fmt_prec(f, 0)?;
                }
                write!(f, " END")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_simple_comparison() {
        let e = Expr::binary(Expr::qcol("BODY", "price"), BinOp::GtEq, Expr::lit(100));
        assert_eq!(e.to_sql(), "BODY.price >= 100");
    }

    #[test]
    fn render_parenthesises_or_under_and() {
        let or = Expr::binary(Expr::col("a"), BinOp::Or, Expr::col("b"));
        let e = Expr::binary(or, BinOp::And, Expr::col("c"));
        assert_eq!(e.to_sql(), "(a OR b) AND c");
    }

    #[test]
    fn render_between_and_strings() {
        let e = Expr::Between {
            expr: Box::new(Expr::col("date")),
            negated: false,
            low: Box::new(Expr::lit("a'b")),
            high: Box::new(Expr::lit("z")),
        };
        assert_eq!(e.to_sql(), "date BETWEEN 'a''b' AND 'z'");
    }

    #[test]
    fn contains_aggregate_detects_nested() {
        let agg = Expr::Aggregate {
            func: AggFunc::Count,
            distinct: false,
            arg: None,
        };
        let e = Expr::binary(agg, BinOp::Gt, Expr::lit(2));
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn column_refs_collects_qualifiers() {
        let e = Expr::binary(
            Expr::qcol("BODY", "price"),
            BinOp::Lt,
            Expr::qcol("HEAD", "price"),
        );
        assert_eq!(
            e.column_refs(),
            vec![(Some("BODY"), "price"), (Some("HEAD"), "price")]
        );
    }

    #[test]
    fn map_qualifiers_rewrites() {
        let e = Expr::binary(Expr::qcol("BODY", "price"), BinOp::Lt, Expr::lit(100));
        let out = e.map_qualifiers(&mut |q, n| {
            if q == Some("BODY") {
                (Some("B1".to_string()), n.to_string())
            } else {
                (q.map(str::to_string), n.to_string())
            }
        });
        assert_eq!(out.to_sql(), "B1.price < 100");
    }

    #[test]
    fn conjoin_combines_with_and() {
        let e = Expr::conjoin(vec![Expr::col("a"), Expr::col("b"), Expr::col("c")]).unwrap();
        assert_eq!(e.to_sql(), "a AND b AND c");
        assert!(Expr::conjoin(std::iter::empty()).is_none());
    }

    #[test]
    fn nextval_renders_oracle_style() {
        assert_eq!(
            Expr::NextVal("Gidsequence".into()).to_sql(),
            "Gidsequence.NEXTVAL"
        );
    }
}
