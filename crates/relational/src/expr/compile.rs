//! Expression compilation: lowering [`Expr`] trees into flat postfix
//! programs evaluated on a value stack.
//!
//! The interpreter in [`eval`](super::eval) re-resolves every column
//! reference by qualifier/name string lookup and re-walks the tree for
//! every row. A [`CompiledExpr`] does that work once per statement:
//! column references become row offsets, constant subtrees fold to a
//! single push, and `AND`/`OR`/`IN`/`CASE` lower to short-circuit jumps.
//! Nodes the program machine cannot host (subqueries) fall back to the
//! interpreter per evaluation; everything else runs on the flat program.
//!
//! Compilation is *total*: it never fails. Anything that cannot be
//! pre-resolved (an unknown column, an aggregate outside grouping)
//! becomes a runtime fail op, so errors surface per evaluated row —
//! exactly like the interpreter, where an empty input never errors.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};
use crate::expr::eval::{
    cast_value, eval_binary, eval_expr, eval_scalar_func, eval_unary, like_match, logical_and,
    logical_or, maybe_negate, NoCtx, QueryCtx,
};
use crate::expr::{BinOp, Expr, UnaryOp};
use crate::row::Row;
use crate::types::{DataType, Schema};
use crate::value::Value;

/// Which expression-execution strategy the engine uses at its hot sites
/// (scan filters, join keys, group keys, projections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SqlExec {
    /// Always lower expressions to compiled programs.
    Compiled,
    /// Always walk the `Expr` tree per row.
    Interpreted,
    /// Let the engine choose. Currently identical to `Compiled` at every
    /// site; kept as the default so a future cost heuristic can slot in
    /// without changing configuration surfaces.
    #[default]
    Auto,
}

impl SqlExec {
    /// Parse a mode name (`compiled` | `interpreted` | `auto`),
    /// ASCII-case-insensitively.
    pub fn from_name(name: &str) -> Option<SqlExec> {
        match name.to_ascii_lowercase().as_str() {
            "compiled" => Some(SqlExec::Compiled),
            "interpreted" => Some(SqlExec::Interpreted),
            "auto" => Some(SqlExec::Auto),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SqlExec::Compiled => "compiled",
            SqlExec::Interpreted => "interpreted",
            SqlExec::Auto => "auto",
        }
    }

    /// Whether hot sites should compile under this mode.
    pub fn use_compiled(self) -> bool {
        !matches!(self, SqlExec::Interpreted)
    }
}

impl fmt::Display for SqlExec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which row-flow strategy the engine uses at its hot sites: one row at
/// a time through a [`SiteEval`], or column batches of
/// [`VECTOR_BATCH_ROWS`](crate::expr::vector::VECTOR_BATCH_ROWS) rows
/// through the vectorized evaluator (`expr/vector.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Always run the batch path. Programs the vector machine cannot
    /// host (subqueries, sequence draws) fall back to row-at-a-time
    /// evaluation per batch.
    Vector,
    /// Always run one row at a time (the pre-vectorization path).
    Row,
    /// Let the engine choose per site: the batch path when every program
    /// at the site is vector-safe (no fallback ops, no sequence draws)
    /// and expressions compile at all, the row path otherwise.
    #[default]
    Auto,
}

impl ExecMode {
    /// Parse a mode name (`vector` | `row` | `auto`),
    /// ASCII-case-insensitively.
    pub fn from_name(name: &str) -> Option<ExecMode> {
        match name.to_ascii_lowercase().as_str() {
            "vector" => Some(ExecMode::Vector),
            "row" => Some(ExecMode::Row),
            "auto" => Some(ExecMode::Auto),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Vector => "vector",
            ExecMode::Row => "row",
            ExecMode::Auto => "auto",
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Work the executor reports through [`QueryCtx::bump`]. A plain no-op
/// outside a `Database`, so unit tests with `NoCtx` cost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecCounter {
    /// Expression programs compiled.
    ProgramsCompiled,
    /// Constant subtrees folded at compile time.
    ConstFolded,
    /// Interpreter-fallback ops emitted (subquery nodes).
    FallbackOps,
    /// Base-table rows fed into SELECT evaluation.
    RowsScanned,
    /// Rows removed by WHERE / join-residual filters.
    RowsFiltered,
    /// Rows produced by join operators.
    RowsJoined,
    /// FROM lists planned by the cost-based planner.
    PlannerPlans,
    /// Join steps the cost-based planner moved off the naive
    /// left-to-right order.
    PlannerReorderedJoins,
    /// WHERE conjuncts the cost-based planner pushed beneath joins.
    PlannerPushedFilters,
    /// Accumulated |estimated − actual| join output rows (cost mode).
    PlannerEstRowsErr,
    /// Column batches evaluated on the vector path.
    VectorBatches,
    /// Rows streamed through the vector path (selected lanes entering
    /// batch evaluation).
    VectorRows,
    /// Conditional jumps that narrowed the selection vector (parked at
    /// least one lane) during batch evaluation.
    VectorSelNarrowings,
    /// Batches that fell back to row-at-a-time evaluation under forced
    /// vector mode because a site program was not vector-safe.
    VectorFallbackBatches,
}

/// One instruction of a compiled expression program. Operand order on
/// the stack is source order: `a op b` pushes `a` then `b`.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Push a constant.
    Const(Value),
    /// Push `row[idx]` — the column reference resolved at compile time.
    Col(usize),
    /// Fail with this error at evaluation time (unresolvable column,
    /// aggregate outside grouping).
    Fail(Box<Error>),
    /// Push a host variable's current value.
    HostVar(String),
    /// Draw the next sequence value — one draw per evaluation, like the
    /// interpreter.
    NextVal(String),
    /// Pop one, apply a unary operator.
    Unary(UnaryOp),
    /// Pop two, apply a non-logical binary operator.
    Binary(BinOp),
    /// Pop two, combine with three-valued AND / OR (the join point after
    /// a short-circuit jump was not taken).
    And,
    Or,
    /// Jump when the top of stack is exactly FALSE / TRUE (peek, keep).
    JumpIfFalse(usize),
    JumpIfTrue(usize),
    /// Unconditional jump.
    Jump(usize),
    /// Pop the top; jump unless it is exactly TRUE (CASE WHEN arms — a
    /// non-boolean condition skips the branch without erroring, like the
    /// interpreter's `is_true`).
    PopJumpUnlessTrue(usize),
    /// Pop high, low, value; push the `[NOT] BETWEEN` verdict.
    Between {
        negated: bool,
    },
    /// Pop one; push the `IS [NOT] NULL` verdict.
    IsNull {
        negated: bool,
    },
    /// Pop pattern, value; push the `[NOT] LIKE` verdict.
    Like {
        negated: bool,
    },
    /// `IN (list)` prologue: the test value is on top. NULL test values
    /// decide the whole predicate (NULL, un-negated), so jump straight
    /// past `end`; otherwise push the FALSE match accumulator.
    InStart {
        end: usize,
    },
    /// Pop item, pop accumulator; fold `acc OR (value = item)` with the
    /// test value still below on the stack; push the new accumulator.
    InFold,
    /// Pop accumulator and test value; push the final `[NOT] IN` verdict.
    InFinish {
        negated: bool,
    },
    /// Pop `argc` arguments, call a scalar function.
    Call {
        name: String,
        argc: usize,
    },
    /// Pop one, CAST to the type.
    Cast(DataType),
    /// Evaluate the subtree with the interpreter (subquery nodes need
    /// the full engine machinery).
    Fallback(Box<Expr>),
}

/// A compiled expression: a flat program over a value stack, plus the
/// input schema when any op needs the interpreter fallback.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    pub(crate) ops: Vec<Op>,
    pub(crate) fallback_schema: Option<Schema>,
}

impl CompiledExpr {
    /// Lower `expr` for rows of `schema`. Never fails — see the module
    /// docs for how unresolvable nodes are represented. Compile-time
    /// work is reported through `ctx` ([`ExecCounter::ProgramsCompiled`]
    /// and friends).
    pub fn compile(expr: &Expr, schema: &Schema, ctx: &mut dyn QueryCtx) -> CompiledExpr {
        let mut c = Compiler {
            ops: Vec::new(),
            schema,
            needs_fallback: false,
            folded: 0,
            fallback_ops: 0,
        };
        c.emit(expr);
        ctx.bump(ExecCounter::ProgramsCompiled, 1);
        if c.folded > 0 {
            ctx.bump(ExecCounter::ConstFolded, c.folded);
        }
        if c.fallback_ops > 0 {
            ctx.bump(ExecCounter::FallbackOps, c.fallback_ops);
        }
        CompiledExpr {
            ops: c.ops,
            fallback_schema: c.needs_fallback.then(|| schema.clone()),
        }
    }

    /// Evaluate against one row, reusing `stack` as scratch so hot loops
    /// allocate nothing per row.
    pub fn eval_with(
        &self,
        row: &Row,
        ctx: &mut dyn QueryCtx,
        stack: &mut Vec<Value>,
    ) -> Result<Value> {
        stack.clear();
        let mut pc = 0usize;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                Op::Const(v) => stack.push(v.clone()),
                Op::Col(idx) => stack.push(row[*idx].clone()),
                Op::Fail(e) => return Err((**e).clone()),
                Op::HostVar(name) => stack.push(ctx.host_var(name)?),
                Op::NextVal(seq) => stack.push(Value::Int(ctx.nextval(seq)?)),
                Op::Unary(op) => {
                    let v = stack.pop().expect("unary operand");
                    stack.push(eval_unary(*op, v)?);
                }
                Op::Binary(op) => {
                    let r = stack.pop().expect("binary rhs");
                    let l = stack.pop().expect("binary lhs");
                    stack.push(eval_binary(*op, l, r)?);
                }
                Op::And => {
                    let r = stack.pop().expect("and rhs");
                    let l = stack.pop().expect("and lhs");
                    stack.push(logical_and(l, r));
                }
                Op::Or => {
                    let r = stack.pop().expect("or rhs");
                    let l = stack.pop().expect("or lhs");
                    stack.push(logical_or(l, r));
                }
                Op::JumpIfFalse(target) => {
                    if matches!(stack.last(), Some(Value::Bool(false))) {
                        pc = *target;
                        continue;
                    }
                }
                Op::JumpIfTrue(target) => {
                    if matches!(stack.last(), Some(Value::Bool(true))) {
                        pc = *target;
                        continue;
                    }
                }
                Op::Jump(target) => {
                    pc = *target;
                    continue;
                }
                Op::PopJumpUnlessTrue(target) => {
                    let v = stack.pop().expect("case condition");
                    if !v.is_true() {
                        pc = *target;
                        continue;
                    }
                }
                Op::Between { negated } => {
                    let high = stack.pop().expect("between high");
                    let low = stack.pop().expect("between low");
                    let v = stack.pop().expect("between value");
                    let ge = eval_binary(BinOp::GtEq, v.clone(), low)?;
                    let le = eval_binary(BinOp::LtEq, v, high)?;
                    stack.push(maybe_negate(logical_and(ge, le), *negated));
                }
                Op::IsNull { negated } => {
                    let v = stack.pop().expect("is-null operand");
                    stack.push(Value::Bool(v.is_null() != *negated));
                }
                Op::Like { negated } => {
                    let pattern = stack.pop().expect("like pattern");
                    let v = stack.pop().expect("like value");
                    if v.is_null() || pattern.is_null() {
                        stack.push(Value::Null);
                    } else {
                        let hit = like_match(v.as_str()?, pattern.as_str()?);
                        stack.push(maybe_negate(Value::Bool(hit), *negated));
                    }
                }
                Op::InStart { end } => {
                    if stack.last().is_some_and(Value::is_null) {
                        // The NULL test value already *is* the result.
                        pc = *end;
                        continue;
                    }
                    stack.push(Value::Bool(false));
                }
                Op::InFold => {
                    let item = stack.pop().expect("in item");
                    let acc = stack.pop().expect("in accumulator");
                    let v = stack.last().expect("in test value");
                    let hit = if item.is_null() {
                        Value::Null
                    } else if v.sql_cmp(&item)? == Some(Ordering::Equal) {
                        Value::Bool(true)
                    } else {
                        Value::Bool(false)
                    };
                    stack.push(logical_or(acc, hit));
                }
                Op::InFinish { negated } => {
                    let acc = stack.pop().expect("in accumulator");
                    let _v = stack.pop().expect("in test value");
                    stack.push(match acc {
                        Value::Bool(true) => maybe_negate(Value::Bool(true), *negated),
                        Value::Null => Value::Null,
                        _ => maybe_negate(Value::Bool(false), *negated),
                    });
                }
                Op::Call { name, argc } => {
                    let args = stack.split_off(stack.len() - argc);
                    stack.push(eval_scalar_func(name, args)?);
                }
                Op::Cast(dtype) => {
                    let v = stack.pop().expect("cast operand");
                    stack.push(cast_value(v, *dtype)?);
                }
                Op::Fallback(expr) => {
                    let schema = self.fallback_schema.as_ref().expect("fallback schema");
                    stack.push(eval_expr(expr, schema, row, ctx)?);
                }
            }
            pc += 1;
        }
        Ok(stack.pop().expect("program result"))
    }

    /// Evaluate with a fresh stack (tests and one-off sites).
    pub fn eval(&self, row: &Row, ctx: &mut dyn QueryCtx) -> Result<Value> {
        let mut stack = Vec::new();
        self.eval_with(row, ctx, &mut stack)
    }

    /// Whether the vector machine can host this program. Subquery
    /// fallbacks need the interpreter, and sequence draws must keep the
    /// row path's exact per-row draw interleaving.
    pub fn vector_safe(&self) -> bool {
        !self
            .ops
            .iter()
            .any(|op| matches!(op, Op::Fallback(_) | Op::NextVal(_)))
    }
}

/// A per-site evaluator: either a compiled program or the interpreter,
/// chosen once at plan time from the context's [`SqlExec`] mode. Hot
/// loops hold one of these per expression and stay mode-agnostic.
pub enum SiteEval<'e> {
    /// Runs the flat program.
    Compiled(CompiledExpr),
    /// Walks the tree per row.
    Interpreted(&'e Expr),
}

impl<'e> SiteEval<'e> {
    /// Plan `expr` for rows of `schema` under the context's mode.
    pub fn plan(expr: &'e Expr, schema: &Schema, ctx: &mut dyn QueryCtx) -> SiteEval<'e> {
        if ctx.sqlexec().use_compiled() {
            SiteEval::Compiled(CompiledExpr::compile(expr, schema, ctx))
        } else {
            SiteEval::Interpreted(expr)
        }
    }

    /// Evaluate against one row. `schema` and `stack` must be the schema
    /// the evaluator was planned for and a reusable scratch stack.
    pub fn eval(
        &self,
        schema: &Schema,
        row: &Row,
        ctx: &mut dyn QueryCtx,
        stack: &mut Vec<Value>,
    ) -> Result<Value> {
        match self {
            SiteEval::Compiled(program) => program.eval_with(row, ctx, stack),
            SiteEval::Interpreted(expr) => eval_expr(expr, schema, row, ctx),
        }
    }
}

/// True when the subtree's value cannot depend on the row or the engine
/// context: no columns, host variables, sequence draws, aggregates or
/// subqueries anywhere below.
fn is_const(expr: &Expr) -> bool {
    let mut constant = true;
    expr.walk(&mut |e| match e {
        Expr::Column { .. }
        | Expr::HostVar(_)
        | Expr::NextVal(_)
        | Expr::Aggregate { .. }
        | Expr::ScalarSubquery(_)
        | Expr::Exists { .. }
        | Expr::InSubquery { .. } => constant = false,
        _ => {}
    });
    constant
}

struct Compiler<'a> {
    ops: Vec<Op>,
    schema: &'a Schema,
    needs_fallback: bool,
    folded: u64,
    fallback_ops: u64,
}

impl Compiler<'_> {
    fn emit(&mut self, expr: &Expr) {
        // Fold the largest constant subtrees to a single push. A fold
        // that *errors* (e.g. `1/0`) instead emits the structural ops,
        // so the error stays a per-row runtime error like the
        // interpreter's; inner constant children still fold on the way.
        if is_const(expr) {
            if let Expr::Literal(v) = expr {
                self.ops.push(Op::Const(v.clone()));
                return;
            }
            let empty: Row = Vec::new();
            if let Ok(v) = eval_expr(expr, &Schema::default(), &empty, &mut NoCtx) {
                self.folded += 1;
                self.ops.push(Op::Const(v));
                return;
            }
        }
        match expr {
            Expr::Literal(v) => self.ops.push(Op::Const(v.clone())),
            Expr::Column { qualifier, name } => {
                match self.schema.resolve(qualifier.as_deref(), name) {
                    Ok(idx) => self.ops.push(Op::Col(idx)),
                    Err(e) => self.ops.push(Op::Fail(Box::new(e))),
                }
            }
            Expr::HostVar(name) => self.ops.push(Op::HostVar(name.clone())),
            Expr::NextVal(seq) => self.ops.push(Op::NextVal(seq.clone())),
            Expr::Unary { op, expr } => {
                self.emit(expr);
                self.ops.push(Op::Unary(*op));
            }
            Expr::Binary { left, op, right } => match op {
                // `a AND b` / `a OR b`: evaluate the left side, skip the
                // right entirely when it already decides the result —
                // the interpreter's exact short-circuit rule.
                BinOp::And => {
                    self.emit(left);
                    let jump = self.reserve();
                    self.emit(right);
                    self.ops.push(Op::And);
                    let end = self.ops.len();
                    self.ops[jump] = Op::JumpIfFalse(end);
                }
                BinOp::Or => {
                    self.emit(left);
                    let jump = self.reserve();
                    self.emit(right);
                    self.ops.push(Op::Or);
                    let end = self.ops.len();
                    self.ops[jump] = Op::JumpIfTrue(end);
                }
                _ => {
                    self.emit(left);
                    self.emit(right);
                    self.ops.push(Op::Binary(*op));
                }
            },
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                self.emit(expr);
                self.emit(low);
                self.emit(high);
                self.ops.push(Op::Between { negated: *negated });
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => self.emit_in_list(expr, *negated, list),
            Expr::IsNull { expr, negated } => {
                self.emit(expr);
                self.ops.push(Op::IsNull { negated: *negated });
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                self.emit(expr);
                self.emit(pattern);
                self.ops.push(Op::Like { negated: *negated });
            }
            Expr::Func { name, args } => {
                for a in args {
                    self.emit(a);
                }
                self.ops.push(Op::Call {
                    name: name.clone(),
                    argc: args.len(),
                });
            }
            Expr::Aggregate { .. } => {
                // Aggregates never reach row-at-a-time evaluation in a
                // valid plan; mirror the interpreter's per-row error.
                self.ops.push(Op::Fail(Box::new(Error::Aggregate {
                    message: "aggregate used outside GROUP BY context".to_string(),
                })));
            }
            Expr::ScalarSubquery(_) | Expr::Exists { .. } | Expr::InSubquery { .. } => {
                self.needs_fallback = true;
                self.fallback_ops += 1;
                self.ops.push(Op::Fallback(Box::new(expr.clone())));
            }
            Expr::Cast { expr, dtype } => {
                self.emit(expr);
                self.ops.push(Op::Cast(*dtype));
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                let mut end_jumps = Vec::with_capacity(branches.len());
                for (cond, val) in branches {
                    self.emit(cond);
                    let next = self.reserve();
                    self.emit(val);
                    end_jumps.push(self.reserve());
                    let after = self.ops.len();
                    self.ops[next] = Op::PopJumpUnlessTrue(after);
                }
                match else_expr {
                    Some(e) => self.emit(e),
                    None => self.ops.push(Op::Const(Value::Null)),
                }
                let end = self.ops.len();
                for j in end_jumps {
                    self.ops[j] = Op::Jump(end);
                }
            }
        }
    }

    /// Lower `v [NOT] IN (items…)` with the interpreter's exact
    /// laziness: a matching item ends the scan (later items are never
    /// evaluated, so their errors never fire), a NULL item poisons the
    /// accumulator to NULL unless a later item matches, and a NULL test
    /// value yields NULL without looking at any item.
    fn emit_in_list(&mut self, expr: &Expr, negated: bool, list: &[Expr]) {
        self.emit(expr);
        let start = self.reserve();
        let mut exits = Vec::new();
        for (i, item) in list.iter().enumerate() {
            self.emit(item);
            self.ops.push(Op::InFold);
            if i + 1 < list.len() {
                exits.push(self.reserve());
            }
        }
        let finish = self.ops.len();
        self.ops.push(Op::InFinish { negated });
        let end = self.ops.len();
        self.ops[start] = Op::InStart { end };
        for j in exits {
            self.ops[j] = Op::JumpIfTrue(finish);
        }
    }

    /// Emit a placeholder op whose jump target is patched later.
    fn reserve(&mut self) -> usize {
        let at = self.ops.len();
        self.ops.push(Op::Jump(usize::MAX));
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_expression;
    use crate::types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
            Column::new("c", DataType::Float),
        ])
    }

    fn row_abc() -> Row {
        vec![Value::Int(5), Value::Str("hello".into()), Value::Float(2.5)]
    }

    /// Compile and interpret must agree — on the value or on the error.
    fn agree(sql: &str, row: &Row) {
        let expr = parse_expression(sql).unwrap();
        let s = schema();
        let interpreted = eval_expr(&expr, &s, row, &mut NoCtx);
        let program = CompiledExpr::compile(&expr, &s, &mut NoCtx);
        let compiled = program.eval(row, &mut NoCtx);
        assert_eq!(compiled, interpreted, "{sql}");
    }

    #[test]
    fn columns_resolve_to_offsets() {
        let expr = parse_expression("a + 1").unwrap();
        let program = CompiledExpr::compile(&expr, &schema(), &mut NoCtx);
        assert_eq!(program.eval(&row_abc(), &mut NoCtx), Ok(Value::Int(6)));
    }

    #[test]
    fn arithmetic_comparisons_and_functions_agree() {
        let row = row_abc();
        for sql in [
            "a + 2 * 3",
            "a / 2",
            "-a + 10",
            "a >= 5 AND c < 3.0",
            "a > 100 OR b = 'hello'",
            "NOT (a = 5)",
            "a BETWEEN 1 AND 9",
            "a NOT BETWEEN 6 AND 9",
            "b LIKE 'he%'",
            "b NOT LIKE '_x%'",
            "b IS NOT NULL",
            "a IN (1, 3, 5)",
            "a NOT IN (1, 3)",
            "UPPER(b)",
            "LENGTH(b) + a",
            "SUBSTR(b, 2, 3)",
            "CAST(a AS FLOAT) + c",
            "CASE WHEN a > 3 THEN 'big' ELSE 'small' END",
            "CASE WHEN a > 9 THEN 'big' END",
            "COALESCE(NULL, b)",
            "a || b",
        ] {
            agree(sql, &row);
        }
    }

    #[test]
    fn null_semantics_agree() {
        let row = vec![Value::Null, Value::Null, Value::Float(2.5)];
        for sql in [
            "a = 1",
            "a + 1",
            "a AND b",
            "a OR c > 1.0",
            "a IS NULL",
            "a BETWEEN 1 AND 2",
            "a IN (1, 2)",
            "a NOT IN (1, 2)",
            "1 IN (2, a)",
            "1 NOT IN (2, a)",
            "b LIKE 'x%'",
            "NOT a",
        ] {
            agree(sql, &row);
        }
    }

    #[test]
    fn short_circuit_skips_the_right_side() {
        // The right side would error (type mismatch on AND of an INT);
        // a FALSE left side must skip it, exactly like the interpreter.
        let row = row_abc();
        agree("a > 100 AND (a AND 1)", &row);
        agree("a = 5 OR (a AND 1)", &row);
    }

    #[test]
    fn in_list_is_lazy_like_the_interpreter() {
        // 5 matches the first item: the 1/0 item must never evaluate.
        let row = row_abc();
        let expr = parse_expression("a IN (5, 1/0)").unwrap();
        let program = CompiledExpr::compile(&expr, &schema(), &mut NoCtx);
        assert_eq!(program.eval(&row, &mut NoCtx), Ok(Value::Bool(true)));
        // No match before the division: the error fires, as interpreted.
        agree("a IN (4, 1/0)", &row);
    }

    #[test]
    fn constants_fold_but_constant_errors_stay_per_row() {
        let expr = parse_expression("1 + 2 * 3").unwrap();
        let program = CompiledExpr::compile(&expr, &schema(), &mut NoCtx);
        assert!(
            matches!(program.ops.as_slice(), [Op::Const(Value::Int(7))]),
            "{:?}",
            program.ops
        );
        // A constant expression that errors still evaluates per row.
        agree("1 / 0", &row_abc());
        agree("a + 1 / 0", &row_abc());
    }

    #[test]
    fn unknown_columns_error_at_evaluation_not_compile() {
        let expr = parse_expression("missing + 1").unwrap();
        let program = CompiledExpr::compile(&expr, &schema(), &mut NoCtx);
        let err = program.eval(&row_abc(), &mut NoCtx).unwrap_err();
        assert!(matches!(err, Error::UnknownColumn { .. }), "{err:?}");
    }

    #[test]
    fn case_without_match_and_nested_case_agree() {
        let row = row_abc();
        agree(
            "CASE WHEN a = 1 THEN 'one' WHEN a = 5 THEN 'five' ELSE 'other' END",
            &row,
        );
        agree(
            "CASE WHEN a > 10 THEN CASE WHEN c > 1.0 THEN 1 ELSE 2 END ELSE 3 END",
            &row,
        );
    }

    #[test]
    fn sqlexec_names_round_trip() {
        for mode in [SqlExec::Compiled, SqlExec::Interpreted, SqlExec::Auto] {
            assert_eq!(SqlExec::from_name(mode.name()), Some(mode));
            assert_eq!(
                SqlExec::from_name(&mode.name().to_ascii_uppercase()),
                Some(mode)
            );
        }
        assert_eq!(SqlExec::from_name("vectorized"), None);
        assert_eq!(SqlExec::default(), SqlExec::Auto);
        assert!(SqlExec::Auto.use_compiled());
        assert!(!SqlExec::Interpreted.use_compiled());
    }

    #[test]
    fn exec_mode_names_round_trip() {
        for mode in [ExecMode::Vector, ExecMode::Row, ExecMode::Auto] {
            assert_eq!(ExecMode::from_name(mode.name()), Some(mode));
            assert_eq!(
                ExecMode::from_name(&mode.name().to_ascii_uppercase()),
                Some(mode)
            );
        }
        assert_eq!(ExecMode::from_name("columnar"), None);
        assert_eq!(ExecMode::default(), ExecMode::Auto);
    }

    #[test]
    fn vector_safety_tracks_fallback_and_sequence_ops() {
        let s = schema();
        let plain = parse_expression("a + 1 > 3 AND b LIKE 'he%'").unwrap();
        assert!(CompiledExpr::compile(&plain, &s, &mut NoCtx).vector_safe());
        let seq = parse_expression("a + counter.NEXTVAL").unwrap();
        assert!(!CompiledExpr::compile(&seq, &s, &mut NoCtx).vector_safe());
    }
}
