//! Vectorized columnar batch execution for compiled expression programs.
//!
//! The row path ([`CompiledExpr::eval_with`]) re-dispatches every opcode
//! for every row. The vector path amortises that dispatch across a
//! [`ColumnBatch`] of up to [`VECTOR_BATCH_ROWS`] rows: each postfix op
//! runs once and loops over the batch's *active lanes* (the selection
//! vector), with stack slots widened to one value per lane.
//!
//! Short-circuit jumps narrow the selection instead of branching: lanes
//! whose stack top decides the jump are *parked* at the jump target and
//! re-merged into the active set when the program counter reaches it.
//! Because compilation is structured (every jump is forward, and every
//! path into a merge point carries the same stack depth), parked lanes
//! always rejoin at a consistent depth, and a lane's slot values are
//! never overwritten while it is parked — ops only write active lanes.
//!
//! Errors are per-lane: a failing kernel parks the lane with its error
//! and evaluation continues for the rest. At the end the error of the
//! *lowest* lane wins, which is exactly the first error the row path
//! would have hit — vector-safe programs have no side effects, so the
//! extra evaluation of later lanes is unobservable.

use crate::error::{Error, Result};
use crate::expr::compile::{CompiledExpr, ExecCounter, ExecMode, Op};
use crate::expr::eval::{
    cast_value, eval_binary, eval_expr, eval_scalar_func, eval_unary, like_match, logical_and,
    logical_or, maybe_negate, QueryCtx,
};
use crate::expr::{BinOp, Expr};
use crate::row::Row;
use crate::types::Schema;
use crate::value::{Date, Value};
use std::cmp::Ordering;

/// Rows per column batch. Small enough that a batch's working set stays
/// cache-resident, large enough to amortise per-op dispatch.
pub const VECTOR_BATCH_ROWS: usize = 1024;

/// Validity bitmap: bit set ⇒ the value is present (not NULL).
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// An all-invalid bitmap covering `len` lanes.
    pub fn zeroed(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Mark lane `i` valid.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Whether lane `i` is valid.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
}

/// One extracted column of a batch: a typed vector plus validity, or a
/// marker that values stay row-borrowed (strings and mixed types, which
/// would cost a clone per row to extract even when never accessed).
#[derive(Debug, Clone)]
pub enum ColumnData {
    Ints(Vec<i64>),
    Floats(Vec<f64>),
    Bools(Vec<bool>),
    Dates(Vec<Date>),
    /// Values are read straight out of the source rows on access.
    Rowwise,
}

/// A typed column of a [`ColumnBatch`].
#[derive(Debug, Clone)]
pub struct BatchColumn {
    pub data: ColumnData,
    /// Meaningful for typed [`ColumnData`] variants; unused for `Rowwise`.
    pub validity: Bitmap,
}

/// A column-major view over up to [`VECTOR_BATCH_ROWS`] consecutive rows:
/// typed vectors for the columns the consumer asked for, a validity
/// bitmap per column, and a selection vector of live lanes.
pub struct ColumnBatch<'a> {
    rows: &'a [Row],
    /// Extracted columns, indexed by source column position. Positions
    /// not requested at construction hold `None` and read row-wise.
    columns: Vec<Option<BatchColumn>>,
    /// Live lanes, ascending. Starts dense (`0..rows.len()`).
    sel: Vec<u32>,
}

impl<'a> ColumnBatch<'a> {
    /// Build a batch over `rows`, extracting the columns listed in
    /// `cols` into typed vectors (others remain readable row-wise).
    pub fn from_rows(rows: &'a [Row], cols: &[usize]) -> ColumnBatch<'a> {
        let width = cols.iter().copied().max().map_or(0, |m| m + 1);
        let mut columns = vec![None; width];
        for &c in cols {
            if columns[c].is_none() {
                columns[c] = Some(extract_column(rows, c));
            }
        }
        ColumnBatch {
            rows,
            columns,
            sel: (0..rows.len() as u32).collect(),
        }
    }

    /// Number of rows in the batch (dense, before selection).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The selection vector: live lanes, ascending.
    pub fn sel(&self) -> &[u32] {
        &self.sel
    }

    /// Replace the selection vector (lanes must be ascending and in
    /// range). Lets a consumer thread a pre-narrowed batch onward.
    pub fn set_sel(&mut self, sel: Vec<u32>) {
        debug_assert!(sel.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(sel.last().is_none_or(|&l| (l as usize) < self.rows.len()));
        self.sel = sel;
    }

    /// Read one value, preferring the typed column.
    #[inline]
    pub fn value(&self, col: usize, lane: usize) -> Value {
        match self.columns.get(col).and_then(Option::as_ref) {
            Some(c) => match &c.data {
                ColumnData::Ints(v) if c.validity.get(lane) => Value::Int(v[lane]),
                ColumnData::Floats(v) if c.validity.get(lane) => Value::Float(v[lane]),
                ColumnData::Bools(v) if c.validity.get(lane) => Value::Bool(v[lane]),
                ColumnData::Dates(v) if c.validity.get(lane) => Value::Date(v[lane]),
                ColumnData::Rowwise => self.rows[lane][col].clone(),
                _ => Value::Null,
            },
            None => self.rows[lane][col].clone(),
        }
    }
}

/// Extract one column into a typed vector when every value fits a single
/// scalar type (NULLs allowed); otherwise leave it row-borrowed.
fn extract_column(rows: &[Row], col: usize) -> BatchColumn {
    let rowwise = BatchColumn {
        data: ColumnData::Rowwise,
        validity: Bitmap::default(),
    };
    let mut validity = Bitmap::zeroed(rows.len());
    // Classify from the first non-null value; bail to row-wise on any
    // mismatch (possible in derived relations with loose schemas).
    let first = rows
        .iter()
        .map(|r| &r[col])
        .position(|v| !matches!(v, Value::Null));
    let Some(first) = first else {
        // All-NULL: a typed vector with an all-zero validity bitmap.
        return BatchColumn {
            data: ColumnData::Ints(vec![0; rows.len()]),
            validity,
        };
    };
    macro_rules! gather {
        ($variant:ident, $ctor:ident, $default:expr) => {{
            let mut out = vec![$default; rows.len()];
            for (i, row) in rows.iter().enumerate() {
                match &row[col] {
                    Value::$variant(x) => {
                        out[i] = x.clone();
                        validity.set(i);
                    }
                    Value::Null => {}
                    _ => return rowwise,
                }
            }
            BatchColumn {
                data: ColumnData::$ctor(out),
                validity,
            }
        }};
    }
    match &rows[first][col] {
        Value::Int(_) => gather!(Int, Ints, 0i64),
        Value::Float(_) => gather!(Float, Floats, 0f64),
        Value::Bool(_) => gather!(Bool, Bools, false),
        Value::Date(d) => {
            let d = *d;
            gather!(Date, Dates, d)
        }
        _ => rowwise,
    }
}

/// Reusable evaluator state: lane-wide stack slots, the active lane set,
/// parked lanes keyed by jump target, and per-lane errors.
#[derive(Default)]
pub(crate) struct VectorScratch {
    slots: Vec<Vec<Value>>,
    depth: usize,
    active: Vec<u32>,
    /// Lanes waiting at a forward jump target: `(target_pc, stack_depth
    /// on the lanes' path, lanes)`.
    parked: Vec<(usize, usize, Vec<u32>)>,
    errs: Vec<(u32, Error)>,
    merge_buf: Vec<u32>,
    lane_buf: Vec<u32>,
    free: Vec<Vec<u32>>,
    width: usize,
}

impl VectorScratch {
    fn reset(&mut self, width: usize, sel: &[u32]) {
        self.width = width;
        self.depth = 0;
        self.active.clear();
        self.active.extend_from_slice(sel);
        for (_, _, mut lanes) in self.parked.drain(..) {
            lanes.clear();
            self.free.push(lanes);
        }
        self.errs.clear();
    }

    /// Bump `depth`, making sure the new top slot covers every lane.
    fn push_slot(&mut self) -> usize {
        if self.slots.len() == self.depth {
            self.slots.push(vec![Value::Null; self.width]);
        } else if self.slots[self.depth].len() < self.width {
            self.slots[self.depth].resize(self.width, Value::Null);
        }
        self.depth += 1;
        self.depth - 1
    }

    fn take(&mut self, slot: usize, lane: u32) -> Value {
        std::mem::replace(&mut self.slots[slot][lane as usize], Value::Null)
    }

    /// Record a lane error and (by contract of the caller) drop the lane
    /// from the active set.
    fn fail(&mut self, lane: u32, e: Error) {
        self.errs.push((lane, e));
    }

    /// Park `lanes` (ascending, drained from `active` in order) at `pc`,
    /// remembering the stack depth their path carries to the target.
    /// Empty lane sets are parked too: when every lane has errored or
    /// jumped elsewhere, the recorded depth is the only thing that keeps
    /// the linear walk's depth counter in sync across branch boundaries.
    fn park(&mut self, pc: usize, depth: usize, lanes: Vec<u32>) {
        self.parked.push((pc, depth, lanes));
    }

    fn lane_vec(&mut self) -> Vec<u32> {
        self.free.pop().unwrap_or_default()
    }

    /// Merge every lane set parked at `pc` back into `active`. When no
    /// lane fell through to `pc` (e.g. the start of the next CASE
    /// branch, reachable only by jump), the linear walk's depth counter
    /// is stale — restore the parked path's depth. When lanes did fall
    /// through, structured compilation guarantees both paths agree.
    fn merge_at(&mut self, pc: usize) {
        while let Some(pos) = self.parked.iter().position(|(t, _, _)| *t == pc) {
            let (_, depth, mut lanes) = self.parked.swap_remove(pos);
            if self.active.is_empty() {
                self.depth = depth;
            } else {
                debug_assert_eq!(self.depth, depth, "merge paths must agree on depth");
            }
            self.merge_buf.clear();
            let (mut i, mut j) = (0, 0);
            while i < self.active.len() && j < lanes.len() {
                if self.active[i] < lanes[j] {
                    self.merge_buf.push(self.active[i]);
                    i += 1;
                } else {
                    self.merge_buf.push(lanes[j]);
                    j += 1;
                }
            }
            self.merge_buf.extend_from_slice(&self.active[i..]);
            self.merge_buf.extend_from_slice(&lanes[j..]);
            std::mem::swap(&mut self.active, &mut self.merge_buf);
            lanes.clear();
            self.free.push(lanes);
        }
    }

    /// Drop lanes listed in `lane_buf` (an in-order subset of `active`).
    fn drop_failed(&mut self) {
        if self.lane_buf.is_empty() {
            return;
        }
        let buf = std::mem::take(&mut self.lane_buf);
        let mut fi = 0;
        self.active.retain(|&l| {
            if fi < buf.len() && buf[fi] == l {
                fi += 1;
                false
            } else {
                true
            }
        });
        self.lane_buf = buf;
        self.lane_buf.clear();
    }
}

/// Outcome of a batch evaluation: the lowest-lane error, if any lane
/// failed. Results for failed lanes are NULL placeholders in `out`.
pub(crate) type BatchError = Option<(usize, Error)>;

impl CompiledExpr {
    /// Evaluate the program over every selected lane of `batch`,
    /// appending one result per lane (in selection order) to `out`.
    /// `narrowings` accumulates the number of conditional jumps that
    /// parked at least one lane.
    pub(crate) fn eval_batch(
        &self,
        batch: &ColumnBatch<'_>,
        ctx: &mut dyn QueryCtx,
        scratch: &mut VectorScratch,
        out: &mut Vec<Value>,
        narrowings: &mut u64,
    ) -> BatchError {
        scratch.reset(batch.len(), batch.sel());
        let mut pc = 0usize;
        while pc < self.ops.len() {
            scratch.merge_at(pc);
            match &self.ops[pc] {
                Op::Const(v) => {
                    let s = scratch.push_slot();
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i] as usize;
                        scratch.slots[s][lane] = v.clone();
                    }
                }
                Op::Col(idx) => {
                    let s = scratch.push_slot();
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i] as usize;
                        scratch.slots[s][lane] = batch.value(*idx, lane);
                    }
                }
                Op::Fail(e) => {
                    // Emitted in place of a value push: every active lane
                    // fails, but the conceptual stack still grows so
                    // parked lanes merge back at the right depth.
                    scratch.push_slot();
                    let lanes = std::mem::take(&mut scratch.active);
                    for &lane in &lanes {
                        scratch.fail(lane, (**e).clone());
                    }
                    scratch.active = lanes;
                    scratch.active.clear();
                }
                Op::HostVar(name) => {
                    let v = ctx.host_var(name);
                    let s = scratch.push_slot();
                    match v {
                        Ok(v) => {
                            for i in 0..scratch.active.len() {
                                let lane = scratch.active[i] as usize;
                                scratch.slots[s][lane] = v.clone();
                            }
                        }
                        Err(e) => {
                            let lanes = std::mem::take(&mut scratch.active);
                            for &lane in &lanes {
                                scratch.fail(lane, e.clone());
                            }
                            scratch.active = lanes;
                            scratch.active.clear();
                        }
                    }
                }
                Op::NextVal(_) => {
                    // Not vector-safe (sites route such programs to the
                    // row path); fail deterministically if reached.
                    scratch.push_slot();
                    let lanes = std::mem::take(&mut scratch.active);
                    for &lane in &lanes {
                        scratch.fail(lane, Error::unsupported("sequence draw on the vector path"));
                    }
                    scratch.active = lanes;
                    scratch.active.clear();
                }
                Op::Unary(op) => {
                    let s = scratch.depth - 1;
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let v = scratch.take(s, lane);
                        match eval_unary(*op, v) {
                            Ok(v) => scratch.slots[s][lane as usize] = v,
                            Err(e) => {
                                scratch.fail(lane, e);
                                scratch.lane_buf.push(lane);
                            }
                        }
                    }
                    scratch.drop_failed();
                }
                Op::Binary(op) => {
                    let (l_s, r_s) = (scratch.depth - 2, scratch.depth - 1);
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let r = scratch.take(r_s, lane);
                        let l = scratch.take(l_s, lane);
                        match eval_binary(*op, l, r) {
                            Ok(v) => scratch.slots[l_s][lane as usize] = v,
                            Err(e) => {
                                scratch.fail(lane, e);
                                scratch.lane_buf.push(lane);
                            }
                        }
                    }
                    scratch.depth -= 1;
                    scratch.drop_failed();
                }
                Op::And => {
                    let (l_s, r_s) = (scratch.depth - 2, scratch.depth - 1);
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let r = scratch.take(r_s, lane);
                        let l = scratch.take(l_s, lane);
                        scratch.slots[l_s][lane as usize] = logical_and(l, r);
                    }
                    scratch.depth -= 1;
                }
                Op::Or => {
                    let (l_s, r_s) = (scratch.depth - 2, scratch.depth - 1);
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let r = scratch.take(r_s, lane);
                        let l = scratch.take(l_s, lane);
                        scratch.slots[l_s][lane as usize] = logical_or(l, r);
                    }
                    scratch.depth -= 1;
                }
                Op::JumpIfFalse(target) => {
                    let s = scratch.depth - 1;
                    let mut jumped = scratch.lane_vec();
                    let slots = &scratch.slots[s];
                    scratch.active.retain(|&lane| {
                        if matches!(slots[lane as usize], Value::Bool(false)) {
                            jumped.push(lane);
                            false
                        } else {
                            true
                        }
                    });
                    if !jumped.is_empty() {
                        *narrowings += 1;
                    }
                    scratch.park(*target, scratch.depth, jumped);
                }
                Op::JumpIfTrue(target) => {
                    let s = scratch.depth - 1;
                    let mut jumped = scratch.lane_vec();
                    let slots = &scratch.slots[s];
                    scratch.active.retain(|&lane| {
                        if matches!(slots[lane as usize], Value::Bool(true)) {
                            jumped.push(lane);
                            false
                        } else {
                            true
                        }
                    });
                    if !jumped.is_empty() {
                        *narrowings += 1;
                    }
                    scratch.park(*target, scratch.depth, jumped);
                }
                Op::Jump(target) => {
                    let mut lanes = scratch.lane_vec();
                    lanes.append(&mut scratch.active);
                    scratch.park(*target, scratch.depth, lanes);
                }
                Op::PopJumpUnlessTrue(target) => {
                    let s = scratch.depth - 1;
                    let mut jumped = scratch.lane_vec();
                    let slots = &mut scratch.slots[s];
                    scratch.active.retain(|&lane| {
                        let v = std::mem::replace(&mut slots[lane as usize], Value::Null);
                        if v.is_true() {
                            true
                        } else {
                            jumped.push(lane);
                            false
                        }
                    });
                    scratch.depth -= 1;
                    if !jumped.is_empty() {
                        *narrowings += 1;
                    }
                    scratch.park(*target, scratch.depth, jumped);
                }
                Op::Between { negated } => {
                    let (v_s, lo_s, hi_s) =
                        (scratch.depth - 3, scratch.depth - 2, scratch.depth - 1);
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let high = scratch.take(hi_s, lane);
                        let low = scratch.take(lo_s, lane);
                        let v = scratch.take(v_s, lane);
                        let verdict = eval_binary(BinOp::GtEq, v.clone(), low).and_then(|ge| {
                            let le = eval_binary(BinOp::LtEq, v, high)?;
                            Ok(maybe_negate(logical_and(ge, le), *negated))
                        });
                        match verdict {
                            Ok(v) => scratch.slots[v_s][lane as usize] = v,
                            Err(e) => {
                                scratch.fail(lane, e);
                                scratch.lane_buf.push(lane);
                            }
                        }
                    }
                    scratch.depth -= 2;
                    scratch.drop_failed();
                }
                Op::IsNull { negated } => {
                    let s = scratch.depth - 1;
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let v = scratch.take(s, lane);
                        scratch.slots[s][lane as usize] = Value::Bool(v.is_null() != *negated);
                    }
                }
                Op::Like { negated } => {
                    let (v_s, p_s) = (scratch.depth - 2, scratch.depth - 1);
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let pattern = scratch.take(p_s, lane);
                        let v = scratch.take(v_s, lane);
                        let verdict = if v.is_null() || pattern.is_null() {
                            Ok(Value::Null)
                        } else {
                            v.as_str().and_then(|s| {
                                let hit = like_match(s, pattern.as_str()?);
                                Ok(maybe_negate(Value::Bool(hit), *negated))
                            })
                        };
                        match verdict {
                            Ok(v) => scratch.slots[v_s][lane as usize] = v,
                            Err(e) => {
                                scratch.fail(lane, e);
                                scratch.lane_buf.push(lane);
                            }
                        }
                    }
                    scratch.depth -= 1;
                    scratch.drop_failed();
                }
                Op::InStart { end } => {
                    // NULL test values already are the result: park them
                    // at `end`, where the stack holds just the result.
                    let s = scratch.depth - 1;
                    let mut jumped = scratch.lane_vec();
                    let slots = &scratch.slots[s];
                    scratch.active.retain(|&lane| {
                        if slots[lane as usize].is_null() {
                            jumped.push(lane);
                            false
                        } else {
                            true
                        }
                    });
                    if !jumped.is_empty() {
                        *narrowings += 1;
                    }
                    scratch.park(*end, scratch.depth, jumped);
                    let acc = scratch.push_slot();
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i] as usize;
                        scratch.slots[acc][lane] = Value::Bool(false);
                    }
                }
                Op::InFold => {
                    let (v_s, acc_s, item_s) =
                        (scratch.depth - 3, scratch.depth - 2, scratch.depth - 1);
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let item = scratch.take(item_s, lane);
                        let acc = scratch.take(acc_s, lane);
                        let hit = if item.is_null() {
                            Ok(Value::Null)
                        } else {
                            scratch.slots[v_s][lane as usize]
                                .sql_cmp(&item)
                                .map(|ord| Value::Bool(ord == Some(Ordering::Equal)))
                        };
                        match hit {
                            Ok(hit) => scratch.slots[acc_s][lane as usize] = logical_or(acc, hit),
                            Err(e) => {
                                scratch.fail(lane, e);
                                scratch.lane_buf.push(lane);
                            }
                        }
                    }
                    scratch.depth -= 1;
                    scratch.drop_failed();
                }
                Op::InFinish { negated } => {
                    let (v_s, acc_s) = (scratch.depth - 2, scratch.depth - 1);
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let acc = scratch.take(acc_s, lane);
                        let _v = scratch.take(v_s, lane);
                        scratch.slots[v_s][lane as usize] = match acc {
                            Value::Bool(true) => maybe_negate(Value::Bool(true), *negated),
                            Value::Null => Value::Null,
                            _ => maybe_negate(Value::Bool(false), *negated),
                        };
                    }
                    scratch.depth -= 1;
                }
                Op::Call { name, argc } => {
                    let base = scratch.depth - argc;
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let args: Vec<Value> = (base..scratch.depth)
                            .map(|s| scratch.take(s, lane))
                            .collect();
                        match eval_scalar_func(name, args) {
                            Ok(v) => scratch.slots[base][lane as usize] = v,
                            Err(e) => {
                                scratch.fail(lane, e);
                                scratch.lane_buf.push(lane);
                            }
                        }
                    }
                    scratch.depth = base + 1;
                    scratch.drop_failed();
                }
                Op::Cast(dtype) => {
                    let s = scratch.depth - 1;
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        let v = scratch.take(s, lane);
                        match cast_value(v, *dtype) {
                            Ok(v) => scratch.slots[s][lane as usize] = v,
                            Err(e) => {
                                scratch.fail(lane, e);
                                scratch.lane_buf.push(lane);
                            }
                        }
                    }
                    scratch.drop_failed();
                }
                Op::Fallback(expr) => {
                    // Not vector-safe; kept deterministic for defence in
                    // depth by interpreting per lane in ascending order.
                    let schema = self.fallback_schema.as_ref().expect("fallback schema");
                    let s = scratch.push_slot();
                    for i in 0..scratch.active.len() {
                        let lane = scratch.active[i];
                        match eval_expr(expr, schema, &batch.rows[lane as usize], ctx) {
                            Ok(v) => scratch.slots[s][lane as usize] = v,
                            Err(e) => {
                                scratch.fail(lane, e);
                                scratch.lane_buf.push(lane);
                            }
                        }
                    }
                    scratch.drop_failed();
                }
            }
            pc += 1;
        }
        scratch.merge_at(pc);
        debug_assert_eq!(scratch.depth, 1, "program must leave one result");
        // Emit results in selection order; errored lanes get a NULL
        // placeholder and the lowest one decides the batch error.
        let first_err = scratch
            .errs
            .iter()
            .min_by_key(|(lane, _)| *lane)
            .map(|(lane, e)| (*lane as usize, e.clone()));
        match &first_err {
            None => {
                for i in 0..batch.sel().len() {
                    let lane = batch.sel()[i];
                    out.push(scratch.take(0, lane));
                }
            }
            Some(_) => {
                for &lane in batch.sel() {
                    if scratch.errs.iter().any(|(l, _)| *l == lane) {
                        out.push(Value::Null);
                    } else {
                        out.push(scratch.take(0, lane));
                    }
                }
            }
        }
        first_err
    }
}

/// Whether an expression tree can run on the vector machine: no subquery
/// forms (interpreter fallback) and no sequence draws (whose per-row
/// interleaving the row path must keep). Mirrors
/// [`CompiledExpr::vector_safe`] without compiling.
pub fn expr_vector_safe(expr: &Expr) -> bool {
    let mut safe = true;
    expr.walk(&mut |e| match e {
        Expr::NextVal(_)
        | Expr::ScalarSubquery(_)
        | Expr::Exists { .. }
        | Expr::InSubquery { .. } => safe = false,
        _ => {}
    });
    safe
}

/// A planned vector site: the compiled programs for every expression the
/// site evaluates per row, plus the union of referenced columns.
pub(crate) struct VectorPlan {
    programs: Vec<CompiledExpr>,
    cols: Vec<usize>,
    /// Forced-vector mode with a program the machine cannot host: whole
    /// batches run the row loop instead (draw interleaving must hold
    /// across *all* the site's programs).
    fallback: bool,
    scratch: VectorScratch,
    stack: Vec<Value>,
}

impl VectorPlan {
    /// Decide whether this site runs vectorized under `ctx`'s exec mode,
    /// and compile its programs if so. `None` means: use the row path.
    pub(crate) fn plan(
        exprs: &[&Expr],
        schema: &Schema,
        ctx: &mut dyn QueryCtx,
    ) -> Option<VectorPlan> {
        match ctx.exec() {
            ExecMode::Row => return None,
            ExecMode::Vector => {}
            ExecMode::Auto => {
                // Auto defers to the sqlexec knob (no programs, no batch
                // path) and takes the vector path only when every
                // program is vector-safe — decided before compiling so
                // compile-work telemetry matches the row path.
                if !ctx.sqlexec().use_compiled() || !exprs.iter().all(|e| expr_vector_safe(e)) {
                    return None;
                }
            }
        }
        let programs: Vec<CompiledExpr> = exprs
            .iter()
            .map(|e| CompiledExpr::compile(e, schema, ctx))
            .collect();
        let fallback = !programs.iter().all(CompiledExpr::vector_safe);
        let mut cols: Vec<usize> = programs
            .iter()
            .flat_map(|p| p.ops.iter())
            .filter_map(|op| match op {
                Op::Col(idx) => Some(*idx),
                _ => None,
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        Some(VectorPlan {
            programs,
            cols,
            fallback,
            scratch: VectorScratch::default(),
            stack: Vec::new(),
        })
    }

    /// Evaluate every program over `rows` in batches, appending one value
    /// per row to `out[i]` for program `i`. Bumps the
    /// `relational.vector.*` counters; errors carry the exact value the
    /// row path would have produced first (row-major order).
    pub(crate) fn eval_columns(
        &mut self,
        rows: &[Row],
        ctx: &mut dyn QueryCtx,
        out: &mut [Vec<Value>],
    ) -> Result<()> {
        debug_assert_eq!(out.len(), self.programs.len());
        let VectorPlan {
            programs,
            cols,
            fallback,
            scratch,
            stack,
        } = self;
        for chunk in rows.chunks(VECTOR_BATCH_ROWS) {
            ctx.bump(ExecCounter::VectorBatches, 1);
            ctx.bump(ExecCounter::VectorRows, chunk.len() as u64);
            if *fallback {
                // Row loop per batch, preserving the row path's exact
                // per-row, per-program evaluation order.
                ctx.bump(ExecCounter::VectorFallbackBatches, 1);
                for row in chunk {
                    for (program, col) in programs.iter().zip(out.iter_mut()) {
                        col.push(program.eval_with(row, ctx, stack)?);
                    }
                }
                continue;
            }
            let batch = ColumnBatch::from_rows(chunk, cols);
            let mut narrowings = 0u64;
            // Programs run batch-major; the winning error is the one the
            // row-major path would hit first: lowest (lane, program).
            let mut best: Option<(usize, usize, Error)> = None;
            for (j, (program, col)) in programs.iter().zip(out.iter_mut()).enumerate() {
                if let Some((lane, e)) =
                    program.eval_batch(&batch, ctx, scratch, col, &mut narrowings)
                {
                    if best
                        .as_ref()
                        .map_or(true, |(bl, bj, _)| (lane, j) < (*bl, *bj))
                    {
                        best = Some((lane, j, e));
                    }
                }
            }
            if narrowings > 0 {
                ctx.bump(ExecCounter::VectorSelNarrowings, narrowings);
            }
            if let Some((_, _, e)) = best {
                return Err(e);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::eval::NoCtx;
    use crate::sql::parser::parse_expression;
    use crate::types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
            Column::new("c", DataType::Float),
        ])
    }

    fn rows() -> Vec<Row> {
        (0..10)
            .map(|i| {
                vec![
                    if i % 4 == 3 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    if i % 5 == 2 {
                        Value::Null
                    } else {
                        Value::Str(format!("s{i}"))
                    },
                    Value::Float(i as f64 / 2.0),
                ]
            })
            .collect()
    }

    /// The batch path must agree with the row path on every row — on the
    /// values, or on the first error in row order.
    fn agree(sql: &str, rows: &[Row]) {
        let expr = parse_expression(sql).unwrap();
        let s = schema();
        let program = CompiledExpr::compile(&expr, &s, &mut NoCtx);
        let row_wise: Vec<Result<Value>> =
            rows.iter().map(|r| program.eval(r, &mut NoCtx)).collect();
        let expected: Result<Vec<Value>> = row_wise.into_iter().collect();

        let batch = ColumnBatch::from_rows(rows, &collect_cols(&program));
        let mut out = Vec::new();
        let mut narrowings = 0;
        let err = program.eval_batch(
            &batch,
            &mut NoCtx,
            &mut VectorScratch::default(),
            &mut out,
            &mut narrowings,
        );
        match (expected, err) {
            (Ok(values), None) => assert_eq!(out, values, "{sql}"),
            (Err(want), Some((_, got))) => assert_eq!(got, want, "{sql}"),
            (want, got) => panic!("{sql}: row path {want:?} vs batch error {got:?}"),
        }
    }

    fn collect_cols(p: &CompiledExpr) -> Vec<usize> {
        let mut cols: Vec<usize> = p
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Col(i) => Some(*i),
                _ => None,
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    #[test]
    fn batch_agrees_with_row_path_on_the_scalar_grammar() {
        let rows = rows();
        for sql in [
            "a + 2 * 3",
            "a / 2",
            "-a + 10",
            "a >= 5 AND c < 3.0",
            "a > 100 OR b = 's3'",
            "NOT (a = 5)",
            "a BETWEEN 1 AND 6",
            "a NOT BETWEEN 6 AND 9",
            "b LIKE 's%'",
            "b NOT LIKE '_1%'",
            "b IS NOT NULL",
            "a IN (1, 3, 5)",
            "a NOT IN (1, 3)",
            "1 IN (2, a)",
            "UPPER(b)",
            "LENGTH(b) + a",
            "SUBSTR(b, 2, 1)",
            "CAST(a AS FLOAT) + c",
            "CASE WHEN a > 3 THEN 'big' WHEN a > 1 THEN 'mid' ELSE 'small' END",
            "CASE WHEN a > 9 THEN 'big' END",
            "COALESCE(NULL, b)",
            "a || b",
            "a AND 1",
            "a = 2 OR (a AND 1)",
            "a > 1 AND (a AND 1)",
        ] {
            agree(sql, &rows);
        }
    }

    #[test]
    fn errors_surface_at_the_first_failing_row() {
        let rows = rows();
        // Rows where a = 0 divide by zero; every earlier row is fine.
        agree("10 / (a - 4)", &rows);
        agree("1 / 0", &rows);
        agree("a + 1 / 0", &rows);
        // A FALSE guard must shield the failing side per lane.
        agree("a < 4 AND 10 / (a - 4) > 0", &rows);
        // A branch condition that errors EVERY lane leaves no lanes to
        // park; the depth counter must stay in sync across the dead
        // branch boundaries regardless.
        agree("CASE WHEN UPPER(1.5) THEN a ELSE a + 1 END", &rows);
        agree("CASE WHEN 1/0 THEN a WHEN a > 2 THEN 1 ELSE 2 END", &rows);
    }

    #[test]
    fn narrowing_is_counted_when_lanes_park() {
        let expr = parse_expression("a > 3 AND c > 1.0").unwrap();
        let s = schema();
        let program = CompiledExpr::compile(&expr, &s, &mut NoCtx);
        let rows = rows();
        let batch = ColumnBatch::from_rows(&rows, &collect_cols(&program));
        let mut out = Vec::new();
        let mut narrowings = 0;
        assert!(program
            .eval_batch(
                &batch,
                &mut NoCtx,
                &mut VectorScratch::default(),
                &mut out,
                &mut narrowings
            )
            .is_none());
        assert!(narrowings > 0, "a > 3 parks lanes 0..=3");
    }

    #[test]
    fn typed_extraction_keeps_nulls() {
        let rows = rows();
        let batch = ColumnBatch::from_rows(&rows, &[0, 1, 2]);
        assert_eq!(batch.value(0, 3), Value::Null);
        assert_eq!(batch.value(0, 4), Value::Int(4));
        assert_eq!(batch.value(1, 2), Value::Null);
        assert_eq!(batch.value(2, 5), Value::Float(2.5));
    }

    #[test]
    fn mixed_columns_fall_back_to_rowwise_reads() {
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Str("two".into())],
            vec![Value::Null],
        ];
        let batch = ColumnBatch::from_rows(&rows, &[0]);
        assert_eq!(batch.value(0, 0), Value::Int(1));
        assert_eq!(batch.value(0, 1), Value::Str("two".into()));
        assert_eq!(batch.value(0, 2), Value::Null);
    }

    #[test]
    fn selection_vector_restricts_evaluation() {
        let expr = parse_expression("10 / a").unwrap();
        let s = schema();
        let program = CompiledExpr::compile(&expr, &s, &mut NoCtx);
        let rows = vec![
            vec![Value::Int(0), Value::Null, Value::Null], // would error
            vec![Value::Int(2), Value::Null, Value::Null],
            vec![Value::Int(5), Value::Null, Value::Null],
        ];
        let mut batch = ColumnBatch::from_rows(&rows, &[0]);
        batch.set_sel(vec![1, 2]);
        let mut out = Vec::new();
        let mut narrowings = 0;
        assert!(program
            .eval_batch(
                &batch,
                &mut NoCtx,
                &mut VectorScratch::default(),
                &mut out,
                &mut narrowings
            )
            .is_none());
        assert_eq!(out, vec![Value::Float(5.0), Value::Float(2.0)]);
    }
}
