//! Expression evaluation.
//!
//! Two evaluators live here: [`eval_expr`] for row-at-a-time contexts
//! (WHERE, projections) and [`eval_grouped`] for per-group contexts
//! (grouped projections, HAVING), which computes aggregates over the
//! group's rows and resolves group-key expressions to their key values.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::expr::compile::{ExecCounter, ExecMode, SqlExec};
use crate::expr::{AggFunc, BinOp, Expr, UnaryOp};
use crate::index::HashIndex;
use crate::planner::PlannerMode;
use crate::resultset::ResultSet;
use crate::row::Row;
use crate::sql::ast::SelectStmt;
use crate::types::Schema;
use crate::value::Value;

/// Services an evaluator needs from the engine: subquery execution,
/// sequence draws and host-variable lookup.
pub trait QueryCtx {
    /// Run a (non-correlated) subquery and return its full result.
    fn run_subquery(&mut self, query: &SelectStmt) -> Result<ResultSet>;
    /// Draw the next value from a sequence.
    fn nextval(&mut self, sequence: &str) -> Result<i64>;
    /// Read a host variable.
    fn host_var(&self, name: &str) -> Result<Value>;
    /// Which execution strategy the hot operators should plan with.
    /// Engines with a user-facing knob override this; the default
    /// compiles (see [`SqlExec`]).
    fn sqlexec(&self) -> SqlExec {
        SqlExec::Auto
    }
    /// Which row-flow strategy the hot operators should use (row-at-a-time
    /// or column batches). Engines with a user-facing knob override this;
    /// the default lets each site choose (see [`ExecMode`]).
    fn exec(&self) -> ExecMode {
        ExecMode::Auto
    }
    /// Record executor work ([`ExecCounter`]). A no-op outside an
    /// engine, so plan-level helpers can report unconditionally.
    fn bump(&mut self, _counter: ExecCounter, _n: u64) {}
    /// Fetch (building lazily if allowed) a hash index over `cols` of the
    /// named base table, valid only at exactly `version`. The default —
    /// used by contexts without a catalog — offers no access paths, so
    /// operators fall back to scans.
    fn table_index(
        &mut self,
        _table: &str,
        _version: u64,
        _cols: &[usize],
    ) -> Option<Arc<HashIndex>> {
        None
    }
    /// True when a live hash index over `cols` of the named base table
    /// already exists at exactly `version` — a zero-cost access path the
    /// planner should prefer. Unlike [`QueryCtx::table_index`], peeking
    /// never builds anything.
    fn has_table_index(&self, _table: &str, _version: u64, _cols: &[usize]) -> bool {
        false
    }
    /// Which planner the join executor should use. Contexts without a
    /// catalog have no statistics, so the default is the naive fold.
    fn planner(&self) -> PlannerMode {
        PlannerMode::Naive
    }
    /// Estimated distinct count of one column of a base table, from the
    /// catalog statistics. `None` outside an engine (or off-range).
    fn column_distinct(&self, _table: &str, _col: usize) -> Option<u64> {
        None
    }
}

/// A context for expression evaluation outside any engine (literals only);
/// useful in tests and for constant folding.
pub struct NoCtx;

impl QueryCtx for NoCtx {
    fn run_subquery(&mut self, _query: &SelectStmt) -> Result<ResultSet> {
        Err(Error::unsupported("subquery outside engine context"))
    }
    fn nextval(&mut self, sequence: &str) -> Result<i64> {
        Err(Error::UnknownObject {
            kind: crate::error::ObjectKind::Sequence,
            name: sequence.to_string(),
        })
    }
    fn host_var(&self, name: &str) -> Result<Value> {
        Err(Error::UnboundVariable {
            name: name.to_string(),
        })
    }
}

/// Evaluate `expr` against one row.
pub fn eval_expr(expr: &Expr, schema: &Schema, row: &Row, ctx: &mut dyn QueryCtx) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => {
            let idx = schema.resolve(qualifier.as_deref(), name)?;
            Ok(row[idx].clone())
        }
        Expr::HostVar(name) => ctx.host_var(name),
        Expr::NextVal(seq) => Ok(Value::Int(ctx.nextval(seq)?)),
        Expr::Unary { op, expr } => {
            let v = eval_expr(expr, schema, row, ctx)?;
            eval_unary(*op, v)
        }
        Expr::Binary { left, op, right } => {
            // Short-circuit logical operators with 3VL.
            if *op == BinOp::And || *op == BinOp::Or {
                return eval_logical(*op, left, right, schema, row, ctx);
            }
            let l = eval_expr(left, schema, row, ctx)?;
            let r = eval_expr(right, schema, row, ctx)?;
            eval_binary(*op, l, r)
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval_expr(expr, schema, row, ctx)?;
            let lo = eval_expr(low, schema, row, ctx)?;
            let hi = eval_expr(high, schema, row, ctx)?;
            let ge = eval_binary(BinOp::GtEq, v.clone(), lo)?;
            let le = eval_binary(BinOp::LtEq, v, hi)?;
            let both = logical_and(ge, le);
            Ok(maybe_negate(both, *negated))
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval_expr(expr, schema, row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for e in list {
                let item = eval_expr(e, schema, row, ctx)?;
                if item.is_null() {
                    saw_null = true;
                    continue;
                }
                if matches!(v.sql_cmp(&item)?, Some(Ordering::Equal)) {
                    return Ok(maybe_negate(Value::Bool(true), *negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(maybe_negate(Value::Bool(false), *negated))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, schema, row, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Like {
            expr,
            negated,
            pattern,
        } => {
            let v = eval_expr(expr, schema, row, ctx)?;
            let p = eval_expr(pattern, schema, row, ctx)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let matched = like_match(v.as_str()?, p.as_str()?);
            Ok(maybe_negate(Value::Bool(matched), *negated))
        }
        Expr::Func { name, args } => {
            let vals: Result<Vec<Value>> = args
                .iter()
                .map(|a| eval_expr(a, schema, row, ctx))
                .collect();
            eval_scalar_func(name, vals?)
        }
        Expr::Aggregate { .. } => Err(Error::Aggregate {
            message: "aggregate used outside GROUP BY / HAVING context".into(),
        }),
        Expr::ScalarSubquery(q) => {
            let rs = ctx.run_subquery(q)?;
            scalar_from_resultset(&rs)
        }
        Expr::Exists { negated, query } => {
            let rs = ctx.run_subquery(query)?;
            Ok(Value::Bool((rs.rows().is_empty()) == *negated))
        }
        Expr::InSubquery {
            expr,
            negated,
            query,
        } => {
            let v = eval_expr(expr, schema, row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let rs = ctx.run_subquery(query)?;
            if rs.schema().len() != 1 {
                return Err(Error::ScalarSubquery {
                    message: format!("IN subquery returns {} columns", rs.schema().len()),
                });
            }
            let mut saw_null = false;
            for r in rs.rows() {
                if r[0].is_null() {
                    saw_null = true;
                    continue;
                }
                if matches!(v.sql_cmp(&r[0])?, Some(Ordering::Equal)) {
                    return Ok(maybe_negate(Value::Bool(true), *negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(maybe_negate(Value::Bool(false), *negated))
            }
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, val) in branches {
                if eval_expr(cond, schema, row, ctx)?.is_true() {
                    return eval_expr(val, schema, row, ctx);
                }
            }
            match else_expr {
                Some(e) => eval_expr(e, schema, row, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, dtype } => {
            let v = eval_expr(expr, schema, row, ctx)?;
            cast_value(v, *dtype)
        }
    }
}

/// SQL CAST semantics: NULL casts to NULL; numeric/text/date conversions
/// follow the usual lexical forms; impossible casts are errors.
pub fn cast_value(v: Value, dtype: crate::types::DataType) -> Result<Value> {
    use crate::types::DataType;
    if v.is_null() {
        return Ok(Value::Null);
    }
    Ok(match (dtype, &v) {
        (DataType::Int, Value::Int(_)) => v,
        (DataType::Int, Value::Float(f)) => Value::Int(*f as i64),
        (DataType::Int, Value::Bool(b)) => Value::Int(*b as i64),
        (DataType::Int, Value::Str(s)) => Value::Int(
            s.trim()
                .parse()
                .map_err(|_| Error::type_mismatch(format!("cannot cast '{s}' to INT")))?,
        ),
        (DataType::Float, Value::Float(_)) => v,
        (DataType::Float, Value::Int(i)) => Value::Float(*i as f64),
        (DataType::Float, Value::Str(s)) => Value::Float(
            s.trim()
                .parse()
                .map_err(|_| Error::type_mismatch(format!("cannot cast '{s}' to FLOAT")))?,
        ),
        (DataType::Str, other) => Value::Str(other.to_string()),
        (DataType::Bool, Value::Bool(_)) => v,
        (DataType::Bool, Value::Int(i)) => Value::Bool(*i != 0),
        (DataType::Bool, Value::Str(s)) => match s.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => {
                return Err(Error::type_mismatch(format!(
                    "cannot cast '{s}' to BOOLEAN"
                )))
            }
        },
        (DataType::Date, Value::Date(_)) => v,
        (DataType::Date, Value::Str(s)) => Value::Date(
            crate::value::Date::parse(s)
                .ok_or_else(|| Error::type_mismatch(format!("cannot cast '{s}' to DATE")))?,
        ),
        (want, have) => {
            return Err(Error::type_mismatch(format!(
                "cannot cast {} to {want}",
                have.type_name()
            )))
        }
    })
}

/// Evaluate `expr` in a grouped context.
///
/// `group_keys` are the GROUP BY expressions; `key_values` their values for
/// this group; `rows` the group's member rows. Aggregates are computed over
/// `rows`; any subexpression structurally equal to a group key resolves to
/// the key's value; remaining column references are errors (SQL92 rule).
pub fn eval_grouped(
    expr: &Expr,
    schema: &Schema,
    rows: &[&Row],
    group_keys: &[Expr],
    key_values: &[Value],
    ctx: &mut dyn QueryCtx,
) -> Result<Value> {
    // A group-key match takes priority over any other interpretation.
    for (k, v) in group_keys.iter().zip(key_values) {
        if expr == k {
            return Ok(v.clone());
        }
    }
    match expr {
        Expr::Aggregate {
            func,
            distinct,
            arg,
        } => eval_aggregate(*func, *distinct, arg.as_deref(), schema, rows, ctx),
        Expr::Literal(_) | Expr::HostVar(_) | Expr::NextVal(_) | Expr::ScalarSubquery(_) => {
            // Row-independent: evaluate against an empty row.
            let empty = Vec::new();
            eval_expr(expr, &Schema::default(), &empty, ctx)
        }
        Expr::Column { qualifier, name } => Err(Error::Aggregate {
            message: format!(
                "column '{}{}' must appear in GROUP BY or inside an aggregate",
                qualifier
                    .as_deref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default(),
                name
            ),
        }),
        Expr::Unary { op, expr } => {
            let v = eval_grouped(expr, schema, rows, group_keys, key_values, ctx)?;
            eval_unary(*op, v)
        }
        Expr::Binary { left, op, right } => {
            let l = eval_grouped(left, schema, rows, group_keys, key_values, ctx)?;
            let r = eval_grouped(right, schema, rows, group_keys, key_values, ctx)?;
            eval_binary(*op, l, r)
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval_grouped(expr, schema, rows, group_keys, key_values, ctx)?;
            let lo = eval_grouped(low, schema, rows, group_keys, key_values, ctx)?;
            let hi = eval_grouped(high, schema, rows, group_keys, key_values, ctx)?;
            let ge = eval_binary(BinOp::GtEq, v.clone(), lo)?;
            let le = eval_binary(BinOp::LtEq, v, hi)?;
            Ok(maybe_negate(logical_and(ge, le), *negated))
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval_grouped(expr, schema, rows, group_keys, key_values, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            for e in list {
                let item = eval_grouped(e, schema, rows, group_keys, key_values, ctx)?;
                if !item.is_null() && matches!(v.sql_cmp(&item)?, Some(Ordering::Equal)) {
                    return Ok(maybe_negate(Value::Bool(true), *negated));
                }
            }
            Ok(maybe_negate(Value::Bool(false), *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_grouped(expr, schema, rows, group_keys, key_values, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Func { name, args } => {
            let vals: Result<Vec<Value>> = args
                .iter()
                .map(|a| eval_grouped(a, schema, rows, group_keys, key_values, ctx))
                .collect();
            eval_scalar_func(name, vals?)
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, val) in branches {
                if eval_grouped(cond, schema, rows, group_keys, key_values, ctx)?.is_true() {
                    return eval_grouped(val, schema, rows, group_keys, key_values, ctx);
                }
            }
            match else_expr {
                Some(e) => eval_grouped(e, schema, rows, group_keys, key_values, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, dtype } => {
            let v = eval_grouped(expr, schema, rows, group_keys, key_values, ctx)?;
            cast_value(v, *dtype)
        }
        other => Err(Error::unsupported(format!(
            "expression not allowed in grouped context: {other}"
        ))),
    }
}

fn eval_aggregate(
    func: AggFunc,
    distinct: bool,
    arg: Option<&Expr>,
    schema: &Schema,
    rows: &[&Row],
    ctx: &mut dyn QueryCtx,
) -> Result<Value> {
    // COUNT(*) counts rows regardless of values.
    let Some(arg) = arg else {
        return Ok(Value::Int(rows.len() as i64));
    };
    if arg.contains_aggregate() {
        return Err(Error::Aggregate {
            message: "nested aggregates are not allowed".into(),
        });
    }
    let mut values = Vec::with_capacity(rows.len());
    for row in rows {
        let v = eval_expr(arg, schema, row, ctx)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen = HashSet::new();
        values.retain(|v| seen.insert(v.clone()));
    }
    match func {
        AggFunc::Count => Ok(Value::Int(values.len() as i64)),
        AggFunc::Sum => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            if values.iter().all(|v| matches!(v, Value::Int(_))) {
                let mut s = 0i64;
                for v in &values {
                    s += v.as_int()?;
                }
                Ok(Value::Int(s))
            } else {
                let mut s = 0f64;
                for v in &values {
                    s += v.as_float()?;
                }
                Ok(Value::Float(s))
            }
        }
        AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut s = 0f64;
            for v in &values {
                s += v.as_float()?;
            }
            Ok(Value::Float(s / values.len() as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.sql_cmp(&b)? {
                            Some(Ordering::Less) => func == AggFunc::Min,
                            Some(Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

fn eval_logical(
    op: BinOp,
    left: &Expr,
    right: &Expr,
    schema: &Schema,
    row: &Row,
    ctx: &mut dyn QueryCtx,
) -> Result<Value> {
    let l = eval_expr(left, schema, row, ctx)?;
    match (op, &l) {
        (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = eval_expr(right, schema, row, ctx)?;
    Ok(match op {
        BinOp::And => logical_and(l, r),
        BinOp::Or => logical_or(l, r),
        _ => unreachable!(),
    })
}

pub(crate) fn truth(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(Error::type_mismatch(format!(
            "expected BOOLEAN, got {}",
            other.type_name()
        ))),
    }
}

pub(crate) fn logical_and(l: Value, r: Value) -> Value {
    match (truth(&l), truth(&r)) {
        (Ok(Some(false)), _) | (_, Ok(Some(false))) => Value::Bool(false),
        (Ok(Some(true)), Ok(Some(true))) => Value::Bool(true),
        _ => Value::Null,
    }
}

pub(crate) fn logical_or(l: Value, r: Value) -> Value {
    match (truth(&l), truth(&r)) {
        (Ok(Some(true)), _) | (_, Ok(Some(true))) => Value::Bool(true),
        (Ok(Some(false)), Ok(Some(false))) => Value::Bool(false),
        _ => Value::Null,
    }
}

pub(crate) fn maybe_negate(v: Value, negated: bool) -> Value {
    if !negated {
        return v;
    }
    match v {
        Value::Bool(b) => Value::Bool(!b),
        other => other, // NULL stays NULL
    }
}

pub(crate) fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(Error::type_mismatch(format!(
                "cannot negate {}",
                other.type_name()
            ))),
        },
        UnaryOp::Not => match truth(&v)? {
            None => Ok(Value::Null),
            Some(b) => Ok(Value::Bool(!b)),
        },
    }
}

/// Evaluate a binary operator on two values (comparison operators apply
/// SQL NULL semantics; `/` always yields FLOAT to keep support/confidence
/// ratios exact in generated mining SQL).
pub fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And => Ok(logical_and(l, r)),
        Or => Ok(logical_or(l, r)),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let Some(ord) = l.sql_cmp(&r)? else {
                return Ok(Value::Null);
            };
            let b = match op {
                Eq => ord == Ordering::Equal,
                NotEq => ord != Ordering::Equal,
                Lt => ord == Ordering::Less,
                LtEq => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Str(format!("{l}{r}")))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (&l, &r) {
                (Value::Date(d), _) if op == Add => {
                    Ok(Value::Date(d.plus_days(r.as_int()? as i32)))
                }
                (Value::Date(d), Value::Int(n)) if op == Sub => {
                    Ok(Value::Date(d.plus_days(-(*n as i32))))
                }
                (Value::Date(a), Value::Date(b)) if op == Sub => Ok(Value::Int(
                    (a.days_since_epoch() - b.days_since_epoch()) as i64,
                )),
                (Value::Int(a), Value::Int(b)) => match op {
                    Add => Ok(Value::Int(a + b)),
                    Sub => Ok(Value::Int(a - b)),
                    Mul => Ok(Value::Int(a * b)),
                    Div => {
                        if *b == 0 {
                            Err(Error::Arithmetic {
                                message: "division by zero".into(),
                            })
                        } else {
                            Ok(Value::Float(*a as f64 / *b as f64))
                        }
                    }
                    Mod => {
                        if *b == 0 {
                            Err(Error::Arithmetic {
                                message: "modulo by zero".into(),
                            })
                        } else {
                            Ok(Value::Int(a % b))
                        }
                    }
                    _ => unreachable!(),
                },
                _ => {
                    let a = l.as_float()?;
                    let b = r.as_float()?;
                    match op {
                        Add => Ok(Value::Float(a + b)),
                        Sub => Ok(Value::Float(a - b)),
                        Mul => Ok(Value::Float(a * b)),
                        Div => {
                            if b == 0.0 {
                                Err(Error::Arithmetic {
                                    message: "division by zero".into(),
                                })
                            } else {
                                Ok(Value::Float(a / b))
                            }
                        }
                        Mod => Err(Error::type_mismatch("% requires integers")),
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}

pub(crate) fn eval_scalar_func(name: &str, args: Vec<Value>) -> Result<Value> {
    let upper = name.to_ascii_uppercase();
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(Error::Arity {
                expected: n,
                got: args.len(),
            })
        }
    };
    match upper.as_str() {
        "ABS" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(Error::type_mismatch(format!(
                    "ABS of {}",
                    other.type_name()
                ))),
            }
        }
        "UPPER" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                // ASCII-only, matching the lexer's identifier folding:
                // byte-for-byte stable regardless of Unicode tables.
                v => Ok(Value::Str(v.as_str()?.to_ascii_uppercase())),
            }
        }
        "LOWER" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Str(v.as_str()?.to_ascii_lowercase())),
            }
        }
        "LENGTH" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Int(v.as_str()?.chars().count() as i64)),
            }
        }
        "ROUND" => {
            if args.is_empty() || args.len() > 2 {
                return Err(Error::Arity {
                    expected: 2,
                    got: args.len(),
                });
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let x = args[0].as_float()?;
            let digits = if args.len() == 2 {
                args[1].as_int()?
            } else {
                0
            };
            let m = 10f64.powi(digits as i32);
            Ok(Value::Float((x * m).round() / m))
        }
        "FLOOR" => {
            arity(1)?;
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(args[0].as_float()?.floor() as i64))
        }
        "CEIL" | "CEILING" => {
            arity(1)?;
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(args[0].as_float()?.ceil() as i64))
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() < 2 || args.len() > 3 {
                return Err(Error::Arity {
                    expected: 3,
                    got: args.len(),
                });
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let s: Vec<char> = args[0].as_str()?.chars().collect();
            // 1-based start, SQL style.
            let start = (args[1].as_int()?.max(1) - 1) as usize;
            let len = if args.len() == 3 {
                args[2].as_int()?.max(0) as usize
            } else {
                s.len()
            };
            Ok(Value::Str(s.into_iter().skip(start).take(len).collect()))
        }
        "TRIM" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Str(v.as_str()?.trim().to_string())),
            }
        }
        "CONCAT" => {
            let mut out = String::new();
            for a in &args {
                if !a.is_null() {
                    out.push_str(&a.to_string());
                }
            }
            Ok(Value::Str(out))
        }
        "REPLACE" => {
            arity(3)?;
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Str(
                args[0]
                    .as_str()?
                    .replace(args[1].as_str()?, args[2].as_str()?),
            ))
        }
        "COALESCE" => {
            for a in args {
                if !a.is_null() {
                    return Ok(a);
                }
            }
            Ok(Value::Null)
        }
        other => Err(Error::unsupported(format!("unknown function {other}"))),
    }
}

/// SQL LIKE with `%` (any run) and `_` (any single char).
pub(crate) fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Greedy-with-backtracking.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

fn scalar_from_resultset(rs: &ResultSet) -> Result<Value> {
    if rs.schema().len() != 1 {
        return Err(Error::ScalarSubquery {
            message: format!("expected 1 column, got {}", rs.schema().len()),
        });
    }
    match rs.rows().len() {
        0 => Ok(Value::Null),
        1 => Ok(rs.rows()[0][0].clone()),
        n => Err(Error::ScalarSubquery {
            message: format!("expected at most 1 row, got {n}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_expression;
    use crate::types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
            Column::new("c", DataType::Float),
        ])
    }

    fn ev(sql: &str, row: Row) -> Result<Value> {
        let e = parse_expression(sql).unwrap();
        eval_expr(&e, &schema(), &row, &mut NoCtx)
    }

    fn row_abc() -> Row {
        vec![Value::Int(5), Value::Str("hello".into()), Value::Float(2.5)]
    }

    #[test]
    fn upper_lower_fold_ascii_only() {
        // Pinned: UPPER/LOWER fold ASCII only, matching the lexer's
        // identifier folding — non-ASCII letters pass through untouched,
        // so compiled and interpreted modes can never diverge on
        // Unicode case tables.
        assert_eq!(
            ev("LOWER('ABCÄ')", row_abc()),
            Ok(Value::Str("abcÄ".into()))
        );
        assert_eq!(
            ev("UPPER('abcä')", row_abc()),
            Ok(Value::Str("ABCä".into()))
        );
        assert_eq!(ev("LOWER(NULL)", row_abc()), Ok(Value::Null));
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(ev("a + 1", row_abc()).unwrap(), Value::Int(6));
        assert_eq!(ev("a * 2 >= 10", row_abc()).unwrap(), Value::Bool(true));
        assert_eq!(ev("a / 2", row_abc()).unwrap(), Value::Float(2.5));
        assert_eq!(ev("a % 2", row_abc()).unwrap(), Value::Int(1));
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(matches!(
            ev("a / 0", row_abc()),
            Err(Error::Arithmetic { .. })
        ));
    }

    #[test]
    fn null_propagation() {
        let row = vec![Value::Null, Value::Str("x".into()), Value::Float(0.0)];
        assert_eq!(ev("a + 1", row.clone()).unwrap(), Value::Null);
        assert_eq!(ev("a = 1", row.clone()).unwrap(), Value::Null);
        assert_eq!(ev("a IS NULL", row).unwrap(), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        let row = vec![Value::Null, Value::Str("x".into()), Value::Float(0.0)];
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE.
        assert_eq!(
            ev("a = 1 AND FALSE", row.clone()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(ev("a = 1 OR TRUE", row.clone()).unwrap(), Value::Bool(true));
        assert_eq!(ev("a = 1 AND TRUE", row).unwrap(), Value::Null);
    }

    #[test]
    fn between_inclusive() {
        assert_eq!(
            ev("a BETWEEN 5 AND 7", row_abc()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            ev("a BETWEEN 6 AND 7", row_abc()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            ev("a NOT BETWEEN 6 AND 7", row_abc()).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn in_list() {
        assert_eq!(ev("a IN (1, 5, 9)", row_abc()).unwrap(), Value::Bool(true));
        assert_eq!(ev("a NOT IN (1, 9)", row_abc()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert_eq!(ev("b LIKE 'he%'", row_abc()).unwrap(), Value::Bool(true));
        assert_eq!(ev("b LIKE 'h_llo'", row_abc()).unwrap(), Value::Bool(true));
        assert_eq!(ev("b LIKE 'x%'", row_abc()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(ev("ABS(-3)", row_abc()).unwrap(), Value::Int(3));
        assert_eq!(
            ev("UPPER(b)", row_abc()).unwrap(),
            Value::Str("HELLO".into())
        );
        assert_eq!(ev("LENGTH(b)", row_abc()).unwrap(), Value::Int(5));
        assert_eq!(ev("ROUND(c)", row_abc()).unwrap(), Value::Float(3.0));
        assert_eq!(ev("COALESCE(NULL, 7)", row_abc()).unwrap(), Value::Int(7));
    }

    #[test]
    fn date_arithmetic() {
        use crate::value::Date;
        let s = Schema::new(vec![Column::new("d", DataType::Date)]);
        let row = vec![Value::Date(Date::from_ymd(1995, 12, 17).unwrap())];
        let e = parse_expression("d + 1").unwrap();
        let v = eval_expr(&e, &s, &row, &mut NoCtx).unwrap();
        assert_eq!(v, Value::Date(Date::from_ymd(1995, 12, 18).unwrap()));
        let e2 = parse_expression("d - d").unwrap();
        assert_eq!(eval_expr(&e2, &s, &row, &mut NoCtx).unwrap(), Value::Int(0));
    }

    #[test]
    fn aggregate_outside_group_errors() {
        assert!(matches!(
            ev("COUNT(*)", row_abc()),
            Err(Error::Aggregate { .. })
        ));
    }

    #[test]
    fn grouped_aggregates() {
        let s = schema();
        let r1 = vec![Value::Int(1), Value::Str("x".into()), Value::Float(1.0)];
        let r2 = vec![Value::Int(2), Value::Str("x".into()), Value::Float(2.0)];
        let r3 = vec![Value::Int(2), Value::Null, Value::Float(3.0)];
        let rows: Vec<&Row> = vec![&r1, &r2, &r3];
        let keys = vec![parse_expression("b").unwrap()];
        let kv = vec![Value::Str("x".into())];
        let check = |sql: &str, expect: Value| {
            let e = parse_expression(sql).unwrap();
            assert_eq!(
                eval_grouped(&e, &s, &rows, &keys, &kv, &mut NoCtx).unwrap(),
                expect,
                "{sql}"
            );
        };
        check("COUNT(*)", Value::Int(3));
        check("COUNT(b)", Value::Int(2)); // NULL not counted
        check("COUNT(DISTINCT a)", Value::Int(2));
        check("SUM(a)", Value::Int(5));
        check("AVG(c)", Value::Float(2.0));
        check("MIN(a)", Value::Int(1));
        check("MAX(c)", Value::Float(3.0));
        check("b", Value::Str("x".into())); // group key resolves
        check("COUNT(*) > 2", Value::Bool(true));
    }

    #[test]
    fn grouped_bare_column_errors() {
        let s = schema();
        let r1 = vec![Value::Int(1), Value::Str("x".into()), Value::Float(1.0)];
        let rows: Vec<&Row> = vec![&r1];
        let e = parse_expression("a").unwrap();
        assert!(eval_grouped(&e, &s, &rows, &[], &[], &mut NoCtx).is_err());
    }

    #[test]
    fn sum_empty_group_is_null_count_zero() {
        let s = schema();
        let rows: Vec<&Row> = vec![];
        let sum = parse_expression("SUM(a)").unwrap();
        let cnt = parse_expression("COUNT(a)").unwrap();
        assert_eq!(
            eval_grouped(&sum, &s, &rows, &[], &[], &mut NoCtx).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_grouped(&cnt, &s, &rows, &[], &[], &mut NoCtx).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn case_expression() {
        assert_eq!(
            ev("CASE WHEN a > 3 THEN 'big' ELSE 'small' END", row_abc()).unwrap(),
            Value::Str("big".into())
        );
    }
}
