//! FROM-clause materialisation and join planning.
//!
//! The engine plans the comma-join FROM list by splitting the WHERE clause
//! into conjuncts, pushing single-table predicates down to scans, and
//! turning `a.x = b.y` conjuncts into hash joins. Everything left over is
//! applied as a residual filter by the caller. This is exactly enough for
//! the preprocessing queries of the paper's Appendix A (multi-way
//! equi-joins between `Source`, `ValidGroups`, `Bset`, ...) to run in
//! linear-ish time instead of as nested loops.
//!
//! Two planners share this machinery. The naive planner folds the FROM
//! list left-to-right with the next factor always the hash-join build
//! side. The cost-based planner ([`PlannerMode::Cost`]) orders joins
//! greedily by estimated intermediate cardinality — `|L|·|R| / ndv(key)`,
//! with distinct counts from the catalog statistics — and picks the build
//! side by index availability and actual input size. Instead of
//! materialising every intermediate, it carries tuples of factor row
//! indices and materialises once at the end, in the canonical
//! lexicographic order the naive fold would produce, so both planners
//! return bit-identical relations.

use std::collections::HashMap;

use crate::error::Result;
use crate::expr::compile::{ExecCounter, SiteEval};
use crate::expr::eval::QueryCtx;
use crate::expr::vector::VectorPlan;
use crate::expr::{BinOp, Expr};
use crate::planner::PlannerMode;
use crate::row::Row;
use crate::types::Schema;
use crate::value::Value;

/// Provenance of a relation that is a verbatim snapshot of a base table:
/// same rows, same positions, taken at exactly this version. Operators
/// holding such a relation may answer from a table index instead of
/// rebuilding hash structures over the rows.
#[derive(Debug, Clone)]
pub struct BaseRef {
    /// Catalog name of the source table.
    pub table: String,
    /// The table version at materialisation time.
    pub version: u64,
}

/// A fully materialised intermediate relation.
#[derive(Debug, Clone)]
pub struct Relation {
    pub schema: Schema,
    pub rows: Vec<Row>,
    /// Set only while `rows` is an untouched base-table snapshot; any
    /// filter or join clears it (row positions stop matching the table).
    pub base: Option<BaseRef>,
}

impl Relation {
    /// A relation with no columns and a single empty row — the input for
    /// FROM-less SELECTs (`SELECT 1`).
    pub fn unit() -> Relation {
        Relation {
            schema: Schema::default(),
            rows: vec![Vec::new()],
            base: None,
        }
    }

    /// Resolve key expressions that are all plain column references to
    /// their positions in this relation's schema. Any non-column key (or
    /// unresolvable name) yields `None` — those keys can't be served by a
    /// positional table index.
    pub fn key_positions(&self, keys: &[&Expr]) -> Option<Vec<usize>> {
        keys.iter()
            .map(|k| match k {
                Expr::Column { qualifier, name } => {
                    self.schema.resolve(qualifier.as_deref(), name).ok()
                }
                _ => None,
            })
            .collect()
    }
}

/// Split an expression into its top-level AND conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn rec<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } = e
        {
            rec(left, out);
            rec(right, out);
        } else {
            out.push(e);
        }
    }
    rec(expr, &mut out);
    out
}

/// True when every column reference in `expr` resolves against `schema`
/// and the expression is safe to push below a join (no sequence draws,
/// whose side effects must happen once per output row).
pub fn resolves_in(expr: &Expr, schema: &Schema) -> bool {
    let mut ok = true;
    expr.walk(&mut |e| match e {
        Expr::Column { qualifier, name } if schema.resolve(qualifier.as_deref(), name).is_err() => {
            ok = false;
        }
        Expr::NextVal(_) => ok = false,
        _ => {}
    });
    ok
}

/// An equi-join conjunct `left_col = right_col` with sides resolved to two
/// disjoint schemas.
struct EquiPred<'a> {
    left: &'a Expr,
    right: &'a Expr,
}

fn as_equi<'a>(expr: &'a Expr) -> Option<EquiPred<'a>> {
    if let Expr::Binary {
        left,
        op: BinOp::Eq,
        right,
    } = expr
    {
        if matches!(**left, Expr::Column { .. }) && matches!(**right, Expr::Column { .. }) {
            return Some(EquiPred {
                left: left.as_ref(),
                right: right.as_ref(),
            });
        }
    }
    None
}

/// Filter `rel` in place by `pred` — the predicate is planned once
/// (compiled under the context's [`SqlExec`](crate::SqlExec) mode) and
/// run per row with a reused stack.
pub fn filter_relation(rel: &mut Relation, pred: &Expr, ctx: &mut dyn QueryCtx) -> Result<()> {
    rel.base = None; // row positions may shift; drop table provenance
    let schema = rel.schema.clone();
    let before = rel.rows.len();
    // Vector path: evaluate the predicate batch-at-a-time into a verdict
    // column, then compact the rows in one retain pass.
    if let Some(mut plan) = VectorPlan::plan(&[pred], &schema, ctx) {
        let mut verdicts = [Vec::with_capacity(before)];
        plan.eval_columns(&rel.rows, ctx, &mut verdicts)?;
        let keep = &verdicts[0];
        let mut i = 0;
        rel.rows.retain(|_| {
            i += 1;
            keep[i - 1].is_true()
        });
        ctx.bump(ExecCounter::RowsFiltered, (before - rel.rows.len()) as u64);
        return Ok(());
    }
    let eval = SiteEval::plan(pred, &schema, ctx);
    let mut stack = Vec::new();
    let mut err = None;
    rel.rows.retain(|row| {
        if err.is_some() {
            return false;
        }
        match eval.eval(&schema, row, ctx, &mut stack) {
            Ok(v) => v.is_true(),
            Err(e) => {
                err = Some(e);
                false
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => {
            ctx.bump(ExecCounter::RowsFiltered, (before - rel.rows.len()) as u64);
            Ok(())
        }
    }
}

/// Evaluate join-key expressions over `rows` into one value column per
/// key — batch-at-a-time on the vector path, with per-row programs
/// otherwise. Join keys are plain column references (see [`as_equi`]), so
/// they cannot error or draw sequences and both paths produce identical
/// columns; the build/probe loops then read the columns by row index,
/// which also turns repeated per-tuple key evaluation into a gather.
fn key_columns(
    keys: &[&Expr],
    schema: &Schema,
    rows: &[Row],
    ctx: &mut dyn QueryCtx,
) -> Result<Vec<Vec<Value>>> {
    let mut cols: Vec<Vec<Value>> = (0..keys.len())
        .map(|_| Vec::with_capacity(rows.len()))
        .collect();
    if let Some(mut plan) = VectorPlan::plan(keys, schema, ctx) {
        plan.eval_columns(rows, ctx, &mut cols)?;
        return Ok(cols);
    }
    let evals: Vec<SiteEval> = keys
        .iter()
        .map(|k| SiteEval::plan(k, schema, ctx))
        .collect();
    let mut stack = Vec::new();
    for row in rows {
        for (e, col) in evals.iter().zip(cols.iter_mut()) {
            col.push(e.eval(schema, row, ctx, &mut stack)?);
        }
    }
    Ok(cols)
}

/// Assemble the key for row `i` from per-key columns into `key`. Returns
/// `false` (key unusable) when any part is NULL — SQL equality semantics.
fn gather_key(cols: &[Vec<Value>], i: usize, key: &mut Vec<Value>) -> bool {
    key.clear();
    for c in cols {
        if c[i].is_null() {
            return false;
        }
        key.push(c[i].clone());
    }
    true
}

/// One value column per connecting predicate of a cost-join step, each
/// evaluated over its own factor's rows (the tuple loops then gather by
/// the tuple's row index into that factor).
fn other_key_columns(
    other: &[(usize, &Expr)],
    factors: &[Relation],
    ctx: &mut dyn QueryCtx,
) -> Result<Vec<Vec<Value>>> {
    let mut ocols = Vec::with_capacity(other.len());
    for (g, e) in other {
        let mut c = key_columns(&[*e], &factors[*g].schema, &factors[*g].rows, ctx)?;
        ocols.push(c.pop().expect("one key column"));
    }
    Ok(ocols)
}

/// Assemble the key for row-index tuple `t` from per-predicate columns.
/// `false` when any part is NULL.
fn gather_tuple_key(
    ocols: &[Vec<Value>],
    other: &[(usize, &Expr)],
    t: &[u32],
    key: &mut Vec<Value>,
) -> bool {
    key.clear();
    for (c, (g, _)) in ocols.iter().zip(other) {
        let v = &c[t[*g] as usize];
        if v.is_null() {
            return false;
        }
        key.push(v.clone());
    }
    true
}

/// Join the factors of a FROM list, consuming the usable conjuncts of the
/// WHERE clause. Returns the joined relation and the conjuncts that were
/// *not* consumed (the caller must apply them afterwards).
pub fn join_factors<'a>(
    mut factors: Vec<Relation>,
    where_conjuncts: Vec<&'a Expr>,
    ctx: &mut dyn QueryCtx,
) -> Result<(Relation, Vec<&'a Expr>)> {
    let cost = ctx.planner() == PlannerMode::Cost;
    if cost {
        ctx.bump(ExecCounter::PlannerPlans, 1);
    }
    // Push single-factor predicates down to their scans.
    let mut remaining: Vec<&Expr> = Vec::new();
    'conj: for c in where_conjuncts {
        for factor in factors.iter_mut() {
            if resolves_in(c, &factor.schema) {
                filter_relation(factor, c, ctx)?;
                if cost {
                    ctx.bump(ExecCounter::PlannerPushedFilters, 1);
                }
                continue 'conj;
            }
        }
        remaining.push(c);
    }

    // Collect equi-join candidates from what's left.
    let mut equis: Vec<(&Expr, EquiPred)> = Vec::new();
    let mut residual: Vec<&Expr> = Vec::new();
    for c in remaining {
        match as_equi(c) {
            Some(e) => equis.push((c, e)),
            None => residual.push(c),
        }
    }

    if cost && factors.len() >= 2 {
        return cost_join(factors, equis, residual, ctx);
    }

    let mut factors: std::collections::VecDeque<Relation> = factors.into();
    let mut current = match factors.pop_front() {
        Some(f) => f,
        None => Relation::unit(),
    };

    while let Some(next) = factors.pop_front() {
        // Find every equi predicate linking `current` and `next`.
        let mut build_keys: Vec<&Expr> = Vec::new();
        let mut probe_keys: Vec<&Expr> = Vec::new();
        let mut used = vec![false; equis.len()];
        for (i, (_, e)) in equis.iter().enumerate() {
            let l_cur = resolves_in(e.left, &current.schema);
            let r_nxt = resolves_in(e.right, &next.schema);
            let l_nxt = resolves_in(e.left, &next.schema);
            let r_cur = resolves_in(e.right, &current.schema);
            if l_cur && r_nxt && !l_nxt && !r_cur {
                probe_keys.push(e.left);
                build_keys.push(e.right);
                used[i] = true;
            } else if l_nxt && r_cur && !l_cur && !r_nxt {
                probe_keys.push(e.right);
                build_keys.push(e.left);
                used[i] = true;
            }
        }
        // Drop consumed predicates; keep the rest for later factors or
        // the residual pass.
        let mut kept = Vec::new();
        for (i, pair) in equis.into_iter().enumerate() {
            if !used[i] {
                kept.push(pair);
            }
        }
        equis = kept;

        current = if build_keys.is_empty() {
            cross_join(&current, &next, ctx)
        } else {
            hash_join(&current, &next, &probe_keys, &build_keys, ctx)?
        };
    }

    // Unconsumed equi predicates (self-comparisons, three-way references)
    // fall back to residual evaluation.
    for (orig, _) in equis {
        residual.push(orig);
    }
    Ok((current, residual))
}

/// The factor `expr` resolves in, when that factor is unique. Ambiguous
/// and unresolvable expressions yield `None` — exactly the predicates the
/// naive fold also leaves to residual evaluation.
fn unique_factor(expr: &Expr, factors: &[Relation]) -> Option<usize> {
    let mut found = None;
    for (i, f) in factors.iter().enumerate() {
        if resolves_in(expr, &f.schema) {
            if found.is_some() {
                return None;
            }
            found = Some(i);
        }
    }
    found
}

/// An equi predicate with both sides resolved to two distinct factors.
struct FactorPred<'a> {
    lf: usize,
    rf: usize,
    left: &'a Expr,
    right: &'a Expr,
}

impl<'a> FactorPred<'a> {
    /// The key expression living in factor `f`.
    fn side(&self, f: usize) -> &'a Expr {
        if self.lf == f {
            self.left
        } else {
            self.right
        }
    }

    /// The opposite side: `(factor, key expression)`.
    fn other(&self, f: usize) -> (usize, &'a Expr) {
        if self.lf == f {
            (self.rf, self.right)
        } else {
            (self.lf, self.left)
        }
    }
}

/// Cost-based join of a multi-factor FROM list.
///
/// Joins are ordered greedily: start from the smallest factor, then
/// repeatedly fold in the factor with the smallest estimated output
/// (`|acc|·|next| / ndv(next key)`, distinct counts from the catalog
/// statistics; a disconnected factor estimates as a cross product). The
/// accumulator is a vector of *row-index tuples*, not materialised rows,
/// so wide intermediates cost 4 bytes per factor per row. The build side
/// of each hash step goes to an existing index if one side has one, else
/// to the smaller input. At the end the tuples are sorted into canonical
/// factor order — the exact row order the naive left-to-right fold
/// produces — and materialised once.
fn cost_join<'a>(
    factors: Vec<Relation>,
    equis: Vec<(&'a Expr, EquiPred<'a>)>,
    mut residual: Vec<&'a Expr>,
    ctx: &mut dyn QueryCtx,
) -> Result<(Relation, Vec<&'a Expr>)> {
    let n = factors.len();
    let mut preds: Vec<FactorPred> = Vec::new();
    for (orig, e) in equis {
        match (
            unique_factor(e.left, &factors),
            unique_factor(e.right, &factors),
        ) {
            (Some(lf), Some(rf)) if lf != rf => preds.push(FactorPred {
                lf,
                rf,
                left: e.left,
                right: e.right,
            }),
            _ => residual.push(orig),
        }
    }

    let mut joined = vec![false; n];
    let mut pred_used = vec![false; preds.len()];
    let start = (0..n)
        .min_by_key(|&i| (factors[i].rows.len(), i))
        .expect("cost_join requires factors");
    joined[start] = true;
    let mut order = vec![start];
    // Each tuple holds one row index per factor; unjoined slots are 0 and
    // masked by `joined`.
    let mut tuples: Vec<Vec<u32>> = (0..factors[start].rows.len() as u32)
        .map(|i| {
            let mut t = vec![0u32; n];
            t[start] = i;
            t
        })
        .collect();
    // While `tuples` is still the identity over the start factor, its
    // untouched base snapshot (if any) can serve as an index build side.
    let mut tuples_base: Option<usize> = Some(start);

    while order.len() < n {
        // Pick the unjoined factor with the smallest estimated output.
        let mut best: Option<(u64, usize)> = None;
        for (f, factor) in factors.iter().enumerate() {
            if joined[f] {
                continue;
            }
            let fr = factor.rows.len() as u64;
            let cross = (tuples.len() as u64).saturating_mul(fr);
            let mut connected = false;
            let mut ndv = 1u64;
            for (pi, p) in preds.iter().enumerate() {
                if pred_used[pi] || !((joined[p.lf] && p.rf == f) || (joined[p.rf] && p.lf == f)) {
                    continue;
                }
                connected = true;
                let key = p.side(f);
                let d = match (&factor.base, factor.key_positions(&[key])) {
                    (Some(b), Some(cols)) => {
                        ctx.column_distinct(&b.table, cols[0]).unwrap_or(fr.max(1))
                    }
                    _ => fr.max(1),
                };
                ndv = ndv.max(d.max(1));
            }
            let est = if connected { cross / ndv } else { cross };
            let better = match best {
                None => true,
                Some(b) => (est, f) < b,
            };
            if better {
                best = Some((est, f));
            }
        }
        let (est, f) = best.expect("an unjoined factor exists");

        let conn: Vec<usize> = (0..preds.len())
            .filter(|&pi| {
                !pred_used[pi]
                    && ((joined[preds[pi].lf] && preds[pi].rf == f)
                        || (joined[preds[pi].rf] && preds[pi].lf == f))
            })
            .collect();
        for &pi in &conn {
            pred_used[pi] = true;
        }

        let out: Vec<Vec<u32>> = if conn.is_empty() {
            // No usable predicate: cross product.
            let fr = factors[f].rows.len();
            let mut out = Vec::with_capacity(tuples.len().saturating_mul(fr));
            for t in &tuples {
                for i in 0..fr {
                    let mut t2 = t.clone();
                    t2[f] = i as u32;
                    out.push(t2);
                }
            }
            out
        } else {
            let f_keys: Vec<&Expr> = conn.iter().map(|&pi| preds[pi].side(f)).collect();
            let other: Vec<(usize, &Expr)> = conn.iter().map(|&pi| preds[pi].other(f)).collect();

            // Access paths: either side whose rows are an untouched base
            // snapshot with plain-column keys can be served by the
            // engine's persistent index registry.
            let f_cols = factors[f].key_positions(&f_keys);
            let t_cols = match tuples_base {
                Some(s) if factors[s].base.is_some() => {
                    let other_exprs: Vec<&Expr> = other.iter().map(|(_, e)| *e).collect();
                    factors[s].key_positions(&other_exprs)
                }
                _ => None,
            };
            let f_has_ix = matches!((&factors[f].base, &f_cols),
                (Some(b), Some(cols)) if ctx.has_table_index(&b.table, b.version, cols));
            let t_has_ix = matches!((tuples_base.and_then(|s| factors[s].base.as_ref()), &t_cols),
                (Some(b), Some(cols)) if ctx.has_table_index(&b.table, b.version, cols));
            // Build side: a live index wins outright; otherwise the
            // smaller input builds, ties going to the incoming factor.
            let build_on_f = if f_has_ix != t_has_ix {
                f_has_ix
            } else if factors[f].rows.len() != tuples.len() {
                factors[f].rows.len() < tuples.len()
            } else {
                true
            };

            let mut out: Vec<Vec<u32>> = Vec::new();
            let mut key: Vec<Value> = Vec::with_capacity(conn.len());
            if build_on_f {
                let index = match (&factors[f].base, &f_cols) {
                    (Some(b), Some(cols)) => ctx.table_index(&b.table, b.version, cols),
                    _ => None,
                };
                let mut fresh: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                if index.is_none() {
                    fresh.reserve(factors[f].rows.len());
                    let fcols = key_columns(&f_keys, &factors[f].schema, &factors[f].rows, ctx)?;
                    for i in 0..factors[f].rows.len() {
                        if gather_key(&fcols, i, &mut key) {
                            fresh.entry(std::mem::take(&mut key)).or_default().push(i);
                        }
                    }
                }
                let map: &HashMap<Vec<Value>, Vec<usize>> = match &index {
                    Some(ix) => &ix.map,
                    None => &fresh,
                };
                let ocols = other_key_columns(&other, &factors, ctx)?;
                for t in &tuples {
                    if !gather_tuple_key(&ocols, &other, t, &mut key) {
                        continue;
                    }
                    if let Some(matches) = map.get(&key) {
                        for &bi in matches {
                            let mut t2 = t.clone();
                            t2[f] = bi as u32;
                            out.push(t2);
                        }
                    }
                }
            } else {
                // Build over the accumulated tuples, probe the factor.
                let index = match (tuples_base.and_then(|s| factors[s].base.as_ref()), &t_cols) {
                    (Some(b), Some(cols)) => ctx.table_index(&b.table, b.version, cols),
                    _ => None,
                };
                let mut fresh: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                if index.is_none() {
                    fresh.reserve(tuples.len());
                    let ocols = other_key_columns(&other, &factors, ctx)?;
                    for (ti, t) in tuples.iter().enumerate() {
                        if gather_tuple_key(&ocols, &other, t, &mut key) {
                            fresh.entry(std::mem::take(&mut key)).or_default().push(ti);
                        }
                    }
                }
                let map: &HashMap<Vec<Value>, Vec<usize>> = match &index {
                    Some(ix) => &ix.map,
                    None => &fresh,
                };
                let fcols = key_columns(&f_keys, &factors[f].schema, &factors[f].rows, ctx)?;
                for fi in 0..factors[f].rows.len() {
                    if !gather_key(&fcols, fi, &mut key) {
                        continue;
                    }
                    if let Some(matches) = map.get(&key) {
                        for &ti in matches {
                            let mut t2 = tuples[ti].clone();
                            t2[f] = fi as u32;
                            out.push(t2);
                        }
                    }
                }
            }
            out
        };

        ctx.bump(ExecCounter::RowsJoined, out.len() as u64);
        ctx.bump(
            ExecCounter::PlannerEstRowsErr,
            est.abs_diff(out.len() as u64),
        );
        tuples = out;
        joined[f] = true;
        order.push(f);
        tuples_base = None;
    }

    let reordered = order.iter().enumerate().filter(|&(i, &f)| i != f).count() as u64;
    ctx.bump(ExecCounter::PlannerReorderedJoins, reordered);

    // Canonical output: the naive fold emits rows lexicographically by
    // factor row index, so sorting the tuples reproduces its row order
    // exactly — bit-identical relations under either planner.
    tuples.sort_unstable();
    let mut schema = factors[0].schema.clone();
    for fct in &factors[1..] {
        schema = schema.join(&fct.schema);
    }
    let width = schema.len();
    let mut rows = Vec::with_capacity(tuples.len());
    for t in &tuples {
        let mut r = Vec::with_capacity(width);
        for (fi, fct) in factors.iter().enumerate() {
            r.extend_from_slice(&fct.rows[t[fi] as usize]);
        }
        rows.push(r);
    }
    Ok((
        Relation {
            schema,
            rows,
            base: None,
        },
        residual,
    ))
}

fn cross_join(a: &Relation, b: &Relation, ctx: &mut dyn QueryCtx) -> Relation {
    let schema = a.schema.join(&b.schema);
    let width = schema.len();
    let mut rows = Vec::with_capacity(a.rows.len() * b.rows.len());
    for ra in &a.rows {
        for rb in &b.rows {
            let mut r = Vec::with_capacity(width);
            r.extend_from_slice(ra);
            r.extend_from_slice(rb);
            rows.push(r);
        }
    }
    ctx.bump(ExecCounter::RowsJoined, rows.len() as u64);
    Relation {
        schema,
        rows,
        base: None,
    }
}

/// Hash join `probe ⋈ build` on the given key expressions. NULL keys never
/// match (SQL equality semantics).
///
/// Key expressions are planned once per side; the probe phase collects
/// `(probe_idx, build_idx)` pairs and the output rows are materialised in
/// a single exact-capacity pass — no intermediate row clones.
fn hash_join(
    probe: &Relation,
    build: &Relation,
    probe_keys: &[&Expr],
    build_keys: &[&Expr],
    ctx: &mut dyn QueryCtx,
) -> Result<Relation> {
    let schema = probe.schema.join(&build.schema);
    // Access path: when the build side is an untouched base-table
    // snapshot and every build key is a plain column, the engine's index
    // registry serves (or lazily builds) a persistent hash index over
    // those columns — later statements joining on the same key skip the
    // build scan entirely. The index also stores NULL-containing keys
    // (its GROUP BY consumer needs them) but the probe below never looks
    // one up, preserving SQL equality semantics.
    let index = match (&build.base, build.key_positions(build_keys)) {
        (Some(base), Some(cols)) => ctx.table_index(&base.table, base.version, &cols),
        _ => None,
    };
    let mut fresh: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    let mut key: Vec<Value> = Vec::with_capacity(build_keys.len());
    if index.is_none() {
        fresh.reserve(build.rows.len());
        let bcols = key_columns(build_keys, &build.schema, &build.rows, ctx)?;
        for i in 0..build.rows.len() {
            if gather_key(&bcols, i, &mut key) {
                fresh.entry(std::mem::take(&mut key)).or_default().push(i);
            }
        }
    }
    let table: &HashMap<Vec<Value>, Vec<usize>> = match &index {
        Some(ix) => &ix.map,
        None => &fresh,
    };
    let pcols = key_columns(probe_keys, &probe.schema, &probe.rows, ctx)?;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for pi in 0..probe.rows.len() {
        if !gather_key(&pcols, pi, &mut key) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &bi in matches {
                pairs.push((pi, bi));
            }
        }
    }
    let width = schema.len();
    let mut rows = Vec::with_capacity(pairs.len());
    for (pi, bi) in pairs {
        let mut r = Vec::with_capacity(width);
        r.extend_from_slice(&probe.rows[pi]);
        r.extend_from_slice(&build.rows[bi]);
        rows.push(r);
    }
    ctx.bump(ExecCounter::RowsJoined, rows.len() as u64);
    Ok(Relation {
        schema,
        rows,
        base: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::eval::NoCtx;
    use crate::row;
    use crate::sql::parser::parse_expression;
    use crate::types::{Column, DataType};

    fn rel(q: &str, names: &[(&str, DataType)], rows: Vec<Row>) -> Relation {
        Relation {
            schema: Schema::new(
                names
                    .iter()
                    .map(|(n, t)| Column::qualified(q, *n, *t))
                    .collect(),
            ),
            rows,
            base: None,
        }
    }

    #[test]
    fn conjuncts_splits_top_level_ands() {
        let e = parse_expression("a = 1 AND (b = 2 OR c = 3) AND d = 4").unwrap();
        assert_eq!(conjuncts(&e).len(), 3);
    }

    #[test]
    fn hash_join_matches_equal_keys() {
        let a = rel(
            "a",
            &[("x", DataType::Int)],
            vec![row![1], row![2], row![3]],
        );
        let b = rel(
            "b",
            &[("y", DataType::Int), ("z", DataType::Str)],
            vec![row![2, "two"], row![3, "three"], row![3, "III"]],
        );
        let pred = parse_expression("a.x = b.y").unwrap();
        let (joined, residual) = join_factors(vec![a, b], conjuncts(&pred), &mut NoCtx).unwrap();
        assert!(residual.is_empty());
        assert_eq!(joined.rows.len(), 3); // 2-two, 3-three, 3-III
        assert_eq!(joined.schema.len(), 3);
    }

    #[test]
    fn null_keys_do_not_join() {
        let a = rel("a", &[("x", DataType::Int)], vec![vec![Value::Null]]);
        let b = rel("b", &[("y", DataType::Int)], vec![vec![Value::Null]]);
        let pred = parse_expression("a.x = b.y").unwrap();
        let (joined, _) = join_factors(vec![a, b], conjuncts(&pred), &mut NoCtx).unwrap();
        assert!(joined.rows.is_empty());
    }

    #[test]
    fn no_predicate_gives_cross_product() {
        let a = rel("a", &[("x", DataType::Int)], vec![row![1], row![2]]);
        let b = rel("b", &[("y", DataType::Int)], vec![row![10], row![20]]);
        let (joined, residual) = join_factors(vec![a, b], vec![], &mut NoCtx).unwrap();
        assert!(residual.is_empty());
        assert_eq!(joined.rows.len(), 4);
    }

    #[test]
    fn single_factor_predicate_pushed_down() {
        let a = rel("a", &[("x", DataType::Int)], vec![row![1], row![2]]);
        let b = rel("b", &[("y", DataType::Int)], vec![row![10]]);
        let pred = parse_expression("a.x = 2").unwrap();
        let (joined, residual) = join_factors(vec![a, b], conjuncts(&pred), &mut NoCtx).unwrap();
        assert!(residual.is_empty());
        assert_eq!(joined.rows.len(), 1);
        assert_eq!(joined.rows[0], row![2, 10]);
    }

    #[test]
    fn non_equi_predicate_returned_as_residual() {
        let a = rel("a", &[("x", DataType::Int)], vec![row![1]]);
        let b = rel("b", &[("y", DataType::Int)], vec![row![10]]);
        let pred = parse_expression("a.x < b.y").unwrap();
        let (joined, residual) = join_factors(vec![a, b], conjuncts(&pred), &mut NoCtx).unwrap();
        assert_eq!(joined.rows.len(), 1); // cross join, filter left to caller
        assert_eq!(residual.len(), 1);
    }

    #[test]
    fn three_way_equi_join_chains() {
        let a = rel("a", &[("x", DataType::Int)], vec![row![1], row![2]]);
        let b = rel(
            "b",
            &[("x", DataType::Int), ("y", DataType::Int)],
            vec![row![1, 10], row![2, 20]],
        );
        let c = rel("c", &[("y", DataType::Int)], vec![row![20]]);
        let pred = parse_expression("a.x = b.x AND b.y = c.y").unwrap();
        let (joined, residual) = join_factors(vec![a, b, c], conjuncts(&pred), &mut NoCtx).unwrap();
        assert!(residual.is_empty());
        assert_eq!(joined.rows.len(), 1);
        assert_eq!(joined.rows[0], row![2, 2, 20, 20]);
    }
}
