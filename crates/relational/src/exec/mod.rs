//! Query execution.

pub mod explain;
pub mod join;
pub mod select;

pub use join::Relation;
pub use select::run_select;
