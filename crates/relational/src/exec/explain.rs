//! `EXPLAIN <statement>`: a human-readable description of how the engine
//! would execute a query — factor order, predicate pushdown, join
//! strategy, aggregation and post-processing steps.
//!
//! The description is computed from the same classification logic the
//! executor uses ([`crate::exec::join`]), so it reflects the actual plan,
//! not a guess.

use crate::engine::Database;
use crate::error::Result;
use crate::exec::join::{conjuncts, resolves_in};
use crate::expr::compile::ExecMode;
use crate::expr::vector::expr_vector_safe;
use crate::expr::{BinOp, Expr};
use crate::index::IndexPolicy;
use crate::planner::PlannerMode;
use crate::sql::ast::{JoinKind, SelectStmt, Statement, TableSource};
use crate::types::Schema;

/// Render the plan for any statement.
pub fn explain_statement(db: &Database, stmt: &Statement) -> Result<String> {
    let mut out = String::new();
    match stmt {
        Statement::Select(s) => explain_select(db, s, 0, &mut out)?,
        Statement::Insert { table, source, .. } => {
            out.push_str(&format!("Insert into {table}\n"));
            if let crate::sql::ast::InsertSource::Query(q) = source {
                explain_select(db, q, 1, &mut out)?;
            }
        }
        Statement::CreateTableAs { name, query } => {
            out.push_str(&format!("Materialise into new table {name}\n"));
            explain_select(db, query, 1, &mut out)?;
        }
        Statement::Delete { table, .. } => {
            out.push_str(&format!("Delete from {table} (scan + filter)\n"));
        }
        Statement::Update { table, .. } => {
            out.push_str(&format!("Update {table} (scan + filter + rewrite)\n"));
        }
        other => out.push_str(&format!("DDL: {other}\n")),
    }
    Ok(out.trim_end().to_string())
}

fn pad(indent: usize) -> String {
    "  ".repeat(indent)
}

fn factor_schema(db: &Database, source: &TableSource, alias: Option<&str>) -> Option<Schema> {
    match source {
        TableSource::Named(name) => {
            let base = if let Some(view) = db.catalog().view(name) {
                // Approximate a view's schema by its projection arity only.
                let _ = view;
                return None;
            } else {
                db.catalog().table_schema(name).ok()?.clone()
            };
            Some(match alias {
                Some(a) => base.with_qualifier(a),
                None => base.with_qualifier(name),
            })
        }
        TableSource::Subquery(_) => None,
    }
}

fn factor_label(db: &Database, source: &TableSource, alias: Option<&str>) -> String {
    match source {
        TableSource::Named(name) => {
            let rows = db
                .catalog()
                .table(name)
                .map(|t| format!("{} rows", t.row_count()))
                .unwrap_or_else(|_| {
                    if db.catalog().has_view(name) {
                        "view".to_string()
                    } else {
                        "missing".to_string()
                    }
                });
            match alias {
                Some(a) => format!("{name} AS {a} [{rows}]"),
                None => format!("{name} [{rows}]"),
            }
        }
        TableSource::Subquery(_) => "(subquery)".to_string(),
    }
}

/// Format `index(<table>.<cols>)` for a factor the executor would serve
/// from a table index, or `None` when it would scan: the factor must be a
/// plain named base table (no view, no explicit joins, no pushdown filter
/// — both clear base-table provenance) and every key a plain column.
fn index_label(
    db: &Database,
    stmt: &SelectStmt,
    pushed: bool,
    factor: usize,
    keys: &[&Expr],
) -> Option<String> {
    if pushed {
        return None;
    }
    let tref = stmt.from.get(factor)?;
    if !tref.joins.is_empty() {
        return None;
    }
    let TableSource::Named(name) = &tref.source else {
        return None;
    };
    let table = db.catalog().table(name).ok()?;
    let mut cols = Vec::with_capacity(keys.len());
    for k in keys {
        match k {
            Expr::Column { name, .. } => cols.push(name.as_str()),
            _ => return None,
        }
    }
    let col_part = if cols.len() == 1 {
        cols[0].to_string()
    } else {
        format!("({})", cols.join(","))
    };
    Some(format!("index({}.{})", table.name(), col_part))
}

/// The batch-execution tag for a site whose expression programs are
/// `exprs`: `vector` when the executor would run it batch-at-a-time,
/// `row` otherwise — mirroring [`crate::expr::vector::VectorPlan::plan`]
/// (under `auto`, vectorize only compiled sites whose programs are all
/// vector-safe; an explicit `vector` batches even fallback programs).
fn exec_tag(db: &Database, exprs: &[&Expr]) -> &'static str {
    let vectorized = match db.exec_mode() {
        ExecMode::Row => false,
        ExecMode::Vector => true,
        ExecMode::Auto => db.sqlexec().use_compiled() && exprs.iter().all(|e| expr_vector_safe(e)),
    };
    if vectorized {
        "vector"
    } else {
        "row"
    }
}

/// The access path the executor would pick for one equi-join conjunct.
/// Factors fold left to right, so the side resolving in the later factor
/// is the hash-build side — the one a table index can replace.
fn equi_access_path(
    db: &Database,
    stmt: &SelectStmt,
    schemas: &[Option<Schema>],
    pushed: &[bool],
    left: &Expr,
    right: &Expr,
) -> String {
    if db.index_policy() == IndexPolicy::Off {
        return "scan".into();
    }
    let factor_of = |e: &Expr| -> Option<usize> {
        schemas
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| resolves_in(e, s)))
    };
    let (build_factor, build_key) = match (factor_of(left), factor_of(right)) {
        (Some(lf), Some(rf)) if lf != rf => {
            if lf > rf {
                (lf, left)
            } else {
                (rf, right)
            }
        }
        _ => return "scan".into(),
    };
    index_label(db, stmt, pushed[build_factor], build_factor, &[build_key])
        .unwrap_or_else(|| "scan".into())
}

/// Row count of factor `i` when it is a plain named base table.
fn factor_rows(db: &Database, stmt: &SelectStmt, i: usize) -> Option<u64> {
    let tref = stmt.from.get(i)?;
    if !tref.joins.is_empty() {
        return None;
    }
    let TableSource::Named(name) = &tref.source else {
        return None;
    };
    Some(db.catalog().table(name).ok()?.stats().row_count())
}

/// Catalog distinct estimate for a plain-column key of factor `i`.
fn column_ndv(
    db: &Database,
    stmt: &SelectStmt,
    schemas: &[Option<Schema>],
    i: usize,
    key: &Expr,
) -> Option<u64> {
    let tref = stmt.from.get(i)?;
    if !tref.joins.is_empty() {
        return None;
    }
    let TableSource::Named(name) = &tref.source else {
        return None;
    };
    let Expr::Column {
        qualifier,
        name: col,
    } = key
    else {
        return None;
    };
    let pos = schemas
        .get(i)?
        .as_ref()?
        .resolve(qualifier.as_deref(), col)
        .ok()?;
    db.catalog().table(name).ok()?.stats().distinct(pos)
}

/// Cost-based estimate for one equi-join conjunct: `(est rows, cost)`,
/// with `est = |L|·|R| / ndv(key)` from the catalog statistics and
/// `cost = |L| + |R| + est` (hash build + probe + emit). `None` when
/// either side is not a named base table.
fn join_estimate(
    db: &Database,
    stmt: &SelectStmt,
    schemas: &[Option<Schema>],
    left: &Expr,
    right: &Expr,
) -> Option<(u64, u64)> {
    let factor_of = |e: &Expr| -> Option<usize> {
        schemas
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| resolves_in(e, s)))
    };
    let (lf, rf) = match (factor_of(left), factor_of(right)) {
        (Some(lf), Some(rf)) if lf != rf => (lf, rf),
        _ => return None,
    };
    let lr = factor_rows(db, stmt, lf)?;
    let rr = factor_rows(db, stmt, rf)?;
    let ndv = column_ndv(db, stmt, schemas, lf, left)
        .into_iter()
        .chain(column_ndv(db, stmt, schemas, rf, right))
        .max()
        .unwrap_or_else(|| lr.max(rr))
        .max(1);
    let est = lr.saturating_mul(rr) / ndv;
    Some((est, lr.saturating_add(rr).saturating_add(est)))
}

/// The access path the executor would pick for the GROUP BY bucketing
/// pass: a table index serves it only when the grouped input is one
/// unfiltered named base table and every key is a plain column.
fn group_access_path(db: &Database, stmt: &SelectStmt, schemas: &[Option<Schema>]) -> String {
    if db.index_policy() == IndexPolicy::Off
        || stmt.where_clause.is_some()
        || schemas.len() != 1
        || schemas[0].is_none()
    {
        return "scan".into();
    }
    let keys: Vec<&Expr> = stmt.group_by.iter().collect();
    index_label(db, stmt, false, 0, &keys).unwrap_or_else(|| "scan".into())
}

fn explain_select(db: &Database, stmt: &SelectStmt, indent: usize, out: &mut String) -> Result<()> {
    out.push_str(&format!("{}Select\n", pad(indent)));
    if let Some((kind, rhs)) = &stmt.set_op {
        out.push_str(&format!(
            "{}set operation: {}\n",
            pad(indent + 1),
            kind.sql()
        ));
        let mut left = stmt.clone();
        left.set_op = None;
        left.order_by = Vec::new();
        left.limit = None;
        explain_select(db, &left, indent + 1, out)?;
        explain_select(db, rhs, indent + 1, out)?;
        return Ok(());
    }

    // Factors and explicit joins.
    let mut schemas: Vec<Option<Schema>> = Vec::new();
    for tref in &stmt.from {
        out.push_str(&format!(
            "{}scan {}\n",
            pad(indent + 1),
            factor_label(db, &tref.source, tref.alias.as_deref())
        ));
        for j in &tref.joins {
            let kw = match j.kind {
                JoinKind::Inner => "inner join",
                JoinKind::LeftOuter => "left outer join",
            };
            out.push_str(&format!(
                "{}{kw} {} on {}\n",
                pad(indent + 2),
                factor_label(db, &j.source, j.alias.as_deref()),
                j.on.as_ref()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "TRUE".into())
            ));
        }
        if let TableSource::Subquery(q) = &tref.source {
            explain_select(db, q, indent + 2, out)?;
        }
        schemas.push(factor_schema(db, &tref.source, tref.alias.as_deref()));
    }

    // Predicate classification, mirroring the executor's pushdown logic.
    // A first pass records which factors receive pushdown filters: a
    // filtered factor loses base-table provenance, so its joins can no
    // longer be served by a table index.
    let mut pushed = vec![false; schemas.len()];
    if let Some(w) = &stmt.where_clause {
        for c in conjuncts(w) {
            for (i, schema) in schemas.iter().enumerate() {
                if let Some(schema) = schema {
                    if resolves_in(c, schema) {
                        pushed[i] = true;
                        break;
                    }
                }
            }
        }
    }
    if let Some(w) = &stmt.where_clause {
        for c in conjuncts(w) {
            let mut placed = false;
            for (i, schema) in schemas.iter().enumerate() {
                if let Some(schema) = schema {
                    if resolves_in(c, schema) {
                        out.push_str(&format!(
                            "{}pushdown to factor {}: {c}\n",
                            pad(indent + 1),
                            i + 1
                        ));
                        placed = true;
                        break;
                    }
                }
            }
            if placed {
                continue;
            }
            let equi_sides = match c {
                Expr::Binary {
                    op: BinOp::Eq,
                    left,
                    right,
                } if matches!(**left, Expr::Column { .. })
                    && matches!(**right, Expr::Column { .. }) =>
                {
                    Some((left.as_ref(), right.as_ref()))
                }
                _ => None,
            };
            if let Some((l, r)) = equi_sides {
                let path = equi_access_path(db, stmt, &schemas, &pushed, l, r);
                let tag = exec_tag(db, &[l, r]);
                out.push_str(&format!(
                    "{}hash join on: {c} [{path}] [{tag}]",
                    pad(indent + 1)
                ));
                if db.planner_mode() == PlannerMode::Cost {
                    if let Some((est, cost)) = join_estimate(db, stmt, &schemas, l, r) {
                        out.push_str(&format!(" (est {est} rows, cost {cost})"));
                    }
                }
                out.push('\n');
            } else {
                out.push_str(&format!("{}filter: {c}\n", pad(indent + 1)));
            }
        }
    }

    if !stmt.group_by.is_empty() {
        let keys: Vec<String> = stmt.group_by.iter().map(|e| e.to_string()).collect();
        let path = group_access_path(db, stmt, &schemas);
        let key_refs: Vec<&Expr> = stmt.group_by.iter().collect();
        let tag = exec_tag(db, &key_refs);
        out.push_str(&format!(
            "{}hash aggregate by ({}) [{path}] [{tag}]",
            pad(indent + 1),
            keys.join(", ")
        ));
        if db.planner_mode() == PlannerMode::Cost && schemas.len() == 1 {
            let rows = factor_rows(db, stmt, 0);
            let ndvs: Option<Vec<u64>> = stmt
                .group_by
                .iter()
                .map(|k| column_ndv(db, stmt, &schemas, 0, k))
                .collect();
            if let (Some(rows), Some(ndvs)) = (rows, ndvs) {
                let groups = ndvs
                    .iter()
                    .fold(1u64, |acc, &d| acc.saturating_mul(d.max(1)))
                    .min(rows);
                out.push_str(&format!(" (est {groups} groups of {rows} rows)"));
            }
        }
        out.push('\n');
    } else if stmt
        .items
        .iter()
        .any(|i| matches!(i, crate::sql::ast::SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
    {
        out.push_str(&format!("{}aggregate (single group)\n", pad(indent + 1)));
    }
    if let Some(h) = &stmt.having {
        out.push_str(&format!("{}having: {h}\n", pad(indent + 1)));
    }
    if stmt.distinct {
        out.push_str(&format!("{}distinct\n", pad(indent + 1)));
    }
    if !stmt.order_by.is_empty() {
        let keys: Vec<String> = stmt
            .order_by
            .iter()
            .map(|o| format!("{}{}", o.expr, if o.asc { "" } else { " DESC" }))
            .collect();
        out.push_str(&format!("{}sort by {}\n", pad(indent + 1), keys.join(", ")));
    }
    if let Some(l) = stmt.limit {
        out.push_str(&format!("{}limit {l}\n", pad(indent + 1)));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_statement;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, b VARCHAR)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        db.execute("CREATE TABLE u (a INT, c INT)").unwrap();
        db
    }

    fn plan(sql: &str) -> String {
        let db = db();
        let stmt = parse_statement(sql).unwrap();
        explain_statement(&db, &stmt).unwrap()
    }

    #[test]
    fn pushdown_and_hash_join_reported() {
        let p = plan("SELECT t.b FROM t, u WHERE t.a = u.a AND t.b = 'x'");
        assert!(p.contains("scan t [2 rows]"), "{p}");
        assert!(p.contains("hash join on: t.a = u.a"), "{p}");
        assert!(p.contains("pushdown to factor 1: t.b = 'x'"), "{p}");
    }

    #[test]
    fn aggregation_and_sort_reported() {
        let p = plan("SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > 1 ORDER BY b LIMIT 5");
        assert!(p.contains("hash aggregate by (b)"), "{p}");
        assert!(p.contains("having: COUNT(*) > 1"), "{p}");
        assert!(p.contains("sort by b"), "{p}");
        assert!(p.contains("limit 5"), "{p}");
    }

    #[test]
    fn access_paths_reported() {
        let p = plan("SELECT t.b FROM t, u WHERE t.a = u.a");
        assert!(p.contains("hash join on: t.a = u.a [index(u.a)]"), "{p}");
        let p = plan("SELECT b, COUNT(*) FROM t GROUP BY b");
        assert!(p.contains("hash aggregate by (b) [index(t.b)]"), "{p}");
        // A pushdown filter on the build factor clears its provenance.
        let p = plan("SELECT t.b FROM t, u WHERE t.a = u.a AND u.c = 1");
        assert!(p.contains("hash join on: t.a = u.a [scan]"), "{p}");
        // A WHERE clause forces the grouped input through a filter.
        let p = plan("SELECT b, COUNT(*) FROM t WHERE a = 1 GROUP BY b");
        assert!(p.contains("hash aggregate by (b) [scan]"), "{p}");
    }

    #[test]
    fn cost_estimates_annotate_access_paths() {
        let mut db = db();
        db.execute("INSERT INTO u VALUES (1, 7), (2, 8)").unwrap();
        let join = parse_statement("SELECT t.b FROM t, u WHERE t.a = u.a").unwrap();
        let p = explain_statement(&db, &join).unwrap();
        assert!(
            p.contains("[index(u.a)] [vector] (est 2 rows, cost 6)"),
            "{p}"
        );
        let group = parse_statement("SELECT b, COUNT(*) FROM t GROUP BY b").unwrap();
        let p = explain_statement(&db, &group).unwrap();
        assert!(
            p.contains("[index(t.b)] [vector] (est 2 groups of 2 rows)"),
            "{p}"
        );
        // The naive planner estimates nothing.
        db.set_planner(PlannerMode::Naive);
        let p = explain_statement(&db, &join).unwrap();
        assert!(!p.contains("(est "), "{p}");
    }

    #[test]
    fn policy_off_reports_scans_everywhere() {
        let mut db = db();
        db.set_index_policy(IndexPolicy::Off);
        let stmt = parse_statement("SELECT t.b FROM t, u WHERE t.a = u.a GROUP BY t.b").unwrap();
        let p = explain_statement(&db, &stmt).unwrap();
        assert!(p.contains("hash join on: t.a = u.a [scan]"), "{p}");
        assert!(!p.contains("[index("), "no index paths under off: {p}");
    }

    #[test]
    fn exec_tags_follow_the_batch_mode() {
        let mut db = db();
        let stmt = parse_statement("SELECT t.b FROM t, u WHERE t.a = u.a GROUP BY t.b").unwrap();
        // The default (auto + compiled) vectorizes plain-column sites.
        let p = explain_statement(&db, &stmt).unwrap();
        assert!(
            p.contains("hash join on: t.a = u.a [index(u.a)] [vector]"),
            "{p}"
        );
        assert!(p.contains("hash aggregate by (t.b) [scan] [vector]"), "{p}");
        // Pinning the row path re-tags every site.
        db.set_exec(ExecMode::Row);
        let p = explain_statement(&db, &stmt).unwrap();
        assert!(p.contains("[index(u.a)] [row]"), "{p}");
        assert!(p.contains("[scan] [row]"), "{p}");
        assert!(!p.contains("[vector]"), "{p}");
    }

    #[test]
    fn set_ops_and_joins_reported() {
        let p = plan("SELECT a FROM t UNION SELECT a FROM u");
        assert!(p.contains("set operation: UNION"), "{p}");
        let p = plan("SELECT b FROM t LEFT JOIN u ON t.a = u.a");
        assert!(p.contains("left outer join"), "{p}");
    }
}
