//! `EXPLAIN <statement>`: a human-readable description of how the engine
//! would execute a query — factor order, predicate pushdown, join
//! strategy, aggregation and post-processing steps.
//!
//! The description is computed from the same classification logic the
//! executor uses ([`crate::exec::join`]), so it reflects the actual plan,
//! not a guess.

use crate::engine::Database;
use crate::error::Result;
use crate::exec::join::{conjuncts, resolves_in};
use crate::expr::{BinOp, Expr};
use crate::sql::ast::{JoinKind, SelectStmt, Statement, TableSource};
use crate::types::Schema;

/// Render the plan for any statement.
pub fn explain_statement(db: &Database, stmt: &Statement) -> Result<String> {
    let mut out = String::new();
    match stmt {
        Statement::Select(s) => explain_select(db, s, 0, &mut out)?,
        Statement::Insert { table, source, .. } => {
            out.push_str(&format!("Insert into {table}\n"));
            if let crate::sql::ast::InsertSource::Query(q) = source {
                explain_select(db, q, 1, &mut out)?;
            }
        }
        Statement::CreateTableAs { name, query } => {
            out.push_str(&format!("Materialise into new table {name}\n"));
            explain_select(db, query, 1, &mut out)?;
        }
        Statement::Delete { table, .. } => {
            out.push_str(&format!("Delete from {table} (scan + filter)\n"));
        }
        Statement::Update { table, .. } => {
            out.push_str(&format!("Update {table} (scan + filter + rewrite)\n"));
        }
        other => out.push_str(&format!("DDL: {other}\n")),
    }
    Ok(out.trim_end().to_string())
}

fn pad(indent: usize) -> String {
    "  ".repeat(indent)
}

fn factor_schema(db: &Database, source: &TableSource, alias: Option<&str>) -> Option<Schema> {
    match source {
        TableSource::Named(name) => {
            let base = if let Some(view) = db.catalog().view(name) {
                // Approximate a view's schema by its projection arity only.
                let _ = view;
                return None;
            } else {
                db.catalog().table_schema(name).ok()?.clone()
            };
            Some(match alias {
                Some(a) => base.with_qualifier(a),
                None => base.with_qualifier(name),
            })
        }
        TableSource::Subquery(_) => None,
    }
}

fn factor_label(db: &Database, source: &TableSource, alias: Option<&str>) -> String {
    match source {
        TableSource::Named(name) => {
            let rows = db
                .catalog()
                .table(name)
                .map(|t| format!("{} rows", t.row_count()))
                .unwrap_or_else(|_| {
                    if db.catalog().has_view(name) {
                        "view".to_string()
                    } else {
                        "missing".to_string()
                    }
                });
            match alias {
                Some(a) => format!("{name} AS {a} [{rows}]"),
                None => format!("{name} [{rows}]"),
            }
        }
        TableSource::Subquery(_) => "(subquery)".to_string(),
    }
}

fn explain_select(db: &Database, stmt: &SelectStmt, indent: usize, out: &mut String) -> Result<()> {
    out.push_str(&format!("{}Select\n", pad(indent)));
    if let Some((kind, rhs)) = &stmt.set_op {
        out.push_str(&format!(
            "{}set operation: {}\n",
            pad(indent + 1),
            kind.sql()
        ));
        let mut left = stmt.clone();
        left.set_op = None;
        left.order_by = Vec::new();
        left.limit = None;
        explain_select(db, &left, indent + 1, out)?;
        explain_select(db, rhs, indent + 1, out)?;
        return Ok(());
    }

    // Factors and explicit joins.
    let mut schemas: Vec<Option<Schema>> = Vec::new();
    for tref in &stmt.from {
        out.push_str(&format!(
            "{}scan {}\n",
            pad(indent + 1),
            factor_label(db, &tref.source, tref.alias.as_deref())
        ));
        for j in &tref.joins {
            let kw = match j.kind {
                JoinKind::Inner => "inner join",
                JoinKind::LeftOuter => "left outer join",
            };
            out.push_str(&format!(
                "{}{kw} {} on {}\n",
                pad(indent + 2),
                factor_label(db, &j.source, j.alias.as_deref()),
                j.on.as_ref()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "TRUE".into())
            ));
        }
        if let TableSource::Subquery(q) = &tref.source {
            explain_select(db, q, indent + 2, out)?;
        }
        schemas.push(factor_schema(db, &tref.source, tref.alias.as_deref()));
    }

    // Predicate classification, mirroring the executor's pushdown logic.
    if let Some(w) = &stmt.where_clause {
        for c in conjuncts(w) {
            let mut placed = false;
            for (i, schema) in schemas.iter().enumerate() {
                if let Some(schema) = schema {
                    if resolves_in(c, schema) {
                        out.push_str(&format!(
                            "{}pushdown to factor {}: {c}\n",
                            pad(indent + 1),
                            i + 1
                        ));
                        placed = true;
                        break;
                    }
                }
            }
            if placed {
                continue;
            }
            let is_equi = matches!(
                c,
                Expr::Binary { op: BinOp::Eq, left, right }
                    if matches!(**left, Expr::Column { .. })
                        && matches!(**right, Expr::Column { .. })
            );
            if is_equi {
                out.push_str(&format!("{}hash join on: {c}\n", pad(indent + 1)));
            } else {
                out.push_str(&format!("{}filter: {c}\n", pad(indent + 1)));
            }
        }
    }

    if !stmt.group_by.is_empty() {
        let keys: Vec<String> = stmt.group_by.iter().map(|e| e.to_string()).collect();
        out.push_str(&format!(
            "{}hash aggregate by ({})\n",
            pad(indent + 1),
            keys.join(", ")
        ));
    } else if stmt
        .items
        .iter()
        .any(|i| matches!(i, crate::sql::ast::SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
    {
        out.push_str(&format!("{}aggregate (single group)\n", pad(indent + 1)));
    }
    if let Some(h) = &stmt.having {
        out.push_str(&format!("{}having: {h}\n", pad(indent + 1)));
    }
    if stmt.distinct {
        out.push_str(&format!("{}distinct\n", pad(indent + 1)));
    }
    if !stmt.order_by.is_empty() {
        let keys: Vec<String> = stmt
            .order_by
            .iter()
            .map(|o| format!("{}{}", o.expr, if o.asc { "" } else { " DESC" }))
            .collect();
        out.push_str(&format!("{}sort by {}\n", pad(indent + 1), keys.join(", ")));
    }
    if let Some(l) = stmt.limit {
        out.push_str(&format!("{}limit {l}\n", pad(indent + 1)));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_statement;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, b VARCHAR)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        db.execute("CREATE TABLE u (a INT, c INT)").unwrap();
        db
    }

    fn plan(sql: &str) -> String {
        let db = db();
        let stmt = parse_statement(sql).unwrap();
        explain_statement(&db, &stmt).unwrap()
    }

    #[test]
    fn pushdown_and_hash_join_reported() {
        let p = plan("SELECT t.b FROM t, u WHERE t.a = u.a AND t.b = 'x'");
        assert!(p.contains("scan t [2 rows]"), "{p}");
        assert!(p.contains("hash join on: t.a = u.a"), "{p}");
        assert!(p.contains("pushdown to factor 1: t.b = 'x'"), "{p}");
    }

    #[test]
    fn aggregation_and_sort_reported() {
        let p = plan("SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > 1 ORDER BY b LIMIT 5");
        assert!(p.contains("hash aggregate by (b)"), "{p}");
        assert!(p.contains("having: COUNT(*) > 1"), "{p}");
        assert!(p.contains("sort by b"), "{p}");
        assert!(p.contains("limit 5"), "{p}");
    }

    #[test]
    fn set_ops_and_joins_reported() {
        let p = plan("SELECT a FROM t UNION SELECT a FROM u");
        assert!(p.contains("set operation: UNION"), "{p}");
        let p = plan("SELECT b FROM t LEFT JOIN u ON t.a = u.a");
        assert!(p.contains("left outer join"), "{p}");
    }
}
