//! SELECT execution: scan/join → filter → group/aggregate → project →
//! distinct → order → limit, all fully materialised.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::engine::Database;
use crate::error::{Error, Result};
use crate::exec::join::{conjuncts, filter_relation, join_factors, BaseRef, Relation};
use crate::expr::compile::{ExecCounter, SiteEval};
use crate::expr::eval::{eval_grouped, QueryCtx};
use crate::expr::{AggFunc, BinOp, Expr};
use crate::resultset::ResultSet;
use crate::row::Row;
use crate::sql::ast::{JoinKind, OrderItem, SelectItem, SelectStmt, SetOpKind, TableSource};
use crate::types::{Column, DataType, Schema};
use crate::value::Value;

/// Execute a SELECT against the database.
pub fn run_select(db: &mut Database, stmt: &SelectStmt) -> Result<ResultSet> {
    if stmt.set_op.is_some() {
        return run_set_op(db, stmt);
    }
    run_select_arm(db, stmt, true)
}

/// 64-bit hash of a row, used with candidate-index buckets for
/// clone-free DISTINCT / set-operation dedup.
fn row_hash(row: &Row) -> u64 {
    let mut h = DefaultHasher::new();
    row.hash(&mut h);
    h.finish()
}

/// Keep the first occurrence of each distinct row. Rows are moved, never
/// cloned: the seen-set stores hashes and indices into the output.
fn dedup_rows(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: HashMap<u64, Vec<usize>> = HashMap::with_capacity(rows.len());
    let mut out: Vec<Row> = Vec::with_capacity(rows.len());
    for row in rows {
        let bucket = seen.entry(row_hash(&row)).or_default();
        if bucket.iter().any(|&i| out[i] == row) {
            continue;
        }
        bucket.push(out.len());
        out.push(row);
    }
    out
}

/// Execute a SELECT combined with UNION/INTERSECT/EXCEPT: evaluate both
/// sides, combine with SQL set semantics, then apply the trailing
/// ORDER BY / LIMIT to the combined rows. The left arm is the statement
/// itself minus its set-op tail, borrowed directly (no clone).
fn run_set_op(db: &mut Database, stmt: &SelectStmt) -> Result<ResultSet> {
    let (kind, rhs) = stmt.set_op.as_ref().expect("checked by run_select");
    let left = run_select_arm(db, stmt, false)?;
    let right = run_select(db, rhs)?;
    if left.schema().len() != right.schema().len() {
        return Err(Error::Arity {
            expected: left.schema().len(),
            got: right.schema().len(),
        });
    }
    let schema = left.schema().clone();
    let mut rows: Vec<Row> = match kind {
        SetOpKind::UnionAll => {
            let mut rows = left.into_rows();
            rows.extend(right.into_rows());
            rows
        }
        SetOpKind::Union => {
            let mut rows = left.into_rows();
            rows.extend(right.into_rows());
            dedup_rows(rows)
        }
        SetOpKind::Intersect | SetOpKind::Except => {
            let right_rows = right.into_rows();
            let mut membership: HashMap<u64, Vec<usize>> = HashMap::with_capacity(right_rows.len());
            for (i, r) in right_rows.iter().enumerate() {
                membership.entry(row_hash(r)).or_default().push(i);
            }
            let keep_members = matches!(kind, SetOpKind::Intersect);
            let mut kept = left.into_rows();
            kept.retain(|r| {
                let member = membership
                    .get(&row_hash(r))
                    .is_some_and(|b| b.iter().any(|&i| right_rows[i] == *r));
                member == keep_members
            });
            dedup_rows(kept)
        }
    };
    // Trailing ORDER BY: output positions or column names only.
    if !stmt.order_by.is_empty() {
        let names: Vec<String> = schema.columns().iter().map(|c| c.name.clone()).collect();
        let mut keyed: Vec<(Row, Vec<Value>)> = Vec::with_capacity(rows.len());
        for r in rows {
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for o in &stmt.order_by {
                keys.push(output_key(&o.expr, &r, &names).ok_or_else(|| {
                    Error::unsupported(
                        "ORDER BY after a set operation must reference output columns",
                    )
                })?);
            }
            keyed.push((r, keys));
        }
        let dirs: Vec<bool> = stmt.order_by.iter().map(|o| o.asc).collect();
        keyed.sort_by(|(_, ka), (_, kb)| {
            for ((a, b), asc) in ka.iter().zip(kb.iter()).zip(&dirs) {
                let ord = a.total_cmp(b);
                if ord != std::cmp::Ordering::Equal {
                    return if *asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = keyed.into_iter().map(|(r, _)| r).collect();
    }
    if let Some(l) = stmt.limit {
        rows.truncate(l as usize);
    }
    Ok(ResultSet::new(schema, rows))
}

/// Run one SELECT body. `with_tail` applies the trailing ORDER BY /
/// LIMIT; the left arm of a set operation passes `false` (the tail
/// belongs to the combined result), which lets `run_set_op` borrow the
/// arm from the original statement instead of deep-cloning it.
fn run_select_arm(db: &mut Database, stmt: &SelectStmt, with_tail: bool) -> Result<ResultSet> {
    let order_by: &[OrderItem] = if with_tail { &stmt.order_by } else { &[] };
    let limit = if with_tail { stmt.limit } else { None };

    // 1. FROM: materialise factors, plan joins, push filters.
    let mut factors = Vec::with_capacity(stmt.from.len());
    for tref in &stmt.from {
        let mut current = materialize_factor(db, &tref.source, tref.alias.as_deref())?;
        // Explicit JOIN ... ON chain on this factor.
        for join in &tref.joins {
            let right = materialize_factor(db, &join.source, join.alias.as_deref())?;
            current = explicit_join(db, current, right, join.kind, join.on.as_ref())?;
        }
        factors.push(current);
    }

    let where_conjuncts = stmt
        .where_clause
        .as_ref()
        .map(|w| conjuncts(w))
        .unwrap_or_default();

    let (mut input, residual) = if factors.is_empty() {
        (Relation::unit(), where_conjuncts)
    } else {
        join_factors(factors, where_conjuncts, db)?
    };
    if let Some(pred) = Expr::conjoin(residual.into_iter().cloned()) {
        filter_relation(&mut input, &pred, db)?;
    }

    // 2. Expand projection items.
    let items = expand_items(&stmt.items, &input.schema)?;

    let has_agg = items.iter().any(|(e, _)| e.contains_aggregate())
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());
    let grouped = !stmt.group_by.is_empty() || has_agg;

    // 3/4. Evaluate rows (grouped or per-row) together with sort keys.
    let out_names: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
    let mut projected: Vec<(Row, Vec<Value>)> = if grouped {
        run_grouped(db, &input, stmt, order_by, &items, &out_names)?
    } else {
        if stmt.having.is_some() {
            return Err(Error::Aggregate {
                message: "HAVING requires GROUP BY or aggregates".into(),
            });
        }
        // Plan every projection and order-key expression once; the row
        // loop then runs flat programs (or the interpreter, per the
        // session's sqlexec mode) with a reused stack.
        let item_evals: Vec<SiteEval> = items
            .iter()
            .map(|(e, _)| SiteEval::plan(e, &input.schema, db))
            .collect();
        let order_evals: Vec<OrderSource> = order_by
            .iter()
            .map(
                |o| match plan_output_key(&o.expr, &out_names, items.len()) {
                    Some(idx) => OrderSource::Output(idx),
                    None => OrderSource::Input(SiteEval::plan(&o.expr, &input.schema, db)),
                },
            )
            .collect();
        let mut stack = Vec::new();
        let mut out = Vec::with_capacity(input.rows.len());
        for row in &input.rows {
            let mut o = Vec::with_capacity(items.len());
            for ev in &item_evals {
                o.push(ev.eval(&input.schema, row, db, &mut stack)?);
            }
            let mut keys = Vec::with_capacity(order_evals.len());
            for src in &order_evals {
                keys.push(match src {
                    OrderSource::Output(i) => o[*i].clone(),
                    OrderSource::Input(ev) => ev.eval(&input.schema, row, db, &mut stack)?,
                });
            }
            out.push((o, keys));
        }
        out
    };

    // 5. DISTINCT — hashed row-index buckets; rows move, never clone.
    if stmt.distinct {
        let mut seen: HashMap<u64, Vec<usize>> = HashMap::with_capacity(projected.len());
        let mut kept: Vec<(Row, Vec<Value>)> = Vec::with_capacity(projected.len());
        for (row, keys) in projected {
            let bucket = seen.entry(row_hash(&row)).or_default();
            if bucket.iter().any(|&i| kept[i].0 == row) {
                continue;
            }
            bucket.push(kept.len());
            kept.push((row, keys));
        }
        projected = kept;
    }

    // 6. ORDER BY.
    if !order_by.is_empty() {
        let dirs: Vec<bool> = order_by.iter().map(|o| o.asc).collect();
        projected.sort_by(|(_, ka), (_, kb)| {
            for ((a, b), asc) in ka.iter().zip(kb.iter()).zip(&dirs) {
                let ord = a.total_cmp(b);
                if ord != std::cmp::Ordering::Equal {
                    return if *asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // 7. LIMIT.
    if let Some(l) = limit {
        projected.truncate(l as usize);
    }

    let rows: Vec<Row> = projected.into_iter().map(|(r, _)| r).collect();
    let schema = output_schema(&items, &input.schema, &rows);
    let rs = ResultSet::new(schema, rows);

    // 8. INTO :var — store the scalar on the session.
    if let Some(var) = &stmt.into_var {
        let v = rs.scalar().cloned().ok_or_else(|| Error::ScalarSubquery {
            message: format!(
                "SELECT INTO :{var} requires a 1x1 result, got {}x{}",
                rs.len(),
                rs.schema().len()
            ),
        })?;
        db.set_var(var, v);
    }
    Ok(rs)
}

/// Materialise one table factor (named table, view or derived table),
/// applying its alias as the column qualifier.
fn materialize_factor(
    db: &mut Database,
    source: &TableSource,
    alias: Option<&str>,
) -> Result<Relation> {
    let base = match source {
        TableSource::Named(name) => materialize_named(db, name)?,
        TableSource::Subquery(q) => {
            let rs = run_select(db, q)?;
            Relation {
                schema: rs.schema().clone(),
                rows: rs.into_rows(),
                base: None,
            }
        }
    };
    let qualifier: Option<String> = match (alias, source) {
        (Some(a), _) => Some(a.to_string()),
        (None, TableSource::Named(n)) => Some(n.clone()),
        (None, TableSource::Subquery(_)) => None,
    };
    // Re-qualifying columns keeps positions intact, so base-table
    // provenance survives the aliasing step.
    Ok(Relation {
        schema: match &qualifier {
            Some(q) => base.schema.with_qualifier(q),
            None => base.schema,
        },
        rows: base.rows,
        base: base.base,
    })
}

/// Evaluate an explicit `[LEFT] JOIN ... ON ...`: nested-loop with the ON
/// predicate (the comma-join path keeps its hash-join planning; explicit
/// joins appear in user queries, not the generated mining programs).
fn explicit_join(
    db: &mut Database,
    left: Relation,
    right: Relation,
    kind: JoinKind,
    on: Option<&Expr>,
) -> Result<Relation> {
    let schema = left.schema.join(&right.schema);
    let on_eval = on.map(|pred| SiteEval::plan(pred, &schema, db));
    let null_right: Row = vec![Value::Null; right.schema.len()];
    let mut stack = Vec::new();
    // One scratch combined row, reused per pair; cloned into the output
    // only when the pair survives the ON predicate.
    let mut combined: Row = Vec::with_capacity(schema.len());
    let mut rows = Vec::new();
    for lrow in &left.rows {
        let mut matched = false;
        for rrow in &right.rows {
            combined.clear();
            combined.extend_from_slice(lrow);
            combined.extend_from_slice(rrow);
            let keep = match &on_eval {
                None => true,
                Some(pred) => pred.eval(&schema, &combined, db, &mut stack)?.is_true(),
            };
            if keep {
                matched = true;
                rows.push(combined.clone());
            }
        }
        if !matched && kind == JoinKind::LeftOuter {
            let mut r = Vec::with_capacity(schema.len());
            r.extend_from_slice(lrow);
            r.extend_from_slice(&null_right);
            rows.push(r);
        }
    }
    db.bump(ExecCounter::RowsJoined, rows.len() as u64);
    Ok(Relation {
        schema,
        rows,
        base: None,
    })
}

/// Materialise a named table or view. Base tables carry their provenance
/// (name + version) so downstream operators can consult table indexes;
/// views are re-evaluated queries and get none.
fn materialize_named(db: &mut Database, name: &str) -> Result<Relation> {
    if let Some(view) = db.catalog().view(name).cloned() {
        let rs = run_select(db, &view.query)?;
        return Ok(Relation {
            schema: rs.schema().clone(),
            rows: rs.into_rows(),
            base: None,
        });
    }
    let table = db.catalog().table(name)?;
    let relation = Relation {
        schema: table.schema().clone(),
        rows: table.rows().to_vec(),
        base: Some(BaseRef {
            table: table.name().to_string(),
            version: table.version(),
        }),
    };
    db.bump(ExecCounter::RowsScanned, relation.rows.len() as u64);
    Ok(relation)
}

/// Expand wildcards and name every projection item.
fn expand_items(items: &[SelectItem], input: &Schema) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for c in input.columns() {
                    out.push((
                        Expr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let idxs = input.columns_of(q);
                if idxs.is_empty() {
                    return Err(Error::UnknownColumn {
                        name: format!("{q}.*"),
                    });
                }
                for i in idxs {
                    let c = input.column(i);
                    out.push((
                        Expr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column { name, .. } => name.clone(),
                        other => other.to_sql(),
                    },
                };
                out.push((expr.clone(), name));
            }
        }
    }
    if out.is_empty() {
        return Err(Error::unsupported("empty projection list"));
    }
    Ok(out)
}

/// Grouped execution: hash rows into groups on the GROUP BY keys, filter
/// groups with HAVING, evaluate projections per group.
fn run_grouped(
    db: &mut Database,
    input: &Relation,
    stmt: &SelectStmt,
    order_by: &[OrderItem],
    items: &[(Expr, String)],
    out_names: &[String],
) -> Result<Vec<(Row, Vec<Value>)>> {
    // Access path: a GROUP BY whose keys are plain columns of an
    // untouched base-table snapshot is served by the engine's table
    // index on those columns — same buckets, same first-seen key order,
    // no per-row key evaluation. Any filter, join or view boundary
    // clears the provenance and falls back to the bucketing loop below.
    let key_refs: Vec<&Expr> = stmt.group_by.iter().collect();
    let index = if stmt.group_by.is_empty() {
        None
    } else {
        match (&input.base, input.key_positions(&key_refs)) {
            (Some(b), Some(cols)) => db.table_index(&b.table, b.version, &cols),
            _ => None,
        }
    };

    // Bucket row indices by key (unless the index already did).
    let mut fresh_buckets: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    let mut fresh_order: Vec<Vec<Value>> = Vec::new(); // first-seen group order
    if index.is_none() {
        if stmt.group_by.is_empty() {
            fresh_buckets.insert(Vec::new(), (0..input.rows.len()).collect());
            fresh_order.push(Vec::new());
        } else {
            // Key expressions are planned once for the per-row bucketing
            // loop. HAVING and the projection items stay on the interpreter
            // (`eval_grouped`): aggregates need whole-group context that the
            // row-at-a-time programs cannot host.
            let key_evals: Vec<SiteEval> = stmt
                .group_by
                .iter()
                .map(|g| SiteEval::plan(g, &input.schema, db))
                .collect();
            let mut stack = Vec::new();
            for (i, row) in input.rows.iter().enumerate() {
                let mut key = Vec::with_capacity(key_evals.len());
                for g in &key_evals {
                    key.push(g.eval(&input.schema, row, db, &mut stack)?);
                }
                match fresh_buckets.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(i),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(vec![i]);
                        fresh_order.push(key);
                    }
                }
            }
        }
    }
    let (buckets, order) = match &index {
        Some(ix) => (&ix.map, &ix.order),
        None => (&fresh_buckets, &fresh_order),
    };

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let idxs = &buckets[key];
        let rows: Vec<&Row> = idxs.iter().map(|&i| &input.rows[i]).collect();
        if let Some(h) = &stmt.having {
            let keep = eval_grouped(h, &input.schema, &rows, &stmt.group_by, key, db)?;
            if !keep.is_true() {
                continue;
            }
        }
        let mut o = Vec::with_capacity(items.len());
        for (e, _) in items {
            o.push(eval_grouped(
                e,
                &input.schema,
                &rows,
                &stmt.group_by,
                key,
                db,
            )?);
        }
        // Order keys for the grouped row.
        let mut keys = Vec::with_capacity(order_by.len());
        for ord in order_by {
            if let Some(v) = output_key(&ord.expr, &o, out_names) {
                keys.push(v);
            } else {
                keys.push(eval_grouped(
                    &ord.expr,
                    &input.schema,
                    &rows,
                    &stmt.group_by,
                    key,
                    db,
                )?);
            }
        }
        out.push((o, keys));
    }
    Ok(out)
}

/// Where a non-grouped ORDER BY key comes from, decided once per
/// statement (the decision in [`plan_output_key`] is row-independent).
enum OrderSource<'e> {
    /// Index into the projected output row.
    Output(usize),
    /// Planned evaluator over the input row.
    Input(SiteEval<'e>),
}

/// The row-independent half of [`output_key`]: whether an ORDER BY
/// expression names an output position (`ORDER BY 2`) or an output
/// column/alias, and which index that is.
fn plan_output_key(expr: &Expr, out_names: &[String], width: usize) -> Option<usize> {
    match expr {
        Expr::Literal(Value::Int(i)) => {
            let idx = (*i as usize).checked_sub(1)?;
            (idx < width).then_some(idx)
        }
        Expr::Column {
            qualifier: None,
            name,
        } => out_names.iter().position(|n| n.eq_ignore_ascii_case(name)),
        _ => None,
    }
}

/// Resolve an ORDER BY expression against the projected output row:
/// positional (`ORDER BY 2`) or by output name/alias.
fn output_key(expr: &Expr, out_row: &Row, out_names: &[String]) -> Option<Value> {
    plan_output_key(expr, out_names, out_row.len()).and_then(|i| out_row.get(i).cloned())
}

/// Infer the output schema: static expression typing refined by the first
/// non-null value actually produced.
fn output_schema(items: &[(Expr, String)], input: &Schema, rows: &[Row]) -> Schema {
    let mut cols = Vec::with_capacity(items.len());
    for (i, (expr, name)) in items.iter().enumerate() {
        let from_rows = rows.iter().find_map(|r| value_type(&r[i]));
        let dtype = from_rows
            .or_else(|| infer_type(expr, input))
            .unwrap_or(DataType::Str);
        cols.push(Column::new(name.clone(), dtype));
    }
    Schema::new(cols)
}

fn value_type(v: &Value) -> Option<DataType> {
    match v {
        Value::Null => None,
        Value::Int(_) => Some(DataType::Int),
        Value::Float(_) => Some(DataType::Float),
        Value::Str(_) => Some(DataType::Str),
        Value::Bool(_) => Some(DataType::Bool),
        Value::Date(_) => Some(DataType::Date),
    }
}

/// Best-effort static type of an expression.
pub fn infer_type(expr: &Expr, input: &Schema) -> Option<DataType> {
    match expr {
        Expr::Literal(v) => value_type(v),
        Expr::Column { qualifier, name } => input
            .resolve(qualifier.as_deref(), name)
            .ok()
            .map(|i| input.column(i).dtype),
        Expr::HostVar(_) | Expr::ScalarSubquery(_) => None,
        Expr::NextVal(_) => Some(DataType::Int),
        Expr::Unary { expr, .. } => infer_type(expr, input),
        Expr::Binary { left, op, right } => match op {
            BinOp::And
            | BinOp::Or
            | BinOp::Eq
            | BinOp::NotEq
            | BinOp::Lt
            | BinOp::LtEq
            | BinOp::Gt
            | BinOp::GtEq => Some(DataType::Bool),
            BinOp::Concat => Some(DataType::Str),
            BinOp::Div => Some(DataType::Float),
            _ => match (infer_type(left, input), infer_type(right, input)) {
                (Some(DataType::Float), _) | (_, Some(DataType::Float)) => Some(DataType::Float),
                (Some(DataType::Date), _) => Some(DataType::Date),
                (a, _) => a,
            },
        },
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::IsNull { .. }
        | Expr::Like { .. }
        | Expr::Exists { .. }
        | Expr::InSubquery { .. } => Some(DataType::Bool),
        Expr::Func { name, args } => match name.to_ascii_uppercase().as_str() {
            "UPPER" | "LOWER" => Some(DataType::Str),
            "LENGTH" | "FLOOR" | "CEIL" | "CEILING" => Some(DataType::Int),
            "ROUND" => Some(DataType::Float),
            "ABS" | "COALESCE" => args.first().and_then(|a| infer_type(a, input)),
            _ => None,
        },
        Expr::Aggregate { func, arg, .. } => match func {
            AggFunc::Count => Some(DataType::Int),
            AggFunc::Avg => Some(DataType::Float),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                arg.as_ref().and_then(|a| infer_type(a, input))
            }
        },
        Expr::Case { branches, .. } => branches.first().and_then(|(_, v)| infer_type(v, input)),
        Expr::Cast { dtype, .. } => Some(*dtype),
    }
}

// The QueryCtx impl for Database lives in engine.rs; select execution only
// uses it through the trait.
#[allow(unused)]
fn _assert_ctx_impl(db: &mut Database) -> &mut dyn QueryCtx {
    db
}
