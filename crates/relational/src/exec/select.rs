//! SELECT execution: scan/join → filter → group/aggregate → project →
//! distinct → order → limit, all fully materialised.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::engine::Database;
use crate::error::{Error, Result};
use crate::exec::join::{conjuncts, filter_relation, join_factors, resolves_in, BaseRef, Relation};
use crate::expr::compile::{ExecCounter, ExecMode, SiteEval, SqlExec};
use crate::expr::eval::{eval_grouped, QueryCtx};
use crate::expr::vector::{expr_vector_safe, VectorPlan, VECTOR_BATCH_ROWS};
use crate::expr::{AggFunc, BinOp, Expr};
use crate::planner::PlannerMode;
use crate::resultset::ResultSet;
use crate::row::Row;
use crate::sql::ast::{JoinKind, OrderItem, SelectItem, SelectStmt, SetOpKind, TableSource};
use crate::types::{Column, DataType, Schema};
use crate::value::Value;

/// Execute a SELECT against the database.
pub fn run_select(db: &mut Database, stmt: &SelectStmt) -> Result<ResultSet> {
    if stmt.set_op.is_some() {
        return run_set_op(db, stmt);
    }
    run_select_arm(db, stmt, true)
}

/// 64-bit hash of a row, used with candidate-index buckets for
/// clone-free DISTINCT / set-operation dedup.
fn row_hash(row: &Row) -> u64 {
    let mut h = DefaultHasher::new();
    row.hash(&mut h);
    h.finish()
}

/// Whether hash-dedup sites (DISTINCT, set operations) run their hashing
/// pass batch-at-a-time. They evaluate no expression programs, so under
/// `auto` the decision defers to the compiled-SQL knob, mirroring the
/// gate in [`VectorPlan::plan`].
fn batched_dedup(ctx: &mut dyn QueryCtx) -> bool {
    match ctx.exec() {
        ExecMode::Vector => true,
        ExecMode::Row => false,
        ExecMode::Auto => ctx.sqlexec().use_compiled(),
    }
}

/// Hash every row of a dedup site into a column — chunked by
/// [`VECTOR_BATCH_ROWS`] (and counted as vector batches) on the vector
/// path, row-at-a-time otherwise. Both paths produce identical hashes.
fn row_hash_column<T>(rows: &[T], key: impl Fn(&T) -> &Row, ctx: &mut dyn QueryCtx) -> Vec<u64> {
    let mut hashes = Vec::with_capacity(rows.len());
    if batched_dedup(ctx) {
        for chunk in rows.chunks(VECTOR_BATCH_ROWS) {
            ctx.bump(ExecCounter::VectorBatches, 1);
            ctx.bump(ExecCounter::VectorRows, chunk.len() as u64);
            hashes.extend(chunk.iter().map(|r| row_hash(key(r))));
        }
    } else {
        hashes.extend(rows.iter().map(|r| row_hash(key(r))));
    }
    hashes
}

/// Keep the first occurrence of each distinct row. Rows are moved, never
/// cloned: the seen-set stores hashes and indices into the output.
fn dedup_rows(rows: Vec<Row>, ctx: &mut dyn QueryCtx) -> Vec<Row> {
    let hashes = row_hash_column(&rows, |r| r, ctx);
    let mut seen: HashMap<u64, Vec<usize>> = HashMap::with_capacity(rows.len());
    let mut out: Vec<Row> = Vec::with_capacity(rows.len());
    for (row, h) in rows.into_iter().zip(hashes) {
        let bucket = seen.entry(h).or_default();
        if bucket.iter().any(|&i| out[i] == row) {
            continue;
        }
        bucket.push(out.len());
        out.push(row);
    }
    out
}

/// Execute a SELECT combined with UNION/INTERSECT/EXCEPT: evaluate both
/// sides, combine with SQL set semantics, then apply the trailing
/// ORDER BY / LIMIT to the combined rows. The left arm is the statement
/// itself minus its set-op tail, borrowed directly (no clone).
fn run_set_op(db: &mut Database, stmt: &SelectStmt) -> Result<ResultSet> {
    let (kind, rhs) = stmt.set_op.as_ref().expect("checked by run_select");
    let left = run_select_arm(db, stmt, false)?;
    let right = run_select(db, rhs)?;
    if left.schema().len() != right.schema().len() {
        return Err(Error::Arity {
            expected: left.schema().len(),
            got: right.schema().len(),
        });
    }
    let schema = left.schema().clone();
    let mut rows: Vec<Row> = match kind {
        SetOpKind::UnionAll => {
            let mut rows = left.into_rows();
            rows.extend(right.into_rows());
            rows
        }
        SetOpKind::Union => {
            let mut rows = left.into_rows();
            rows.extend(right.into_rows());
            dedup_rows(rows, db)
        }
        SetOpKind::Intersect | SetOpKind::Except => {
            let right_rows = right.into_rows();
            let mut membership: HashMap<u64, Vec<usize>> = HashMap::with_capacity(right_rows.len());
            for (i, r) in right_rows.iter().enumerate() {
                membership.entry(row_hash(r)).or_default().push(i);
            }
            let keep_members = matches!(kind, SetOpKind::Intersect);
            let mut kept = left.into_rows();
            kept.retain(|r| {
                let member = membership
                    .get(&row_hash(r))
                    .is_some_and(|b| b.iter().any(|&i| right_rows[i] == *r));
                member == keep_members
            });
            dedup_rows(kept, db)
        }
    };
    // Trailing ORDER BY: output positions or column names only.
    if !stmt.order_by.is_empty() {
        let names: Vec<String> = schema.columns().iter().map(|c| c.name.clone()).collect();
        let mut keyed: Vec<(Row, Vec<Value>)> = Vec::with_capacity(rows.len());
        for r in rows {
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for o in &stmt.order_by {
                keys.push(output_key(&o.expr, &r, &names).ok_or_else(|| {
                    Error::unsupported(
                        "ORDER BY after a set operation must reference output columns",
                    )
                })?);
            }
            keyed.push((r, keys));
        }
        let dirs: Vec<bool> = stmt.order_by.iter().map(|o| o.asc).collect();
        keyed.sort_by(|(_, ka), (_, kb)| {
            for ((a, b), asc) in ka.iter().zip(kb.iter()).zip(&dirs) {
                let ord = a.total_cmp(b);
                if ord != std::cmp::Ordering::Equal {
                    return if *asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = keyed.into_iter().map(|(r, _)| r).collect();
    }
    if let Some(l) = stmt.limit {
        rows.truncate(l as usize);
    }
    Ok(ResultSet::new(schema, rows))
}

/// Run one SELECT body. `with_tail` applies the trailing ORDER BY /
/// LIMIT; the left arm of a set operation passes `false` (the tail
/// belongs to the combined result), which lets `run_set_op` borrow the
/// arm from the original statement instead of deep-cloning it.
fn run_select_arm(db: &mut Database, stmt: &SelectStmt, with_tail: bool) -> Result<ResultSet> {
    let order_by: &[OrderItem] = if with_tail { &stmt.order_by } else { &[] };
    let limit = if with_tail { stmt.limit } else { None };

    let mut where_conjuncts = stmt
        .where_clause
        .as_ref()
        .map(|w| conjuncts(w))
        .unwrap_or_default();

    // 1. FROM: materialise factors, plan joins, push filters. On the
    // vector path a single-table FROM first tries the fused scan+filter,
    // which evaluates the leading pushable conjunct over the base
    // table's rows *before* they are cloned into a relation (consuming
    // that conjunct from `where_conjuncts`).
    let mut factors = Vec::with_capacity(stmt.from.len());
    let fused = match stmt.from.as_slice() {
        [tref] if tref.joins.is_empty() => fused_scan(
            db,
            &tref.source,
            tref.alias.as_deref(),
            &mut where_conjuncts,
        )?,
        _ => None,
    };
    if let Some(rel) = fused {
        factors.push(rel);
    } else {
        for tref in &stmt.from {
            let mut current = materialize_factor(db, &tref.source, tref.alias.as_deref())?;
            // Explicit JOIN ... ON chain on this factor.
            for join in &tref.joins {
                let right = materialize_factor(db, &join.source, join.alias.as_deref())?;
                current = explicit_join(db, current, right, join.kind, join.on.as_ref())?;
            }
            factors.push(current);
        }
    }

    let (mut input, residual) = if factors.is_empty() {
        (Relation::unit(), where_conjuncts)
    } else {
        join_factors(factors, where_conjuncts, db)?
    };
    if let Some(pred) = Expr::conjoin(residual.into_iter().cloned()) {
        filter_relation(&mut input, &pred, db)?;
    }

    // 2. Expand projection items.
    let items = expand_items(&stmt.items, &input.schema)?;

    let has_agg = items.iter().any(|(e, _)| e.contains_aggregate())
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());
    let grouped = !stmt.group_by.is_empty() || has_agg;

    // 3/4. Evaluate rows (grouped or per-row) together with sort keys.
    let out_names: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
    let mut projected: Vec<(Row, Vec<Value>)> = if grouped {
        run_grouped(db, &input, stmt, order_by, &items, &out_names)?
    } else {
        if stmt.having.is_some() {
            return Err(Error::Aggregate {
                message: "HAVING requires GROUP BY or aggregates".into(),
            });
        }
        // Order keys naming an output position/alias read the projected
        // row; the rest evaluate against the input row. Decided once —
        // the decision is row-independent.
        let order_plan: Vec<Option<usize>> = order_by
            .iter()
            .map(|o| plan_output_key(&o.expr, &out_names, items.len()))
            .collect();
        let input_keys: Vec<&Expr> = order_by
            .iter()
            .zip(&order_plan)
            .filter(|(_, p)| p.is_none())
            .map(|(o, _)| &o.expr)
            .collect();
        // Vector path: one program per projection item and input-order
        // key, evaluated batch-at-a-time into value columns, then pivoted
        // into output rows. Program order matches the row loop's per-row
        // evaluation order, so the first error is the same on both paths.
        let exprs: Vec<&Expr> = items
            .iter()
            .map(|(e, _)| e)
            .chain(input_keys.iter().copied())
            .collect();
        if let Some(mut plan) = VectorPlan::plan(&exprs, &input.schema, db) {
            let mut cols: Vec<Vec<Value>> = (0..exprs.len())
                .map(|_| Vec::with_capacity(input.rows.len()))
                .collect();
            plan.eval_columns(&input.rows, db, &mut cols)?;
            let mut out = Vec::with_capacity(input.rows.len());
            for r in 0..input.rows.len() {
                let mut o = Vec::with_capacity(items.len());
                for c in cols[..items.len()].iter_mut() {
                    o.push(std::mem::replace(&mut c[r], Value::Null));
                }
                let mut keys = Vec::with_capacity(order_plan.len());
                let mut ki = items.len();
                for p in &order_plan {
                    keys.push(match p {
                        Some(i) => o[*i].clone(),
                        None => {
                            ki += 1;
                            std::mem::replace(&mut cols[ki - 1][r], Value::Null)
                        }
                    });
                }
                out.push((o, keys));
            }
            out
        } else {
            // Plan every projection and order-key expression once; the
            // row loop then runs flat programs (or the interpreter, per
            // the session's sqlexec mode) with a reused stack.
            let item_evals: Vec<SiteEval> = items
                .iter()
                .map(|(e, _)| SiteEval::plan(e, &input.schema, db))
                .collect();
            let order_evals: Vec<OrderSource> = order_by
                .iter()
                .zip(&order_plan)
                .map(|(o, p)| match p {
                    Some(idx) => OrderSource::Output(*idx),
                    None => OrderSource::Input(SiteEval::plan(&o.expr, &input.schema, db)),
                })
                .collect();
            let mut stack = Vec::new();
            let mut out = Vec::with_capacity(input.rows.len());
            for row in &input.rows {
                let mut o = Vec::with_capacity(items.len());
                for ev in &item_evals {
                    o.push(ev.eval(&input.schema, row, db, &mut stack)?);
                }
                let mut keys = Vec::with_capacity(order_evals.len());
                for src in &order_evals {
                    keys.push(match src {
                        OrderSource::Output(i) => o[*i].clone(),
                        OrderSource::Input(ev) => ev.eval(&input.schema, row, db, &mut stack)?,
                    });
                }
                out.push((o, keys));
            }
            out
        }
    };

    // 5. DISTINCT — hashed row-index buckets; rows move, never clone.
    if stmt.distinct {
        let hashes = row_hash_column(&projected, |p| &p.0, db);
        let mut seen: HashMap<u64, Vec<usize>> = HashMap::with_capacity(projected.len());
        let mut kept: Vec<(Row, Vec<Value>)> = Vec::with_capacity(projected.len());
        for ((row, keys), h) in projected.into_iter().zip(hashes) {
            let bucket = seen.entry(h).or_default();
            if bucket.iter().any(|&i| kept[i].0 == row) {
                continue;
            }
            bucket.push(kept.len());
            kept.push((row, keys));
        }
        projected = kept;
    }

    // 6. ORDER BY.
    if !order_by.is_empty() {
        let dirs: Vec<bool> = order_by.iter().map(|o| o.asc).collect();
        projected.sort_by(|(_, ka), (_, kb)| {
            for ((a, b), asc) in ka.iter().zip(kb.iter()).zip(&dirs) {
                let ord = a.total_cmp(b);
                if ord != std::cmp::Ordering::Equal {
                    return if *asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // 7. LIMIT.
    if let Some(l) = limit {
        projected.truncate(l as usize);
    }

    let rows: Vec<Row> = projected.into_iter().map(|(r, _)| r).collect();
    let schema = output_schema(&items, &input.schema, &rows);
    let rs = ResultSet::new(schema, rows);

    // 8. INTO :var — store the scalar on the session.
    if let Some(var) = &stmt.into_var {
        let v = rs.scalar().cloned().ok_or_else(|| Error::ScalarSubquery {
            message: format!(
                "SELECT INTO :{var} requires a 1x1 result, got {}x{}",
                rs.len(),
                rs.schema().len()
            ),
        })?;
        db.set_var(var, v);
    }
    Ok(rs)
}

/// Materialise one table factor (named table, view or derived table),
/// applying its alias as the column qualifier.
fn materialize_factor(
    db: &mut Database,
    source: &TableSource,
    alias: Option<&str>,
) -> Result<Relation> {
    let base = match source {
        TableSource::Named(name) => materialize_named(db, name)?,
        TableSource::Subquery(q) => {
            let rs = run_select(db, q)?;
            Relation {
                schema: rs.schema().clone(),
                rows: rs.into_rows(),
                base: None,
            }
        }
    };
    let qualifier: Option<String> = match (alias, source) {
        (Some(a), _) => Some(a.to_string()),
        (None, TableSource::Named(n)) => Some(n.clone()),
        (None, TableSource::Subquery(_)) => None,
    };
    // Re-qualifying columns keeps positions intact, so base-table
    // provenance survives the aliasing step.
    Ok(Relation {
        schema: match &qualifier {
            Some(q) => base.schema.with_qualifier(q),
            None => base.schema,
        },
        rows: base.rows,
        base: base.base,
    })
}

/// Evaluate an explicit `[LEFT] JOIN ... ON ...`: nested-loop with the ON
/// predicate (the comma-join path keeps its hash-join planning; explicit
/// joins appear in user queries, not the generated mining programs).
fn explicit_join(
    db: &mut Database,
    left: Relation,
    right: Relation,
    kind: JoinKind,
    on: Option<&Expr>,
) -> Result<Relation> {
    let schema = left.schema.join(&right.schema);
    let on_eval = on.map(|pred| SiteEval::plan(pred, &schema, db));
    let null_right: Row = vec![Value::Null; right.schema.len()];
    let mut stack = Vec::new();
    // One scratch combined row, reused per pair; cloned into the output
    // only when the pair survives the ON predicate.
    let mut combined: Row = Vec::with_capacity(schema.len());
    let mut rows = Vec::new();
    for lrow in &left.rows {
        let mut matched = false;
        for rrow in &right.rows {
            combined.clear();
            combined.extend_from_slice(lrow);
            combined.extend_from_slice(rrow);
            let keep = match &on_eval {
                None => true,
                Some(pred) => pred.eval(&schema, &combined, db, &mut stack)?.is_true(),
            };
            if keep {
                matched = true;
                rows.push(combined.clone());
            }
        }
        if !matched && kind == JoinKind::LeftOuter {
            let mut r = Vec::with_capacity(schema.len());
            r.extend_from_slice(lrow);
            r.extend_from_slice(&null_right);
            rows.push(r);
        }
    }
    db.bump(ExecCounter::RowsJoined, rows.len() as u64);
    Ok(Relation {
        schema,
        rows,
        base: None,
    })
}

/// A [`QueryCtx`] detached from the database: it mirrors the engine's
/// execution knobs and buffers counter bumps for later replay. The fused
/// scan needs it because the vector machine evaluates while the table's
/// rows are still borrowed from the catalog, so the database itself
/// cannot serve as the (mutable) context. Subqueries, sequences and host
/// variables are unreachable here — the caller gates on
/// [`expr_vector_safe`] plus a host-variable check — so those arms error
/// rather than carry engine state.
struct DetachedScanCtx {
    sqlexec: SqlExec,
    exec: ExecMode,
    bumps: Vec<(ExecCounter, u64)>,
}

impl QueryCtx for DetachedScanCtx {
    fn run_subquery(&mut self, _query: &SelectStmt) -> Result<ResultSet> {
        Err(Error::unsupported("subquery in a fused scan predicate"))
    }
    fn nextval(&mut self, _sequence: &str) -> Result<i64> {
        Err(Error::unsupported(
            "sequence draw in a fused scan predicate",
        ))
    }
    fn host_var(&self, _name: &str) -> Result<Value> {
        Err(Error::unsupported(
            "host variable in a fused scan predicate",
        ))
    }
    fn sqlexec(&self) -> SqlExec {
        self.sqlexec
    }
    fn exec(&self) -> ExecMode {
        self.exec
    }
    fn bump(&mut self, counter: ExecCounter, n: u64) {
        self.bumps.push((counter, n));
    }
}

/// Fused scan+filter: evaluate the leading pushable WHERE conjunct over
/// a base table's rows batch-at-a-time *before* cloning them into a
/// relation, so dropped rows (and their heap payloads) are never
/// materialised. This is where the vector path's headline win lives —
/// the row path must copy every row out of the catalog first and filter
/// the copy.
///
/// Engages only when every observable stays identical to
/// materialise-then-filter:
///
/// * single-table FROM over a named base table (views re-run queries);
/// * the conjunct is the *first* one that resolves in the scan's schema
///   — exactly the first predicate the row path would evaluate, so
///   error order is preserved (later conjuncts still run through
///   [`join_factors`] / [`filter_relation`] on the shrunken relation);
/// * the conjunct is vector-safe and host-variable-free, so evaluation
///   needs no engine state (see [`DetachedScanCtx`]).
///
/// Returns `None` (and leaves `conjuncts` untouched) whenever any gate
/// fails; the caller then materialises the full table as before. On
/// success the consumed conjunct is removed from `conjuncts`.
fn fused_scan<'a>(
    db: &mut Database,
    source: &TableSource,
    alias: Option<&str>,
    conjuncts: &mut Vec<&'a Expr>,
) -> Result<Option<Relation>> {
    let TableSource::Named(name) = source else {
        return Ok(None);
    };
    let exec = db.exec();
    let sqlexec = db.sqlexec();
    let engage = match exec {
        ExecMode::Row => false,
        ExecMode::Vector => true,
        ExecMode::Auto => sqlexec.use_compiled(),
    };
    if !engage || db.catalog().view(name).is_some() {
        return Ok(None);
    }
    let Ok(table) = db.catalog().table(name) else {
        return Ok(None); // let the normal path surface the error
    };
    let schema = table.schema().with_qualifier(alias.unwrap_or(name));
    let Some(lead) = conjuncts.iter().position(|c| resolves_in(c, &schema)) else {
        return Ok(None);
    };
    let pred = conjuncts[lead];
    let mut host_var = false;
    pred.walk(&mut |e| host_var |= matches!(e, Expr::HostVar(_)));
    if !expr_vector_safe(pred) || host_var {
        return Ok(None);
    }

    let mut local = DetachedScanCtx {
        sqlexec,
        exec,
        bumps: Vec::new(),
    };
    let (scanned, kept, eval) = {
        let table = db.catalog().table(name).expect("resolved above");
        let rows = table.rows();
        let Some(mut plan) = VectorPlan::plan(&[pred], &schema, &mut local) else {
            return Ok(None);
        };
        let mut verdicts = [Vec::with_capacity(rows.len())];
        let eval = plan.eval_columns(rows, &mut local, &mut verdicts);
        let kept: Vec<Row> = match &eval {
            Ok(()) => rows
                .iter()
                .zip(&verdicts[0])
                .filter(|(_, v)| v.is_true())
                .map(|(r, _)| r.clone())
                .collect(),
            Err(_) => Vec::new(),
        };
        (rows.len() as u64, kept, eval)
    };
    // Replay bookkeeping in the row path's order: the scan is counted
    // before a filter error surfaces, filtered rows only on success.
    db.bump(ExecCounter::RowsScanned, scanned);
    for (counter, n) in local.bumps {
        db.bump(counter, n);
    }
    eval?;
    db.bump(ExecCounter::RowsFiltered, scanned - kept.len() as u64);
    if db.planner() == PlannerMode::Cost {
        db.bump(ExecCounter::PlannerPushedFilters, 1);
    }
    conjuncts.remove(lead);
    Ok(Some(Relation {
        schema,
        rows: kept,
        base: None, // filtered: row positions no longer match the table
    }))
}

/// Materialise a named table or view. Base tables carry their provenance
/// (name + version) so downstream operators can consult table indexes;
/// views are re-evaluated queries and get none.
fn materialize_named(db: &mut Database, name: &str) -> Result<Relation> {
    if let Some(view) = db.catalog().view(name).cloned() {
        let rs = run_select(db, &view.query)?;
        return Ok(Relation {
            schema: rs.schema().clone(),
            rows: rs.into_rows(),
            base: None,
        });
    }
    let table = db.catalog().table(name)?;
    let relation = Relation {
        schema: table.schema().clone(),
        rows: table.rows().to_vec(),
        base: Some(BaseRef {
            table: table.name().to_string(),
            version: table.version(),
        }),
    };
    db.bump(ExecCounter::RowsScanned, relation.rows.len() as u64);
    Ok(relation)
}

/// Expand wildcards and name every projection item.
fn expand_items(items: &[SelectItem], input: &Schema) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for c in input.columns() {
                    out.push((
                        Expr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let idxs = input.columns_of(q);
                if idxs.is_empty() {
                    return Err(Error::UnknownColumn {
                        name: format!("{q}.*"),
                    });
                }
                for i in idxs {
                    let c = input.column(i);
                    out.push((
                        Expr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column { name, .. } => name.clone(),
                        other => other.to_sql(),
                    },
                };
                out.push((expr.clone(), name));
            }
        }
    }
    if out.is_empty() {
        return Err(Error::unsupported("empty projection list"));
    }
    Ok(out)
}

/// Grouped execution: hash rows into groups on the GROUP BY keys, filter
/// groups with HAVING, evaluate projections per group.
fn run_grouped(
    db: &mut Database,
    input: &Relation,
    stmt: &SelectStmt,
    order_by: &[OrderItem],
    items: &[(Expr, String)],
    out_names: &[String],
) -> Result<Vec<(Row, Vec<Value>)>> {
    // Access path: a GROUP BY whose keys are plain columns of an
    // untouched base-table snapshot is served by the engine's table
    // index on those columns — same buckets, same first-seen key order,
    // no per-row key evaluation. Any filter, join or view boundary
    // clears the provenance and falls back to the bucketing loop below.
    let key_refs: Vec<&Expr> = stmt.group_by.iter().collect();
    let index = if stmt.group_by.is_empty() {
        None
    } else {
        match (&input.base, input.key_positions(&key_refs)) {
            (Some(b), Some(cols)) => db.table_index(&b.table, b.version, &cols),
            _ => None,
        }
    };

    // Bucket row indices by key (unless the index already did).
    let mut fresh_buckets: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    let mut fresh_order: Vec<Vec<Value>> = Vec::new(); // first-seen group order
    if index.is_none() {
        if stmt.group_by.is_empty() {
            fresh_buckets.insert(Vec::new(), (0..input.rows.len()).collect());
            fresh_order.push(Vec::new());
        } else if let Some(mut plan) = VectorPlan::plan(&key_refs, &input.schema, db) {
            // Vector path: key columns batch-at-a-time, then one
            // bucketing pass. HAVING and the projection items stay on
            // the interpreter (`eval_grouped`) on both paths: aggregates
            // need whole-group context the flat programs cannot host.
            let mut cols: Vec<Vec<Value>> = (0..key_refs.len())
                .map(|_| Vec::with_capacity(input.rows.len()))
                .collect();
            plan.eval_columns(&input.rows, db, &mut cols)?;
            for i in 0..input.rows.len() {
                let key: Vec<Value> = cols
                    .iter_mut()
                    .map(|c| std::mem::replace(&mut c[i], Value::Null))
                    .collect();
                match fresh_buckets.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(i),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(vec![i]);
                        fresh_order.push(key);
                    }
                }
            }
        } else {
            // Key expressions are planned once for the per-row bucketing
            // loop.
            let key_evals: Vec<SiteEval> = stmt
                .group_by
                .iter()
                .map(|g| SiteEval::plan(g, &input.schema, db))
                .collect();
            let mut stack = Vec::new();
            for (i, row) in input.rows.iter().enumerate() {
                let mut key = Vec::with_capacity(key_evals.len());
                for g in &key_evals {
                    key.push(g.eval(&input.schema, row, db, &mut stack)?);
                }
                match fresh_buckets.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(i),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(vec![i]);
                        fresh_order.push(key);
                    }
                }
            }
        }
    }
    let (buckets, order) = match &index {
        Some(ix) => (&ix.map, &ix.order),
        None => (&fresh_buckets, &fresh_order),
    };

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let idxs = &buckets[key];
        let rows: Vec<&Row> = idxs.iter().map(|&i| &input.rows[i]).collect();
        if let Some(h) = &stmt.having {
            let keep = eval_grouped(h, &input.schema, &rows, &stmt.group_by, key, db)?;
            if !keep.is_true() {
                continue;
            }
        }
        let mut o = Vec::with_capacity(items.len());
        for (e, _) in items {
            o.push(eval_grouped(
                e,
                &input.schema,
                &rows,
                &stmt.group_by,
                key,
                db,
            )?);
        }
        // Order keys for the grouped row.
        let mut keys = Vec::with_capacity(order_by.len());
        for ord in order_by {
            if let Some(v) = output_key(&ord.expr, &o, out_names) {
                keys.push(v);
            } else {
                keys.push(eval_grouped(
                    &ord.expr,
                    &input.schema,
                    &rows,
                    &stmt.group_by,
                    key,
                    db,
                )?);
            }
        }
        out.push((o, keys));
    }
    Ok(out)
}

/// Where a non-grouped ORDER BY key comes from, decided once per
/// statement (the decision in [`plan_output_key`] is row-independent).
enum OrderSource<'e> {
    /// Index into the projected output row.
    Output(usize),
    /// Planned evaluator over the input row.
    Input(SiteEval<'e>),
}

/// The row-independent half of [`output_key`]: whether an ORDER BY
/// expression names an output position (`ORDER BY 2`) or an output
/// column/alias, and which index that is.
fn plan_output_key(expr: &Expr, out_names: &[String], width: usize) -> Option<usize> {
    match expr {
        Expr::Literal(Value::Int(i)) => {
            let idx = (*i as usize).checked_sub(1)?;
            (idx < width).then_some(idx)
        }
        Expr::Column {
            qualifier: None,
            name,
        } => out_names.iter().position(|n| n.eq_ignore_ascii_case(name)),
        _ => None,
    }
}

/// Resolve an ORDER BY expression against the projected output row:
/// positional (`ORDER BY 2`) or by output name/alias.
fn output_key(expr: &Expr, out_row: &Row, out_names: &[String]) -> Option<Value> {
    plan_output_key(expr, out_names, out_row.len()).and_then(|i| out_row.get(i).cloned())
}

/// Infer the output schema: static expression typing refined by the first
/// non-null value actually produced.
fn output_schema(items: &[(Expr, String)], input: &Schema, rows: &[Row]) -> Schema {
    let mut cols = Vec::with_capacity(items.len());
    for (i, (expr, name)) in items.iter().enumerate() {
        let from_rows = rows.iter().find_map(|r| value_type(&r[i]));
        let dtype = from_rows
            .or_else(|| infer_type(expr, input))
            .unwrap_or(DataType::Str);
        cols.push(Column::new(name.clone(), dtype));
    }
    Schema::new(cols)
}

fn value_type(v: &Value) -> Option<DataType> {
    match v {
        Value::Null => None,
        Value::Int(_) => Some(DataType::Int),
        Value::Float(_) => Some(DataType::Float),
        Value::Str(_) => Some(DataType::Str),
        Value::Bool(_) => Some(DataType::Bool),
        Value::Date(_) => Some(DataType::Date),
    }
}

/// Best-effort static type of an expression.
pub fn infer_type(expr: &Expr, input: &Schema) -> Option<DataType> {
    match expr {
        Expr::Literal(v) => value_type(v),
        Expr::Column { qualifier, name } => input
            .resolve(qualifier.as_deref(), name)
            .ok()
            .map(|i| input.column(i).dtype),
        Expr::HostVar(_) | Expr::ScalarSubquery(_) => None,
        Expr::NextVal(_) => Some(DataType::Int),
        Expr::Unary { expr, .. } => infer_type(expr, input),
        Expr::Binary { left, op, right } => match op {
            BinOp::And
            | BinOp::Or
            | BinOp::Eq
            | BinOp::NotEq
            | BinOp::Lt
            | BinOp::LtEq
            | BinOp::Gt
            | BinOp::GtEq => Some(DataType::Bool),
            BinOp::Concat => Some(DataType::Str),
            BinOp::Div => Some(DataType::Float),
            _ => match (infer_type(left, input), infer_type(right, input)) {
                (Some(DataType::Float), _) | (_, Some(DataType::Float)) => Some(DataType::Float),
                (Some(DataType::Date), _) => Some(DataType::Date),
                (a, _) => a,
            },
        },
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::IsNull { .. }
        | Expr::Like { .. }
        | Expr::Exists { .. }
        | Expr::InSubquery { .. } => Some(DataType::Bool),
        Expr::Func { name, args } => match name.to_ascii_uppercase().as_str() {
            "UPPER" | "LOWER" => Some(DataType::Str),
            "LENGTH" | "FLOOR" | "CEIL" | "CEILING" => Some(DataType::Int),
            "ROUND" => Some(DataType::Float),
            "ABS" | "COALESCE" => args.first().and_then(|a| infer_type(a, input)),
            _ => None,
        },
        Expr::Aggregate { func, arg, .. } => match func {
            AggFunc::Count => Some(DataType::Int),
            AggFunc::Avg => Some(DataType::Float),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                arg.as_ref().and_then(|a| infer_type(a, input))
            }
        },
        Expr::Case { branches, .. } => branches.first().and_then(|(_, v)| infer_type(v, input)),
        Expr::Cast { dtype, .. } => Some(*dtype),
    }
}

// The QueryCtx impl for Database lives in engine.rs; select execution only
// uses it through the trait.
#[allow(unused)]
fn _assert_ctx_impl(db: &mut Database) -> &mut dyn QueryCtx {
    db
}
