//! SELECT execution: scan/join → filter → group/aggregate → project →
//! distinct → order → limit, all fully materialised.

use std::collections::HashMap;

use crate::engine::Database;
use crate::error::{Error, Result};
use crate::exec::join::{conjuncts, filter_relation, join_factors, Relation};
use crate::expr::eval::{eval_expr, eval_grouped, QueryCtx};
use crate::expr::{AggFunc, BinOp, Expr};
use crate::resultset::ResultSet;
use crate::row::Row;
use crate::sql::ast::{JoinKind, SelectItem, SelectStmt, SetOpKind, TableSource};
use crate::types::{Column, DataType, Schema};
use crate::value::Value;

/// Execute a SELECT against the database.
pub fn run_select(db: &mut Database, stmt: &SelectStmt) -> Result<ResultSet> {
    if stmt.set_op.is_some() {
        return run_set_op(db, stmt);
    }
    run_plain_select(db, stmt)
}

/// Execute a SELECT combined with UNION/INTERSECT/EXCEPT: evaluate both
/// sides, combine with SQL set semantics, then apply the trailing
/// ORDER BY / LIMIT to the combined rows.
fn run_set_op(db: &mut Database, stmt: &SelectStmt) -> Result<ResultSet> {
    let (kind, rhs) = stmt.set_op.as_ref().expect("checked by run_select");
    let mut left_stmt = stmt.clone();
    left_stmt.set_op = None;
    left_stmt.order_by = Vec::new();
    left_stmt.limit = None;
    let left = run_plain_select(db, &left_stmt)?;
    let right = run_select(db, rhs)?;
    if left.schema().len() != right.schema().len() {
        return Err(Error::Arity {
            expected: left.schema().len(),
            got: right.schema().len(),
        });
    }
    let schema = left.schema().clone();
    let mut rows: Vec<Row> = match kind {
        SetOpKind::UnionAll => {
            let mut rows = left.into_rows();
            rows.extend(right.into_rows());
            rows
        }
        SetOpKind::Union => {
            let mut seen: HashMap<Row, ()> = HashMap::new();
            let mut rows = Vec::new();
            for r in left.into_rows().into_iter().chain(right.into_rows()) {
                if seen.insert(r.clone(), ()).is_none() {
                    rows.push(r);
                }
            }
            rows
        }
        SetOpKind::Intersect => {
            let right_set: HashMap<Row, ()> =
                right.into_rows().into_iter().map(|r| (r, ())).collect();
            let mut seen: HashMap<Row, ()> = HashMap::new();
            left.into_rows()
                .into_iter()
                .filter(|r| right_set.contains_key(r) && seen.insert(r.clone(), ()).is_none())
                .collect()
        }
        SetOpKind::Except => {
            let right_set: HashMap<Row, ()> =
                right.into_rows().into_iter().map(|r| (r, ())).collect();
            let mut seen: HashMap<Row, ()> = HashMap::new();
            left.into_rows()
                .into_iter()
                .filter(|r| !right_set.contains_key(r) && seen.insert(r.clone(), ()).is_none())
                .collect()
        }
    };
    // Trailing ORDER BY: output positions or column names only.
    if !stmt.order_by.is_empty() {
        let names: Vec<String> = schema.columns().iter().map(|c| c.name.clone()).collect();
        let mut keyed: Vec<(Row, Vec<Value>)> = Vec::with_capacity(rows.len());
        for r in rows {
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for o in &stmt.order_by {
                keys.push(output_key(&o.expr, &r, &names).ok_or_else(|| {
                    Error::unsupported(
                        "ORDER BY after a set operation must reference output columns",
                    )
                })?);
            }
            keyed.push((r, keys));
        }
        let dirs: Vec<bool> = stmt.order_by.iter().map(|o| o.asc).collect();
        keyed.sort_by(|(_, ka), (_, kb)| {
            for ((a, b), asc) in ka.iter().zip(kb.iter()).zip(&dirs) {
                let ord = a.total_cmp(b);
                if ord != std::cmp::Ordering::Equal {
                    return if *asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = keyed.into_iter().map(|(r, _)| r).collect();
    }
    if let Some(l) = stmt.limit {
        rows.truncate(l as usize);
    }
    Ok(ResultSet::new(schema, rows))
}

fn run_plain_select(db: &mut Database, stmt: &SelectStmt) -> Result<ResultSet> {
    // 1. FROM: materialise factors, plan joins, push filters.
    let mut factors = Vec::with_capacity(stmt.from.len());
    for tref in &stmt.from {
        let mut current = materialize_factor(db, &tref.source, tref.alias.as_deref())?;
        // Explicit JOIN ... ON chain on this factor.
        for join in &tref.joins {
            let right = materialize_factor(db, &join.source, join.alias.as_deref())?;
            current = explicit_join(db, current, right, join.kind, join.on.as_ref())?;
        }
        factors.push(current);
    }

    let where_conjuncts = stmt
        .where_clause
        .as_ref()
        .map(|w| conjuncts(w))
        .unwrap_or_default();

    let (mut input, residual) = if factors.is_empty() {
        (Relation::unit(), where_conjuncts)
    } else {
        join_factors(factors, where_conjuncts, db)?
    };
    if let Some(pred) = Expr::conjoin(residual.into_iter().cloned()) {
        filter_relation(&mut input, &pred, db)?;
    }

    // 2. Expand projection items.
    let items = expand_items(&stmt.items, &input.schema)?;

    let has_agg = items.iter().any(|(e, _)| e.contains_aggregate())
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());
    let grouped = !stmt.group_by.is_empty() || has_agg;

    // 3/4. Evaluate rows (grouped or per-row) together with sort keys.
    let out_names: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
    let mut projected: Vec<(Row, Vec<Value>)> = if grouped {
        run_grouped(db, &input, stmt, &items, &out_names)?
    } else {
        if stmt.having.is_some() {
            return Err(Error::Aggregate {
                message: "HAVING requires GROUP BY or aggregates".into(),
            });
        }
        let mut out = Vec::with_capacity(input.rows.len());
        for row in &input.rows {
            let mut o = Vec::with_capacity(items.len());
            for (e, _) in &items {
                o.push(eval_expr(e, &input.schema, row, db)?);
            }
            let keys = order_keys_for_row(db, stmt, &input.schema, row, &o, &out_names)?;
            out.push((o, keys));
        }
        out
    };

    // 5. DISTINCT.
    if stmt.distinct {
        let mut seen: HashMap<Row, ()> = HashMap::with_capacity(projected.len());
        projected.retain(|(row, _)| seen.insert(row.clone(), ()).is_none());
    }

    // 6. ORDER BY.
    if !stmt.order_by.is_empty() {
        let dirs: Vec<bool> = stmt.order_by.iter().map(|o| o.asc).collect();
        projected.sort_by(|(_, ka), (_, kb)| {
            for ((a, b), asc) in ka.iter().zip(kb.iter()).zip(&dirs) {
                let ord = a.total_cmp(b);
                if ord != std::cmp::Ordering::Equal {
                    return if *asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // 7. LIMIT.
    if let Some(l) = stmt.limit {
        projected.truncate(l as usize);
    }

    let rows: Vec<Row> = projected.into_iter().map(|(r, _)| r).collect();
    let schema = output_schema(&items, &input.schema, &rows);
    let rs = ResultSet::new(schema, rows);

    // 8. INTO :var — store the scalar on the session.
    if let Some(var) = &stmt.into_var {
        let v = rs.scalar().cloned().ok_or_else(|| Error::ScalarSubquery {
            message: format!(
                "SELECT INTO :{var} requires a 1x1 result, got {}x{}",
                rs.len(),
                rs.schema().len()
            ),
        })?;
        db.set_var(var, v);
    }
    Ok(rs)
}

/// Materialise one table factor (named table, view or derived table),
/// applying its alias as the column qualifier.
fn materialize_factor(
    db: &mut Database,
    source: &TableSource,
    alias: Option<&str>,
) -> Result<Relation> {
    let base = match source {
        TableSource::Named(name) => materialize_named(db, name)?,
        TableSource::Subquery(q) => {
            let rs = run_select(db, q)?;
            Relation {
                schema: rs.schema().clone(),
                rows: rs.into_rows(),
            }
        }
    };
    let qualifier: Option<String> = match (alias, source) {
        (Some(a), _) => Some(a.to_string()),
        (None, TableSource::Named(n)) => Some(n.clone()),
        (None, TableSource::Subquery(_)) => None,
    };
    Ok(Relation {
        schema: match &qualifier {
            Some(q) => base.schema.with_qualifier(q),
            None => base.schema,
        },
        rows: base.rows,
    })
}

/// Evaluate an explicit `[LEFT] JOIN ... ON ...`: nested-loop with the ON
/// predicate (the comma-join path keeps its hash-join planning; explicit
/// joins appear in user queries, not the generated mining programs).
fn explicit_join(
    db: &mut Database,
    left: Relation,
    right: Relation,
    kind: JoinKind,
    on: Option<&Expr>,
) -> Result<Relation> {
    let schema = left.schema.join(&right.schema);
    let null_right: Row = vec![Value::Null; right.schema.len()];
    let mut rows = Vec::new();
    for lrow in &left.rows {
        let mut matched = false;
        for rrow in &right.rows {
            let mut combined = lrow.clone();
            combined.extend(rrow.iter().cloned());
            let keep = match on {
                None => true,
                Some(pred) => eval_expr(pred, &schema, &combined, db)?.is_true(),
            };
            if keep {
                matched = true;
                rows.push(combined);
            }
        }
        if !matched && kind == JoinKind::LeftOuter {
            let mut combined = lrow.clone();
            combined.extend(null_right.iter().cloned());
            rows.push(combined);
        }
    }
    Ok(Relation { schema, rows })
}

/// Materialise a named table or view.
fn materialize_named(db: &mut Database, name: &str) -> Result<Relation> {
    if let Some(view) = db.catalog().view(name).cloned() {
        let rs = run_select(db, &view.query)?;
        return Ok(Relation {
            schema: rs.schema().clone(),
            rows: rs.into_rows(),
        });
    }
    let table = db.catalog().table(name)?;
    Ok(Relation {
        schema: table.schema().clone(),
        rows: table.rows().to_vec(),
    })
}

/// Expand wildcards and name every projection item.
fn expand_items(items: &[SelectItem], input: &Schema) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for c in input.columns() {
                    out.push((
                        Expr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let idxs = input.columns_of(q);
                if idxs.is_empty() {
                    return Err(Error::UnknownColumn {
                        name: format!("{q}.*"),
                    });
                }
                for i in idxs {
                    let c = input.column(i);
                    out.push((
                        Expr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column { name, .. } => name.clone(),
                        other => other.to_sql(),
                    },
                };
                out.push((expr.clone(), name));
            }
        }
    }
    if out.is_empty() {
        return Err(Error::unsupported("empty projection list"));
    }
    Ok(out)
}

/// Grouped execution: hash rows into groups on the GROUP BY keys, filter
/// groups with HAVING, evaluate projections per group.
fn run_grouped(
    db: &mut Database,
    input: &Relation,
    stmt: &SelectStmt,
    items: &[(Expr, String)],
    out_names: &[String],
) -> Result<Vec<(Row, Vec<Value>)>> {
    // Bucket row indices by key.
    let mut buckets: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new(); // first-seen group order
    if stmt.group_by.is_empty() {
        buckets.insert(Vec::new(), (0..input.rows.len()).collect());
        order.push(Vec::new());
    } else {
        for (i, row) in input.rows.iter().enumerate() {
            let mut key = Vec::with_capacity(stmt.group_by.len());
            for g in &stmt.group_by {
                key.push(eval_expr(g, &input.schema, row, db)?);
            }
            match buckets.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(vec![i]);
                    order.push(key);
                }
            }
        }
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let idxs = &buckets[&key];
        let rows: Vec<&Row> = idxs.iter().map(|&i| &input.rows[i]).collect();
        if let Some(h) = &stmt.having {
            let keep = eval_grouped(h, &input.schema, &rows, &stmt.group_by, &key, db)?;
            if !keep.is_true() {
                continue;
            }
        }
        let mut o = Vec::with_capacity(items.len());
        for (e, _) in items {
            o.push(eval_grouped(
                e,
                &input.schema,
                &rows,
                &stmt.group_by,
                &key,
                db,
            )?);
        }
        // Order keys for the grouped row.
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for ord in &stmt.order_by {
            if let Some(v) = output_key(&ord.expr, &o, out_names) {
                keys.push(v);
            } else {
                keys.push(eval_grouped(
                    &ord.expr,
                    &input.schema,
                    &rows,
                    &stmt.group_by,
                    &key,
                    db,
                )?);
            }
        }
        out.push((o, keys));
    }
    Ok(out)
}

/// Resolve an ORDER BY expression against the projected output row:
/// positional (`ORDER BY 2`) or by output name/alias.
fn output_key(expr: &Expr, out_row: &Row, out_names: &[String]) -> Option<Value> {
    match expr {
        Expr::Literal(Value::Int(i)) => {
            let idx = (*i as usize).checked_sub(1)?;
            out_row.get(idx).cloned()
        }
        Expr::Column {
            qualifier: None,
            name,
        } => out_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .and_then(|i| out_row.get(i).cloned()),
        _ => None,
    }
}

fn order_keys_for_row(
    db: &mut Database,
    stmt: &SelectStmt,
    schema: &Schema,
    row: &Row,
    out_row: &Row,
    out_names: &[String],
) -> Result<Vec<Value>> {
    let mut keys = Vec::with_capacity(stmt.order_by.len());
    for ord in &stmt.order_by {
        if let Some(v) = output_key(&ord.expr, out_row, out_names) {
            keys.push(v);
        } else {
            keys.push(eval_expr(&ord.expr, schema, row, db)?);
        }
    }
    Ok(keys)
}

/// Infer the output schema: static expression typing refined by the first
/// non-null value actually produced.
fn output_schema(items: &[(Expr, String)], input: &Schema, rows: &[Row]) -> Schema {
    let mut cols = Vec::with_capacity(items.len());
    for (i, (expr, name)) in items.iter().enumerate() {
        let from_rows = rows.iter().find_map(|r| value_type(&r[i]));
        let dtype = from_rows
            .or_else(|| infer_type(expr, input))
            .unwrap_or(DataType::Str);
        cols.push(Column::new(name.clone(), dtype));
    }
    Schema::new(cols)
}

fn value_type(v: &Value) -> Option<DataType> {
    match v {
        Value::Null => None,
        Value::Int(_) => Some(DataType::Int),
        Value::Float(_) => Some(DataType::Float),
        Value::Str(_) => Some(DataType::Str),
        Value::Bool(_) => Some(DataType::Bool),
        Value::Date(_) => Some(DataType::Date),
    }
}

/// Best-effort static type of an expression.
pub fn infer_type(expr: &Expr, input: &Schema) -> Option<DataType> {
    match expr {
        Expr::Literal(v) => value_type(v),
        Expr::Column { qualifier, name } => input
            .resolve(qualifier.as_deref(), name)
            .ok()
            .map(|i| input.column(i).dtype),
        Expr::HostVar(_) | Expr::ScalarSubquery(_) => None,
        Expr::NextVal(_) => Some(DataType::Int),
        Expr::Unary { expr, .. } => infer_type(expr, input),
        Expr::Binary { left, op, right } => match op {
            BinOp::And
            | BinOp::Or
            | BinOp::Eq
            | BinOp::NotEq
            | BinOp::Lt
            | BinOp::LtEq
            | BinOp::Gt
            | BinOp::GtEq => Some(DataType::Bool),
            BinOp::Concat => Some(DataType::Str),
            BinOp::Div => Some(DataType::Float),
            _ => match (infer_type(left, input), infer_type(right, input)) {
                (Some(DataType::Float), _) | (_, Some(DataType::Float)) => Some(DataType::Float),
                (Some(DataType::Date), _) => Some(DataType::Date),
                (a, _) => a,
            },
        },
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::IsNull { .. }
        | Expr::Like { .. }
        | Expr::Exists { .. }
        | Expr::InSubquery { .. } => Some(DataType::Bool),
        Expr::Func { name, args } => match name.to_ascii_uppercase().as_str() {
            "UPPER" | "LOWER" => Some(DataType::Str),
            "LENGTH" | "FLOOR" | "CEIL" | "CEILING" => Some(DataType::Int),
            "ROUND" => Some(DataType::Float),
            "ABS" | "COALESCE" => args.first().and_then(|a| infer_type(a, input)),
            _ => None,
        },
        Expr::Aggregate { func, arg, .. } => match func {
            AggFunc::Count => Some(DataType::Int),
            AggFunc::Avg => Some(DataType::Float),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                arg.as_ref().and_then(|a| infer_type(a, input))
            }
        },
        Expr::Case { branches, .. } => branches.first().and_then(|(_, v)| infer_type(v, input)),
        Expr::Cast { dtype, .. } => Some(*dtype),
    }
}

// The QueryCtx impl for Database lives in engine.rs; select execution only
// uses it through the trait.
#[allow(unused)]
fn _assert_ctx_impl(db: &mut Database) -> &mut dyn QueryCtx {
    db
}
