//! The database engine: a catalog plus a SQL entry point.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::catalog::{Catalog, View};
use crate::error::{Error, Result};
use crate::exec::run_select;
use crate::expr::compile::{ExecCounter, ExecMode, SqlExec};
use crate::expr::eval::{eval_expr, QueryCtx};
use crate::expr::Expr;
use crate::index::{HashIndex, IndexLookup, IndexPolicy, IndexRegistry};
use crate::planner::PlannerMode;
use crate::resultset::ResultSet;
use crate::row::Row;
use crate::sequence::Sequence;
use crate::sql::ast::{InsertSource, SelectStmt, Statement};
use crate::sql::parser::{parse_statement, parse_statements};
use crate::storage::{PagedStore, StorageBackend, StorageConfig, StorageStats, WalFault};
use crate::table::Table;
use crate::types::{Column, Schema};
use crate::value::Value;

/// Counters exposed for benchmarking and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExecStats {
    /// Statements executed through [`Database::run_statement`].
    pub statements: u64,
    /// Rows inserted into base tables.
    pub rows_inserted: u64,
    /// Expression programs compiled by the SQL executor.
    pub programs_compiled: u64,
    /// Constant subtrees folded during expression compilation.
    pub exprs_const_folded: u64,
    /// Interpreter-fallback ops emitted by the compiler (subqueries).
    pub compile_fallback_ops: u64,
    /// Base-table rows fed into SELECT evaluation.
    pub rows_scanned: u64,
    /// Rows removed by WHERE / join-residual filters.
    pub rows_filtered: u64,
    /// Rows produced by join operators.
    pub rows_joined: u64,
    /// FROM lists planned by the cost-based planner (0 under naive).
    pub planner_plans: u64,
    /// Join steps moved off the naive left-to-right order (0 under naive).
    pub planner_reordered_joins: u64,
    /// WHERE conjuncts pushed beneath joins by the cost-based planner
    /// (0 under naive — the naive fold pushes too but does not account).
    pub planner_pushed_filters: u64,
    /// Accumulated |estimated − actual| join output rows (0 under naive).
    pub planner_est_rows_err: u64,
    /// Column batches evaluated on the vector path (0 under row exec).
    pub vector_batches: u64,
    /// Rows streamed through the vector path (0 under row exec).
    pub vector_rows: u64,
    /// Conditional jumps that narrowed a batch's selection vector.
    pub vector_sel_narrowings: u64,
    /// Batches row-looped under forced vector mode (unsafe programs).
    pub vector_fallback_batches: u64,
    /// Hash indexes built (lazily, on first use of a key column set).
    pub indexes_built: u64,
    /// Operators served by a live hash index instead of a rebuild.
    pub index_hits: u64,
    /// Index entries discarded because their table version went stale.
    pub index_invalidations: u64,
    /// Heap pages read by the paged storage backend (0 under memory).
    pub storage_page_reads: u64,
    /// Heap pages written by the paged storage backend (0 under memory).
    pub storage_page_writes: u64,
    /// Page-cache hits in the paged storage backend (0 under memory).
    pub storage_cache_hits: u64,
    /// Page-cache evictions in the paged storage backend (0 under memory).
    pub storage_cache_evictions: u64,
    /// Records appended to the write-ahead log (0 under memory).
    pub storage_wal_appends: u64,
    /// WAL fsyncs, one per committed transaction (0 under memory).
    pub storage_wal_fsyncs: u64,
    /// WAL recoveries performed at open (0 under memory).
    pub storage_recoveries: u64,
}

/// Result of executing one statement.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Rows inserted/deleted/updated (0 for DDL and SELECT).
    pub rows_affected: usize,
    /// Present for SELECT statements.
    pub result: Option<ResultSet>,
}

/// An in-memory SQL database: the "SQL server" of the tightly-coupled
/// architecture. Holds the catalog, session host variables and statistics.
///
/// ```
/// use relational::Database;
/// let mut db = Database::new();
/// db.execute("CREATE TABLE t (a INT, b VARCHAR)").unwrap();
/// db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
/// let rs = db.query("SELECT b FROM t WHERE a = 2").unwrap();
/// assert_eq!(rs.rows()[0][0].to_string(), "y");
/// ```
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    vars: HashMap<String, Value>,
    stats: ExecStats,
    sqlexec: SqlExec,
    exec: ExecMode,
    index_policy: IndexPolicy,
    planner: PlannerMode,
    indexes: IndexRegistry,
    storage_dir: Option<PathBuf>,
    storage_cfg: StorageConfig,
    store: Option<PagedStore>,
    /// Counters folded in from stores detached by a backend switch.
    storage_base: StorageStats,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Open a database on the durable paged backend rooted at `dir`
    /// (created if missing, recovered if a previous process crashed).
    /// Equivalent to [`Database::set_storage_dir`] followed by
    /// [`Database::set_storage`]`(StorageBackend::Paged)`.
    pub fn open_paged(dir: impl AsRef<Path>) -> Result<Database> {
        let mut db = Database::new();
        db.set_storage_dir(dir);
        db.set_storage(StorageBackend::Paged)?;
        Ok(db)
    }

    /// Read-only catalog access.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (programmatic table setup). Under the
    /// paged backend, mutations made here reach disk lazily, with the
    /// next executed statement or explicit [`Database::checkpoint`].
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Execution statistics so far (storage counters included).
    pub fn stats(&self) -> ExecStats {
        let mut stats = self.stats;
        let st = self.storage_stats();
        stats.storage_page_reads = st.page_reads;
        stats.storage_page_writes = st.page_writes;
        stats.storage_cache_hits = st.cache_hits;
        stats.storage_cache_evictions = st.cache_evictions;
        stats.storage_wal_appends = st.wal_appends;
        stats.storage_wal_fsyncs = st.wal_fsyncs;
        stats.storage_recoveries = st.recoveries;
        stats
    }

    /// Storage-layer work counters (all zero under the memory backend).
    pub fn storage_stats(&self) -> StorageStats {
        match &self.store {
            Some(store) => self.storage_base.merged(store.stats()),
            None => self.storage_base,
        }
    }

    /// The storage backend this database currently runs on.
    pub fn storage(&self) -> StorageBackend {
        if self.store.is_some() {
            StorageBackend::Paged
        } else {
            StorageBackend::Memory
        }
    }

    /// Set the directory the paged backend will use. Takes effect at the
    /// next switch to [`StorageBackend::Paged`].
    pub fn set_storage_dir(&mut self, dir: impl AsRef<Path>) {
        self.storage_dir = Some(dir.as_ref().to_path_buf());
    }

    /// Tune the paged backend (cache budget, checkpoint threshold).
    /// Takes effect at the next switch to [`StorageBackend::Paged`].
    pub fn set_storage_config(&mut self, cfg: StorageConfig) {
        self.storage_cfg = cfg;
    }

    /// Switch the storage backend.
    ///
    /// Switching to `Paged` opens (or creates) the store under the
    /// configured directory, recovering from its WAL if needed. When the
    /// store is empty the current in-memory catalog is written through;
    /// when the in-memory catalog is empty the stored one is loaded
    /// (with fresh version stamps). Both being non-empty is rejected —
    /// there is no merge story. Switching to `Memory` checkpoints and
    /// detaches the store; the catalog stays resident and the directory
    /// remains reopenable.
    pub fn set_storage(&mut self, backend: StorageBackend) -> Result<()> {
        match backend {
            StorageBackend::Paged => {
                if self.store.is_some() {
                    return Ok(());
                }
                let dir = self.storage_dir.clone().ok_or_else(|| {
                    Error::storage(
                        "the paged backend needs a directory; call set_storage_dir first",
                    )
                })?;
                let mut store = PagedStore::open(&dir, self.storage_cfg)?;
                let catalog_empty = self.catalog.is_empty();
                if store.is_empty() {
                    if !catalog_empty {
                        store.sync(&self.catalog)?;
                    }
                } else if catalog_empty {
                    self.catalog = store.load_catalog()?;
                } else {
                    return Err(Error::storage(format!(
                        "{} already contains a database; attach it from an empty \
                         Database or choose another directory",
                        dir.display()
                    )));
                }
                self.store = Some(store);
                Ok(())
            }
            StorageBackend::Memory => {
                let Some(mut store) = self.store.take() else {
                    return Ok(());
                };
                let result = store.sync(&self.catalog).and_then(|()| store.checkpoint());
                self.storage_base = self.storage_base.merged(store.stats());
                result
            }
        }
    }

    /// Flush all durable state: sync the catalog, write dirty pages to
    /// the heap, fsync, truncate the WAL. A no-op on the memory backend.
    pub fn checkpoint(&mut self) -> Result<()> {
        if let Some(store) = self.store.as_mut() {
            store.sync(&self.catalog)?;
            store.checkpoint()?;
        }
        Ok(())
    }

    /// Arm the WAL crash-injection hook on the attached store (tests).
    pub fn inject_wal_fault(&mut self, fault: Option<WalFault>) {
        if let Some(store) = self.store.as_mut() {
            store.set_fault(fault);
        }
    }

    /// Mirror the catalog to the paged store, if one is attached.
    fn sync_storage(&mut self) -> Result<()> {
        match self.store.as_mut() {
            Some(store) => store.sync(&self.catalog),
            None => Ok(()),
        }
    }

    /// Set the expression-execution strategy for subsequent statements
    /// (results are bit-identical for every choice; see [`SqlExec`]).
    pub fn set_sqlexec(&mut self, mode: SqlExec) {
        self.sqlexec = mode;
    }

    /// The current expression-execution strategy.
    pub fn sqlexec(&self) -> SqlExec {
        self.sqlexec
    }

    /// Set the row-flow strategy for subsequent statements: row-at-a-time
    /// or vectorized column batches (results are bit-identical for every
    /// choice; see [`ExecMode`]).
    pub fn set_exec(&mut self, mode: ExecMode) {
        self.exec = mode;
    }

    /// The current row-flow strategy.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// Set the access-path policy: whether the engine may build and reuse
    /// hash indexes over base tables (results are bit-identical either
    /// way; see [`IndexPolicy`]).
    pub fn set_index_policy(&mut self, policy: IndexPolicy) {
        self.index_policy = policy;
    }

    /// The current access-path policy.
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// Set the planner mode for subsequent statements (results are
    /// bit-identical for every choice; see [`PlannerMode`]).
    pub fn set_planner(&mut self, mode: PlannerMode) {
        self.planner = mode;
    }

    /// The current planner mode.
    pub fn planner_mode(&self) -> PlannerMode {
        self.planner
    }

    /// Number of live hash indexes in the registry (observability).
    pub fn live_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// Bind a host variable (`:name`).
    pub fn set_var(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_ascii_lowercase(), value);
    }

    /// Read a host variable.
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(&name.to_ascii_lowercase())
    }

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.run_statement(&stmt)
    }

    /// Parse and execute a `;`-separated script.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<ExecOutcome>> {
        let stmts = parse_statements(sql)?;
        stmts.iter().map(|s| self.run_statement(s)).collect()
    }

    /// Parse and execute a query, returning its result set.
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        match self.execute(sql)?.result {
            Some(rs) => Ok(rs),
            None => Err(Error::unsupported("statement did not produce rows")),
        }
    }

    /// Execute an already-parsed statement.
    ///
    /// Under the paged backend each statement is one storage
    /// transaction: after the in-memory dispatch succeeds, the catalog
    /// is mirrored to the store and WAL-committed (fsync included)
    /// before this returns — the statement boundary is the durability
    /// boundary.
    pub fn run_statement(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        let outcome = self.dispatch_statement(stmt)?;
        self.sync_storage()?;
        Ok(outcome)
    }

    fn dispatch_statement(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        self.stats.statements += 1;
        match stmt {
            Statement::Explain(inner) => {
                let text = crate::exec::explain::explain_statement(self, inner)?;
                let schema = Schema::new(vec![Column::new("plan", crate::types::DataType::Str)]);
                let rows = text
                    .lines()
                    .map(|l| vec![Value::Str(l.to_string())])
                    .collect();
                Ok(ExecOutcome {
                    rows_affected: 0,
                    result: Some(ResultSet::new(schema, rows)),
                })
            }
            Statement::Select(sel) => {
                let rs = run_select(self, sel)?;
                Ok(ExecOutcome {
                    rows_affected: 0,
                    result: Some(rs),
                })
            }
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                if *if_not_exists && self.catalog.has_table(name) {
                    return Ok(ExecOutcome {
                        rows_affected: 0,
                        result: None,
                    });
                }
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|(n, t)| Column::new(n.clone(), *t))
                        .collect(),
                );
                self.catalog
                    .create_table(Table::new(name.clone(), schema))?;
                self.indexes.purge_table(name);
                Ok(ExecOutcome {
                    rows_affected: 0,
                    result: None,
                })
            }
            Statement::CreateTableAs { name, query } => {
                let rs = run_select(self, query)?;
                let schema = rs.schema().unqualified();
                let mut table = Table::new(name.clone(), schema);
                let n = table.insert_all(rs.into_rows())?;
                self.stats.rows_inserted += n as u64;
                self.catalog.create_table(table)?;
                self.indexes.purge_table(name);
                Ok(ExecOutcome {
                    rows_affected: n,
                    result: None,
                })
            }
            Statement::CreateView { name, query } => {
                self.catalog.create_view(View {
                    name: name.clone(),
                    query: query.clone(),
                })?;
                Ok(ExecOutcome {
                    rows_affected: 0,
                    result: None,
                })
            }
            Statement::CreateSequence {
                name,
                start,
                increment,
            } => {
                self.catalog
                    .create_sequence(Sequence::new(name.clone(), *start, *increment))?;
                Ok(ExecOutcome {
                    rows_affected: 0,
                    result: None,
                })
            }
            Statement::DropTable { name, if_exists } => {
                self.catalog.drop_table(name, *if_exists)?;
                self.indexes.purge_table(name);
                Ok(ExecOutcome {
                    rows_affected: 0,
                    result: None,
                })
            }
            Statement::DropView { name, if_exists } => {
                self.catalog.drop_view(name, *if_exists)?;
                Ok(ExecOutcome {
                    rows_affected: 0,
                    result: None,
                })
            }
            Statement::DropSequence { name, if_exists } => {
                self.catalog.drop_sequence(name, *if_exists)?;
                Ok(ExecOutcome {
                    rows_affected: 0,
                    result: None,
                })
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => self.run_insert(table, columns.as_deref(), source),
            Statement::Delete {
                table,
                where_clause,
            } => self.run_delete(table, where_clause.as_ref()),
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => self.run_update(table, assignments, where_clause.as_ref()),
        }
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<ExecOutcome> {
        // Compute the incoming rows first (needs &mut self for NEXTVAL and
        // subqueries), then touch the target table.
        let incoming: Vec<Row> = match source {
            InsertSource::Values(rows) => {
                let empty_schema = Schema::default();
                let empty_row: Row = Vec::new();
                let mut out = Vec::with_capacity(rows.len());
                for exprs in rows {
                    let mut r = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        r.push(eval_expr(e, &empty_schema, &empty_row, self)?);
                    }
                    out.push(r);
                }
                out
            }
            InsertSource::Query(q) => run_select(self, q)?.into_rows(),
        };

        // Map through the explicit column list, if present.
        let target_schema = self.catalog.table(table)?.schema().clone();
        let mapped: Vec<Row> = match columns {
            None => incoming,
            Some(cols) => {
                let mut idxs = Vec::with_capacity(cols.len());
                for c in cols {
                    idxs.push(target_schema.resolve(None, c)?);
                }
                let mut out = Vec::with_capacity(incoming.len());
                for r in incoming {
                    if r.len() != idxs.len() {
                        return Err(Error::Arity {
                            expected: idxs.len(),
                            got: r.len(),
                        });
                    }
                    let mut full = vec![Value::Null; target_schema.len()];
                    for (v, &i) in r.into_iter().zip(&idxs) {
                        full[i] = v;
                    }
                    out.push(full);
                }
                out
            }
        };

        let t = self.catalog.table_mut(table)?;
        let n = t.insert_all(mapped)?;
        self.stats.rows_inserted += n as u64;
        Ok(ExecOutcome {
            rows_affected: n,
            result: None,
        })
    }

    fn run_delete(&mut self, table: &str, pred: Option<&Expr>) -> Result<ExecOutcome> {
        let schema = self.catalog.table(table)?.schema().clone();
        // Evaluate the predicate over a snapshot (needs &mut self for
        // subqueries), then remove in one masked mutation so the table's
        // change log records exactly the deleted rows.
        let rows: Vec<Row> = self.catalog.table(table)?.rows().to_vec();
        let mut mask = Vec::with_capacity(rows.len());
        for row in &rows {
            mask.push(match pred {
                None => true,
                Some(p) => eval_expr(p, &schema, row, self)?.is_true(),
            });
        }
        let removed = self.catalog.table_mut(table)?.delete_mask(&mask);
        Ok(ExecOutcome {
            rows_affected: removed,
            result: None,
        })
    }

    fn run_update(
        &mut self,
        table: &str,
        assignments: &[(String, Expr)],
        pred: Option<&Expr>,
    ) -> Result<ExecOutcome> {
        let schema = self.catalog.table(table)?.schema().clone();
        let mut idxs = Vec::with_capacity(assignments.len());
        for (c, _) in assignments {
            idxs.push(schema.resolve(None, c)?);
        }
        // Evaluate predicate and assignments over a snapshot (needs
        // &mut self for subqueries), then swap the matched rows in one
        // batch so the change log records the UPDATE as a tracked
        // delete+insert pair — downstream delta consumers (the mined-
        // result cache) can replay it instead of refusing the window.
        let rows: Vec<Row> = self.catalog.table(table)?.rows().to_vec();
        let mut changes: Vec<(usize, Row)> = Vec::new();
        for (at, row) in rows.iter().enumerate() {
            let matches = match pred {
                None => true,
                Some(p) => eval_expr(p, &schema, row, self)?.is_true(),
            };
            if !matches {
                continue;
            }
            let mut new_row = row.clone();
            let mut new_vals = Vec::with_capacity(assignments.len());
            for (_, e) in assignments {
                new_vals.push(eval_expr(e, &schema, row, self)?);
            }
            for (v, &i) in new_vals.into_iter().zip(&idxs) {
                new_row[i] = v;
            }
            changes.push((at, new_row));
        }
        let updated = self.catalog.table_mut(table)?.apply_updates(changes)?;
        Ok(ExecOutcome {
            rows_affected: updated,
            result: None,
        })
    }
}

impl QueryCtx for Database {
    fn run_subquery(&mut self, query: &SelectStmt) -> Result<ResultSet> {
        run_select(self, query)
    }

    fn nextval(&mut self, sequence: &str) -> Result<i64> {
        Ok(self.catalog.sequence_mut(sequence)?.nextval())
    }

    fn host_var(&self, name: &str) -> Result<Value> {
        self.var(name)
            .cloned()
            .ok_or_else(|| Error::UnboundVariable {
                name: name.to_string(),
            })
    }

    fn sqlexec(&self) -> SqlExec {
        self.sqlexec
    }

    fn exec(&self) -> ExecMode {
        self.exec
    }

    fn bump(&mut self, counter: ExecCounter, n: u64) {
        let stats = &mut self.stats;
        match counter {
            ExecCounter::ProgramsCompiled => stats.programs_compiled += n,
            ExecCounter::ConstFolded => stats.exprs_const_folded += n,
            ExecCounter::FallbackOps => stats.compile_fallback_ops += n,
            ExecCounter::RowsScanned => stats.rows_scanned += n,
            ExecCounter::RowsFiltered => stats.rows_filtered += n,
            ExecCounter::RowsJoined => stats.rows_joined += n,
            ExecCounter::PlannerPlans => stats.planner_plans += n,
            ExecCounter::PlannerReorderedJoins => stats.planner_reordered_joins += n,
            ExecCounter::PlannerPushedFilters => stats.planner_pushed_filters += n,
            ExecCounter::PlannerEstRowsErr => stats.planner_est_rows_err += n,
            ExecCounter::VectorBatches => stats.vector_batches += n,
            ExecCounter::VectorRows => stats.vector_rows += n,
            ExecCounter::VectorSelNarrowings => stats.vector_sel_narrowings += n,
            ExecCounter::VectorFallbackBatches => stats.vector_fallback_batches += n,
        }
    }

    /// Serve (or lazily build) the hash index on `cols` of a base table.
    /// Returns `None` under [`IndexPolicy::Off`] or when `version` does
    /// not match the live table — the caller then falls back to a scan,
    /// so a stale index can never be consulted.
    fn table_index(&mut self, table: &str, version: u64, cols: &[usize]) -> Option<Arc<HashIndex>> {
        if self.index_policy == IndexPolicy::Off {
            return None;
        }
        match self.indexes.get(table, cols, version) {
            IndexLookup::Hit(ix) => {
                self.stats.index_hits += 1;
                return Some(ix);
            }
            IndexLookup::Stale => self.stats.index_invalidations += 1,
            IndexLookup::Miss => {}
        }
        let t = self.catalog.table(table).ok()?;
        if t.version() != version {
            return None;
        }
        let ix = Arc::new(HashIndex::build(t.rows(), cols, version));
        self.stats.indexes_built += 1;
        self.indexes.put(table, cols, Arc::clone(&ix));
        Some(ix)
    }

    fn has_table_index(&self, table: &str, version: u64, cols: &[usize]) -> bool {
        self.index_policy != IndexPolicy::Off && self.indexes.peek(table, cols, version)
    }

    fn planner(&self) -> PlannerMode {
        self.planner
    }

    fn column_distinct(&self, table: &str, col: usize) -> Option<u64> {
        self.catalog
            .table(table)
            .ok()
            .and_then(|t| t.stats().distinct(col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_t() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, b VARCHAR)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')")
            .unwrap();
        db
    }

    #[test]
    fn select_where() {
        let mut db = db_with_t();
        let rs = db.query("SELECT a FROM t WHERE b = 'x'").unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn select_order_and_limit() {
        let mut db = db_with_t();
        let rs = db.query("SELECT a FROM t ORDER BY a DESC LIMIT 2").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(3));
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn select_group_by_having() {
        let mut db = db_with_t();
        let rs = db
            .query("SELECT b, COUNT(*) AS n FROM t GROUP BY b HAVING COUNT(*) > 1")
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0][0], Value::Str("x".into()));
        assert_eq!(rs.rows()[0][1], Value::Int(2));
    }

    #[test]
    fn select_distinct() {
        let mut db = db_with_t();
        let rs = db.query("SELECT DISTINCT b FROM t").unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn aggregate_without_group_by() {
        let mut db = db_with_t();
        let rs = db.query("SELECT COUNT(*), SUM(a) FROM t").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(3), Value::Int(6)]);
    }

    #[test]
    fn join_two_tables() {
        let mut db = db_with_t();
        db.execute("CREATE TABLE u (a INT, c VARCHAR)").unwrap();
        db.execute("INSERT INTO u VALUES (1, 'one'), (3, 'three')")
            .unwrap();
        let rs = db
            .query("SELECT t.b, u.c FROM t, u WHERE t.a = u.a ORDER BY u.c")
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows()[0][1], Value::Str("one".into()));
    }

    #[test]
    fn derived_table_in_from() {
        let mut db = db_with_t();
        let rs = db
            .query("SELECT COUNT(*) FROM (SELECT DISTINCT b FROM t) d")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn select_into_host_variable() {
        let mut db = db_with_t();
        db.query("SELECT COUNT(*) INTO :totg FROM t").unwrap();
        assert_eq!(db.var("totg"), Some(&Value::Int(3)));
        let rs = db.query("SELECT a FROM t WHERE a < :totg").unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn views_reevaluate() {
        let mut db = db_with_t();
        db.execute("CREATE VIEW v AS (SELECT a FROM t WHERE b = 'x')")
            .unwrap();
        assert_eq!(db.query("SELECT * FROM v").unwrap().len(), 2);
        db.execute("INSERT INTO t VALUES (9, 'x')").unwrap();
        assert_eq!(db.query("SELECT * FROM v").unwrap().len(), 3);
    }

    #[test]
    fn sequences_via_sql() {
        let mut db = db_with_t();
        db.execute("CREATE SEQUENCE s START WITH 1 INCREMENT BY 1")
            .unwrap();
        db.execute("CREATE TABLE ids (id INT, b VARCHAR)").unwrap();
        db.execute("INSERT INTO ids (SELECT s.NEXTVAL, b FROM t)")
            .unwrap();
        let rs = db.query("SELECT id FROM ids ORDER BY id").unwrap();
        assert_eq!(
            rs.rows().iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn create_table_as() {
        let mut db = db_with_t();
        db.execute("CREATE TABLE c AS (SELECT b, COUNT(*) AS n FROM t GROUP BY b)")
            .unwrap();
        assert_eq!(db.query("SELECT * FROM c").unwrap().len(), 2);
    }

    #[test]
    fn delete_and_update() {
        let mut db = db_with_t();
        let out = db.execute("DELETE FROM t WHERE b = 'x'").unwrap();
        assert_eq!(out.rows_affected, 2);
        let out = db.execute("UPDATE t SET b = 'z' WHERE a = 2").unwrap();
        assert_eq!(out.rows_affected, 1);
        let rs = db.query("SELECT b FROM t").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Str("z".into()));
    }

    #[test]
    fn scalar_subquery() {
        let mut db = db_with_t();
        let rs = db
            .query("SELECT a FROM t WHERE a = (SELECT MAX(a) FROM t)")
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn in_subquery() {
        let mut db = db_with_t();
        db.execute("CREATE TABLE u (a INT)").unwrap();
        db.execute("INSERT INTO u VALUES (1), (3)").unwrap();
        let rs = db
            .query("SELECT a FROM t WHERE a IN (SELECT a FROM u) ORDER BY a")
            .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = db_with_t();
        db.execute("INSERT INTO t (a) VALUES (9)").unwrap();
        let rs = db.query("SELECT b FROM t WHERE a = 9").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Null);
    }

    #[test]
    fn unknown_table_reported() {
        let mut db = Database::new();
        assert!(matches!(
            db.query("SELECT * FROM nope"),
            Err(Error::UnknownObject { .. })
        ));
    }

    #[test]
    fn date_columns_and_literals() {
        let mut db = Database::new();
        db.execute("CREATE TABLE d (x DATE)").unwrap();
        db.execute("INSERT INTO d VALUES (DATE '1995-12-17'), (DATE '1996-01-02')")
            .unwrap();
        let rs = db
            .query("SELECT x FROM d WHERE x BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'")
            .unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn indexes_serve_joins_and_invalidate_on_mutation() {
        let mut db = db_with_t();
        db.execute("CREATE TABLE u (a INT, c VARCHAR)").unwrap();
        db.execute("INSERT INTO u VALUES (1, 'one'), (3, 'three')")
            .unwrap();
        let q = "SELECT t.b, u.c FROM t, u WHERE t.a = u.a ORDER BY u.c";
        let r1 = db.query(q).unwrap();
        assert_eq!(db.stats().indexes_built, 1, "lazy build on first join");
        let r2 = db.query(q).unwrap();
        assert_eq!(db.stats().index_hits, 1, "second join reuses it");
        assert_eq!(db.stats().indexes_built, 1);
        assert_eq!(r1.rows(), r2.rows());
        // Mutating the build-side table stales the entry.
        db.execute("INSERT INTO u VALUES (2, 'two')").unwrap();
        let r3 = db.query(q).unwrap();
        assert_eq!(db.stats().index_invalidations, 1);
        assert_eq!(db.stats().indexes_built, 2, "rebuilt after invalidation");
        assert_eq!(r3.len(), 3);
        // DROP purges the registry outright.
        db.execute("DROP TABLE u").unwrap();
        assert_eq!(db.live_indexes(), 0);
    }

    #[test]
    fn group_by_index_matches_scan_bit_for_bit() {
        let mut db = db_with_t();
        let q = "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b";
        let indexed = db.query(q).unwrap();
        assert_eq!(db.stats().indexes_built, 1);
        let hit = db.query(q).unwrap();
        assert_eq!(db.stats().index_hits, 1);
        db.set_index_policy(IndexPolicy::Off);
        let scanned = db.query(q).unwrap();
        assert_eq!(indexed.rows(), scanned.rows());
        assert_eq!(hit.rows(), scanned.rows());
        assert_eq!(db.stats().indexes_built, 1, "off builds nothing");
        assert_eq!(db.index_policy(), IndexPolicy::Off);
    }

    #[test]
    fn planner_modes_agree_bit_for_bit_and_counters_gate() {
        let mut db = Database::new();
        db.execute("CREATE TABLE a (x INT, tag VARCHAR)").unwrap();
        db.execute("CREATE TABLE b (x INT, y INT)").unwrap();
        db.execute("CREATE TABLE c (y INT, lab VARCHAR)").unwrap();
        db.execute("INSERT INTO a VALUES (1, 'p'), (2, 'q'), (3, 'r'), (4, 's')")
            .unwrap();
        db.execute("INSERT INTO b VALUES (1, 10), (2, 20), (3, 30)")
            .unwrap();
        db.execute("INSERT INTO c VALUES (20, 'twenty'), (30, 'thirty')")
            .unwrap();
        let q = "SELECT a.tag, c.lab FROM a, b, c WHERE a.x = b.x AND b.y = c.y AND a.x > 1";
        assert_eq!(db.planner_mode(), PlannerMode::Cost);
        let cost = db.query(q).unwrap();
        let s = db.stats();
        assert!(s.planner_plans > 0, "cost planner accounts its plans");
        assert!(
            s.planner_reordered_joins > 0,
            "smallest-first order deviates from the FROM order"
        );
        assert!(s.planner_pushed_filters > 0, "a.x > 1 pushed to the scan");
        db.set_planner(PlannerMode::Naive);
        assert_eq!(db.planner_mode(), PlannerMode::Naive);
        let before = db.stats();
        let naive = db.query(q).unwrap();
        let after = db.stats();
        assert_eq!(cost.rows(), naive.rows(), "row content and order agree");
        for (c, n) in [
            (before.planner_plans, after.planner_plans),
            (
                before.planner_reordered_joins,
                after.planner_reordered_joins,
            ),
            (before.planner_pushed_filters, after.planner_pushed_filters),
            (before.planner_est_rows_err, after.planner_est_rows_err),
        ] {
            assert_eq!(c, n, "naive mode never moves planner counters");
        }
    }

    #[test]
    fn cost_build_side_follows_statistics() {
        let mut db = Database::new();
        db.execute("CREATE TABLE big (a INT, v VARCHAR)").unwrap();
        db.execute("CREATE TABLE small (a INT, w VARCHAR)").unwrap();
        db.execute("INSERT INTO big VALUES (1,'b1'), (2,'b2'), (3,'b3'), (4,'b4'), (5,'b5')")
            .unwrap();
        db.execute("INSERT INTO small VALUES (2,'s2'), (4,'s4')")
            .unwrap();
        // `big` comes first in FROM: the naive fold would build over the
        // *next* factor regardless of size; the cost planner builds over
        // the smaller `small`, so mutating `big` invalidates nothing.
        let q = "SELECT big.v, small.w FROM big, small WHERE big.a = small.a";
        let r1 = db.query(q).unwrap();
        assert_eq!(r1.len(), 2);
        assert_eq!(db.stats().indexes_built, 1);
        db.execute("INSERT INTO big VALUES (6, 'b6')").unwrap();
        let r2 = db.query(q).unwrap();
        assert_eq!(r2.len(), 2);
        assert_eq!(
            db.stats().index_invalidations,
            0,
            "the index lives on the small build side, untouched by the mutation"
        );
        assert_eq!(db.stats().index_hits, 1, "second join reuses it");
        assert_eq!(db.stats().indexes_built, 1);
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tcdm_engine_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn paged_backend_survives_drop_and_reopen() {
        let dir = temp_store("reopen");
        {
            let mut db = Database::open_paged(&dir).unwrap();
            assert_eq!(db.storage(), crate::StorageBackend::Paged);
            db.execute("CREATE TABLE t (a INT, b VARCHAR)").unwrap();
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
                .unwrap();
            let s = db.stats();
            assert!(s.storage_wal_fsyncs >= 2, "one fsync per statement");
            assert!(s.storage_wal_appends > 0);
        } // dropped mid-flight: no checkpoint, the WAL carries everything
        let mut db = Database::open_paged(&dir).unwrap();
        assert_eq!(db.stats().storage_recoveries, 1);
        let rs = db.query("SELECT b FROM t ORDER BY a").unwrap();
        assert_eq!(rs.rows()[1][0], Value::Str("y".into()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paged_requires_a_directory_and_rejects_double_attach() {
        let mut db = db_with_t();
        assert!(matches!(
            db.set_storage(crate::StorageBackend::Paged),
            Err(Error::Storage { .. })
        ));
        let dir = temp_store("attach");
        {
            let mut seeded = Database::open_paged(&dir).unwrap();
            seeded.execute("CREATE TABLE other (x INT)").unwrap();
        }
        // A non-empty catalog cannot attach to a non-empty store.
        db.set_storage_dir(&dir);
        assert!(matches!(
            db.set_storage(crate::StorageBackend::Paged),
            Err(Error::Storage { .. })
        ));
        assert_eq!(db.storage(), crate::StorageBackend::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backend_switch_memory_paged_memory_keeps_data() {
        let dir = temp_store("switch");
        let mut db = db_with_t();
        db.set_storage_dir(&dir);
        db.set_storage(crate::StorageBackend::Paged).unwrap();
        db.execute("INSERT INTO t VALUES (4, 'w')").unwrap();
        db.set_storage(crate::StorageBackend::Memory).unwrap();
        assert_eq!(db.storage(), crate::StorageBackend::Memory);
        // Catalog still resident after detach…
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(4))
        );
        // …and the checkpointed directory reopens on its own.
        let mut back = Database::open_paged(&dir).unwrap();
        assert_eq!(
            back.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(4))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_backend_reports_zero_storage_counters() {
        let mut db = db_with_t();
        db.query("SELECT * FROM t").unwrap();
        let s = db.stats();
        assert_eq!(s.storage_wal_appends, 0);
        assert_eq!(s.storage_page_writes, 0);
        assert_eq!(s.storage_recoveries, 0);
    }

    #[test]
    fn group_key_ordering_deterministic() {
        let mut db = db_with_t();
        let rs = db
            .query("SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b")
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::Str("x".into()));
        assert_eq!(rs.rows()[1][0], Value::Str("y".into()));
    }
}
