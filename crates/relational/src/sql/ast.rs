//! SQL statement AST.

use std::fmt;

use crate::expr::Expr;
use crate::types::DataType;

/// A projection item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A table factor in the FROM list, with any explicit joins chained to it.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub source: TableSource,
    pub alias: Option<String>,
    /// Explicit `JOIN ... ON ...` chain attached to this factor.
    pub joins: Vec<Join>,
}

impl TableRef {
    /// A plain named factor without joins.
    pub fn named(name: impl Into<String>, alias: Option<String>) -> TableRef {
        TableRef {
            source: TableSource::Named(name.into()),
            alias,
            joins: Vec::new(),
        }
    }
}

/// One explicit join step.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub source: TableSource,
    pub alias: Option<String>,
    /// The ON condition; `None` means CROSS JOIN.
    pub on: Option<Expr>,
}

/// Supported join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
}

/// Where a table factor's rows come from.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A base table or view name.
    Named(String),
    /// A parenthesised derived table.
    Subquery(Box<SelectStmt>),
}

/// A set operation combining two SELECTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    Union,
    UnionAll,
    Intersect,
    Except,
}

impl SetOpKind {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            SetOpKind::Union => "UNION",
            SetOpKind::UnionAll => "UNION ALL",
            SetOpKind::Intersect => "INTERSECT",
            SetOpKind::Except => "EXCEPT",
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub asc: bool,
}

/// A SELECT statement (SQL92 subset: comma joins with WHERE predicates,
/// grouping, HAVING, DISTINCT, ORDER BY, LIMIT, derived tables, scalar and
/// IN subqueries, host variables, `INTO :var`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    /// `SELECT expr INTO :var` — stores a scalar into a host variable.
    pub into_var: Option<String>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// Set operation chained to this SELECT (ORDER BY/LIMIT below apply
    /// to the combined result).
    pub set_op: Option<(SetOpKind, Box<SelectStmt>)>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

/// Source of rows for INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (..), (..)`
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t (SELECT ...)` (boxed: SelectStmt is large).
    Query(Box<SelectStmt>),
}

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `EXPLAIN <statement>` — describe the plan instead of executing.
    Explain(Box<Statement>),
    CreateTable {
        name: String,
        columns: Vec<(String, DataType)>,
        if_not_exists: bool,
    },
    /// `CREATE TABLE name AS (SELECT ...)` — materialises the result.
    CreateTableAs {
        name: String,
        query: SelectStmt,
    },
    CreateView {
        name: String,
        query: SelectStmt,
    },
    CreateSequence {
        name: String,
        start: i64,
        increment: i64,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    DropView {
        name: String,
        if_exists: bool,
    },
    DropSequence {
        name: String,
        if_exists: bool,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        if let Some(v) = &self.into_var {
            write!(f, " INTO :{v}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match &t.source {
                    TableSource::Named(n) => write!(f, "{n}")?,
                    TableSource::Subquery(q) => write!(f, "({q})")?,
                }
                if let Some(a) = &t.alias {
                    write!(f, " AS {a}")?;
                }
                for j in &t.joins {
                    let kw = match j.kind {
                        JoinKind::Inner => "JOIN",
                        JoinKind::LeftOuter => "LEFT JOIN",
                    };
                    write!(f, " {kw} ")?;
                    match &j.source {
                        TableSource::Named(n) => write!(f, "{n}")?,
                        TableSource::Subquery(q) => write!(f, "({q})")?,
                    }
                    if let Some(a) = &j.alias {
                        write!(f, " AS {a}")?;
                    }
                    if let Some(on) = &j.on {
                        write!(f, " ON {on}")?;
                    }
                }
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if let Some((kind, rhs)) = &self.set_op {
            write!(f, " {} {rhs}", kind.sql())?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.asc { "" } else { " DESC" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                write!(
                    f,
                    "CREATE TABLE {}{name} (",
                    if *if_not_exists { "IF NOT EXISTS " } else { "" }
                )?;
                for (i, (c, t)) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} {t}")?;
                }
                write!(f, ")")
            }
            Statement::CreateTableAs { name, query } => {
                write!(f, "CREATE TABLE {name} AS ({query})")
            }
            Statement::CreateView { name, query } => {
                write!(f, "CREATE VIEW {name} AS ({query})")
            }
            Statement::CreateSequence {
                name,
                start,
                increment,
            } => write!(
                f,
                "CREATE SEQUENCE {name} START WITH {start} INCREMENT BY {increment}"
            ),
            Statement::DropTable { name, if_exists } => write!(
                f,
                "DROP TABLE {}{name}",
                if *if_exists { "IF EXISTS " } else { "" }
            ),
            Statement::DropView { name, if_exists } => write!(
                f,
                "DROP VIEW {}{name}",
                if *if_exists { "IF EXISTS " } else { "" }
            ),
            Statement::DropSequence { name, if_exists } => write!(
                f,
                "DROP SEQUENCE {}{name}",
                if *if_exists { "IF EXISTS " } else { "" }
            ),
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                match source {
                    InsertSource::Values(rows) => {
                        write!(f, " VALUES ")?;
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "(")?;
                            for (j, e) in row.iter().enumerate() {
                                if j > 0 {
                                    write!(f, ", ")?;
                                }
                                write!(f, "{e}")?;
                            }
                            write!(f, ")")?;
                        }
                        Ok(())
                    }
                    InsertSource::Query(q) => write!(f, " ({q})"),
                }
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};

    #[test]
    fn display_select_roundtrips_shape() {
        let s = SelectStmt {
            distinct: true,
            items: vec![
                SelectItem::Expr {
                    expr: Expr::col("a"),
                    alias: Some("x".into()),
                },
                SelectItem::Wildcard,
            ],
            from: vec![TableRef::named("t", Some("s".into()))],
            where_clause: Some(Expr::binary(Expr::col("a"), BinOp::Gt, Expr::lit(1))),
            group_by: vec![Expr::col("a")],
            ..Default::default()
        };
        assert_eq!(
            s.to_string(),
            "SELECT DISTINCT a AS x, * FROM t AS s WHERE a > 1 GROUP BY a"
        );
    }

    #[test]
    fn display_insert_from_query() {
        let stmt = Statement::Insert {
            table: "Bset".into(),
            columns: None,
            source: InsertSource::Query(Box::new(SelectStmt {
                items: vec![SelectItem::Wildcard],
                from: vec![TableRef::named("x", None)],
                ..Default::default()
            })),
        };
        assert_eq!(stmt.to_string(), "INSERT INTO Bset (SELECT * FROM x)");
    }

    #[test]
    fn display_create_sequence() {
        let stmt = Statement::CreateSequence {
            name: "Gidsequence".into(),
            start: 1,
            increment: 1,
        };
        assert_eq!(
            stmt.to_string(),
            "CREATE SEQUENCE Gidsequence START WITH 1 INCREMENT BY 1"
        );
    }
}
