//! Recursive-descent SQL parser.
//!
//! The [`Parser`] type is public and reusable: the MINE RULE front-end (in
//! the `minerule` crate) drives the same token stream and calls back into
//! [`Parser::parse_expr`] for the embedded SQL conditions, exactly as the
//! paper's translator embeds SQL search conditions inside the operator.

use crate::error::{Error, Result};
use crate::expr::{AggFunc, BinOp, Expr, UnaryOp};
use crate::sql::ast::{
    InsertSource, Join, JoinKind, OrderItem, SelectItem, SelectStmt, SetOpKind, Statement,
    TableRef, TableSource,
};
use crate::sql::lexer::{lex, Tok, Token};
use crate::types::DataType;
use crate::value::{Date, Value};

/// Keywords that cannot be used as bare (AS-less) aliases. Includes the
/// MINE RULE keywords so the mining parser can share alias handling.
const RESERVED: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "HAVING",
    "ORDER",
    "LIMIT",
    "AS",
    "ON",
    "AND",
    "OR",
    "NOT",
    "INTO",
    "UNION",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "SET",
    "VALUES",
    "BY",
    "ASC",
    "DESC",
    "CLUSTER",
    "EXTRACTING",
    "RULES",
    "WITH",
    "SUPPORT",
    "CONFIDENCE",
    "MINE",
    "RULE",
    "DISTINCT",
    "BETWEEN",
    "IN",
    "IS",
    "LIKE",
    "EXISTS",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "CROSS",
    "OUTER",
    "EXCEPT",
    "INTERSECT",
    "CAST",
];

/// Token-stream parser with single-statement and expression entry points.
pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
    input_len: usize,
}

/// Parse exactly one statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::from_sql(sql)?;
    let stmt = p.parse_statement()?;
    p.accept_tok(&Tok::Semi);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::from_sql(sql)?;
    let mut out = Vec::new();
    while !p.eof() {
        out.push(p.parse_statement()?);
        while p.accept_tok(&Tok::Semi) {}
    }
    Ok(out)
}

/// Parse a standalone scalar expression (used for MINE RULE conditions).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let mut p = Parser::from_sql(sql)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

impl Parser {
    /// Lex `sql` and build a parser over its tokens.
    pub fn from_sql(sql: &str) -> Result<Parser> {
        Ok(Parser {
            toks: lex(sql)?,
            pos: 0,
            input_len: sql.len(),
        })
    }

    /// True when all tokens are consumed.
    pub fn eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Error if any tokens remain.
    pub fn expect_eof(&self) -> Result<()> {
        if self.eof() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    /// Build a parse error at the current position.
    pub fn error(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            pos: self
                .toks
                .get(self.pos)
                .map(|t| t.pos)
                .unwrap_or(self.input_len),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    /// Peek at the next token without consuming it (for embedding parsers
    /// such as the MINE RULE front-end).
    pub fn peek_tok(&self) -> Option<&Tok> {
        self.peek()
    }

    fn peek_n(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n).map(|t| &t.tok)
    }

    fn advance(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume `t` if it is next; report whether it was.
    pub fn accept_tok(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require token `t`.
    pub fn expect_tok(&mut self, t: &Tok) -> Result<()> {
        if self.accept_tok(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {t:?}")))
        }
    }

    /// True when the next token is the keyword `kw` (case-insensitive).
    pub fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// True when the token `n` ahead is the keyword `kw`.
    pub fn peek_kw_n(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_n(n), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume keyword `kw` if next.
    pub fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require keyword `kw`.
    pub fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}")))
        }
    }

    /// Require any identifier and return it.
    pub fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    /// Require an integer literal.
    pub fn expect_int(&mut self) -> Result<i64> {
        match self.peek() {
            Some(Tok::Int(i)) => {
                let i = *i;
                self.pos += 1;
                Ok(i)
            }
            _ => Err(self.error("expected integer literal")),
        }
    }

    /// Require a numeric literal (int or float), e.g. support thresholds.
    pub fn expect_number(&mut self) -> Result<f64> {
        match self.peek() {
            Some(Tok::Int(i)) => {
                let v = *i as f64;
                self.pos += 1;
                Ok(v)
            }
            Some(Tok::Float(x)) => {
                let v = *x;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.error("expected numeric literal")),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Parse one statement.
    pub fn parse_statement(&mut self) -> Result<Statement> {
        if self.accept_kw("EXPLAIN") {
            return Ok(Statement::Explain(Box::new(self.parse_statement()?)));
        }
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.parse_select()?));
        }
        if self.accept_kw("CREATE") {
            return self.parse_create();
        }
        if self.accept_kw("DROP") {
            return self.parse_drop();
        }
        if self.accept_kw("INSERT") {
            return self.parse_insert();
        }
        if self.accept_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.expect_ident()?;
            let where_clause = if self.accept_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete {
                table,
                where_clause,
            });
        }
        if self.accept_kw("UPDATE") {
            let table = self.expect_ident()?;
            self.expect_kw("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.expect_ident()?;
                self.expect_tok(&Tok::Eq)?;
                assignments.push((col, self.parse_expr()?));
                if !self.accept_tok(&Tok::Comma) {
                    break;
                }
            }
            let where_clause = if self.accept_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                assignments,
                where_clause,
            });
        }
        Err(self.error("expected a statement"))
    }

    fn parse_create(&mut self) -> Result<Statement> {
        if self.accept_kw("TABLE") {
            let if_not_exists = if self.accept_kw("IF") {
                self.expect_kw("NOT")?;
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.expect_ident()?;
            if self.accept_kw("AS") {
                let wrapped = self.accept_tok(&Tok::LParen);
                let query = self.parse_select()?;
                if wrapped {
                    self.expect_tok(&Tok::RParen)?;
                }
                return Ok(Statement::CreateTableAs { name, query });
            }
            self.expect_tok(&Tok::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.expect_ident()?;
                let tname = self.expect_ident()?;
                let dtype = DataType::from_sql_name(&tname)
                    .ok_or_else(|| self.error(format!("unknown type '{tname}'")))?;
                // Swallow optional length e.g. VARCHAR(30).
                if self.accept_tok(&Tok::LParen) {
                    self.expect_int()?;
                    if self.accept_tok(&Tok::Comma) {
                        self.expect_int()?;
                    }
                    self.expect_tok(&Tok::RParen)?;
                }
                columns.push((col, dtype));
                if !self.accept_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen)?;
            return Ok(Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            });
        }
        if self.accept_kw("VIEW") {
            let name = self.expect_ident()?;
            self.expect_kw("AS")?;
            let wrapped = self.accept_tok(&Tok::LParen);
            let query = self.parse_select()?;
            if wrapped {
                self.expect_tok(&Tok::RParen)?;
            }
            return Ok(Statement::CreateView { name, query });
        }
        if self.accept_kw("SEQUENCE") {
            let name = self.expect_ident()?;
            let mut start = 1;
            let mut increment = 1;
            if self.accept_kw("START") {
                self.expect_kw("WITH")?;
                start = self.expect_int()?;
            }
            if self.accept_kw("INCREMENT") {
                self.expect_kw("BY")?;
                increment = self.expect_int()?;
            }
            return Ok(Statement::CreateSequence {
                name,
                start,
                increment,
            });
        }
        Err(self.error("expected TABLE, VIEW or SEQUENCE after CREATE"))
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        let kind = self.expect_ident()?;
        let if_exists = if self.accept_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        match kind.to_ascii_uppercase().as_str() {
            "TABLE" => Ok(Statement::DropTable { name, if_exists }),
            "VIEW" => Ok(Statement::DropView { name, if_exists }),
            "SEQUENCE" => Ok(Statement::DropSequence { name, if_exists }),
            other => Err(self.error(format!("cannot DROP {other}"))),
        }
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.expect_ident()?;
        // Three shapes: INSERT INTO t VALUES ...,
        //               INSERT INTO t (c1, c2) VALUES ...,
        //               INSERT INTO t (SELECT ...)  [Appendix A style]
        let mut columns = None;
        if self.accept_tok(&Tok::LParen) {
            if self.peek_kw("SELECT") {
                let query = self.parse_select()?;
                self.expect_tok(&Tok::RParen)?;
                return Ok(Statement::Insert {
                    table,
                    columns: None,
                    source: InsertSource::Query(Box::new(query)),
                });
            }
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.accept_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen)?;
            columns = Some(cols);
        }
        if self.accept_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_tok(&Tok::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.accept_tok(&Tok::Comma) {
                        break;
                    }
                }
                self.expect_tok(&Tok::RParen)?;
                rows.push(row);
                if !self.accept_tok(&Tok::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            });
        }
        if self.peek_kw("SELECT") {
            let query = self.parse_select()?;
            return Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Query(Box::new(query)),
            });
        }
        if self.accept_tok(&Tok::LParen) {
            let query = self.parse_select()?;
            self.expect_tok(&Tok::RParen)?;
            return Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Query(Box::new(query)),
            });
        }
        Err(self.error("expected VALUES or SELECT in INSERT"))
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    /// Parse a full SELECT statement (the leading `SELECT` keyword is
    /// consumed here).
    pub fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.accept_kw("DISTINCT");
        if distinct {
            // Tolerate Oracle-style "DISTINCT ALL"? No — but allow nothing.
        } else {
            self.accept_kw("ALL");
        }
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.accept_tok(&Tok::Comma) {
                break;
            }
        }
        let into_var = if self.accept_kw("INTO") {
            match self.advance() {
                Some(Tok::HostVar(v)) => Some(v),
                _ => return Err(self.error("expected host variable after INTO")),
            }
        } else {
            None
        };
        let mut from = Vec::new();
        if self.accept_kw("FROM") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.accept_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.peek_kw("GROUP") && self.peek_kw_n(1, "BY") {
            self.pos += 2;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.accept_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let having = if self.accept_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut set_op = if self.accept_kw("UNION") {
            let kind = if self.accept_kw("ALL") {
                SetOpKind::UnionAll
            } else {
                SetOpKind::Union
            };
            Some((kind, Box::new(self.parse_select()?)))
        } else if self.accept_kw("INTERSECT") {
            Some((SetOpKind::Intersect, Box::new(self.parse_select()?)))
        } else if self.accept_kw("EXCEPT") {
            Some((SetOpKind::Except, Box::new(self.parse_select()?)))
        } else {
            None
        };
        // A trailing ORDER BY / LIMIT after a set operation orders the
        // *combined* result, but the right-recursive parse attaches it to
        // the innermost operand — hoist it back out.
        let (mut hoisted_order, mut hoisted_limit) = (Vec::new(), None);
        if let Some((_, rhs)) = &mut set_op {
            hoisted_order = std::mem::take(&mut rhs.order_by);
            hoisted_limit = rhs.limit.take();
        }
        let mut order_by = hoisted_order;
        if self.peek_kw("ORDER") && self.peek_kw_n(1, "BY") {
            self.pos += 2;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.accept_kw("DESC") {
                    false
                } else {
                    self.accept_kw("ASC");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.accept_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_kw("LIMIT") {
            Some(self.expect_int()? as u64)
        } else {
            hoisted_limit
        };
        Ok(SelectStmt {
            distinct,
            items,
            into_var,
            from,
            where_clause,
            group_by,
            having,
            set_op,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.accept_tok(&Tok::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(Tok::Ident(q)), Some(Tok::Dot), Some(Tok::Star)) =
            (self.peek(), self.peek_n(1), self.peek_n(2))
        {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_opt_alias();
        Ok(SelectItem::Expr { expr, alias })
    }

    /// `[AS] ident`, where a bare ident alias must not be a reserved word.
    pub fn parse_opt_alias(&mut self) -> Option<String> {
        if self.accept_kw("AS") {
            return self.expect_ident().ok();
        }
        if let Some(Tok::Ident(s)) = self.peek() {
            if !RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                let s = s.clone();
                self.pos += 1;
                return Some(s);
            }
        }
        None
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let (source, alias) = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let kind =
                if self.peek_kw("JOIN") || (self.peek_kw("INNER") && self.peek_kw_n(1, "JOIN")) {
                    self.accept_kw("INNER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Inner
                } else if self.peek_kw("LEFT") {
                    self.pos += 1;
                    self.accept_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::LeftOuter
                } else if self.peek_kw("CROSS") && self.peek_kw_n(1, "JOIN") {
                    self.pos += 2;
                    let (jsource, jalias) = self.parse_table_factor()?;
                    joins.push(Join {
                        kind: JoinKind::Inner,
                        source: jsource,
                        alias: jalias,
                        on: None,
                    });
                    continue;
                } else {
                    break;
                };
            let (jsource, jalias) = self.parse_table_factor()?;
            self.expect_kw("ON")?;
            let on = self.parse_expr()?;
            joins.push(Join {
                kind,
                source: jsource,
                alias: jalias,
                on: Some(on),
            });
        }
        Ok(TableRef {
            source,
            alias,
            joins,
        })
    }

    fn parse_table_factor(&mut self) -> Result<(TableSource, Option<String>)> {
        if self.accept_tok(&Tok::LParen) {
            let q = self.parse_select()?;
            self.expect_tok(&Tok::RParen)?;
            let alias = self.parse_opt_alias();
            return Ok((TableSource::Subquery(Box::new(q)), alias));
        }
        let name = self.expect_ident()?;
        let alias = self.parse_opt_alias();
        Ok((TableSource::Named(name), alias))
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    /// Parse a scalar expression.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_expr_prec(0)
    }

    fn parse_expr_prec(&mut self, min_prec: u8) -> Result<Expr> {
        let mut left = self.parse_prefix(min_prec)?;
        loop {
            // Comparison-level postfix predicates.
            if min_prec <= 4 {
                let negated = self.peek_kw("NOT")
                    && (self.peek_kw_n(1, "BETWEEN")
                        || self.peek_kw_n(1, "IN")
                        || self.peek_kw_n(1, "LIKE"));
                if negated {
                    self.pos += 1;
                }
                if self.accept_kw("BETWEEN") {
                    let low = self.parse_expr_prec(5)?;
                    self.expect_kw("AND")?;
                    let high = self.parse_expr_prec(5)?;
                    left = Expr::Between {
                        expr: Box::new(left),
                        negated,
                        low: Box::new(low),
                        high: Box::new(high),
                    };
                    continue;
                }
                if self.accept_kw("IN") {
                    self.expect_tok(&Tok::LParen)?;
                    if self.peek_kw("SELECT") {
                        let q = self.parse_select()?;
                        self.expect_tok(&Tok::RParen)?;
                        left = Expr::InSubquery {
                            expr: Box::new(left),
                            negated,
                            query: Box::new(q),
                        };
                    } else {
                        let mut list = Vec::new();
                        loop {
                            list.push(self.parse_expr()?);
                            if !self.accept_tok(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect_tok(&Tok::RParen)?;
                        left = Expr::InList {
                            expr: Box::new(left),
                            negated,
                            list,
                        };
                    }
                    continue;
                }
                if self.accept_kw("LIKE") {
                    let pattern = self.parse_expr_prec(5)?;
                    left = Expr::Like {
                        expr: Box::new(left),
                        negated,
                        pattern: Box::new(pattern),
                    };
                    continue;
                }
                if negated {
                    return Err(self.error("expected BETWEEN, IN or LIKE after NOT"));
                }
                if self.accept_kw("IS") {
                    let negated = self.accept_kw("NOT");
                    self.expect_kw("NULL")?;
                    left = Expr::IsNull {
                        expr: Box::new(left),
                        negated,
                    };
                    continue;
                }
            }
            let op = match self.peek() {
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("AND") => BinOp::And,
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("OR") => BinOp::Or,
                Some(Tok::Eq) => BinOp::Eq,
                Some(Tok::NotEq) => BinOp::NotEq,
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::LtEq) => BinOp::LtEq,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::GtEq) => BinOp::GtEq,
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                Some(Tok::Concat) => BinOp::Concat,
                _ => break,
            };
            let prec = match op {
                BinOp::Or => 1,
                BinOp::And => 2,
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
                BinOp::Add | BinOp::Sub | BinOp::Concat => 5,
                BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let right = self.parse_expr_prec(prec + 1)?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_prefix(&mut self, min_prec: u8) -> Result<Expr> {
        if min_prec <= 3 && self.accept_kw("NOT") {
            let inner = self.parse_expr_prec(3)?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        if self.accept_tok(&Tok::Minus) {
            let inner = self.parse_expr_prec(7)?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.accept_tok(&Tok::Plus) {
            return self.parse_expr_prec(7);
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Tok::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(x)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Tok::HostVar(v)) => {
                self.pos += 1;
                Ok(Expr::HostVar(v))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                if self.peek_kw("SELECT") {
                    let q = self.parse_select()?;
                    self.expect_tok(&Tok::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(q)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_tok(&Tok::RParen)?;
                    Ok(e)
                }
            }
            Some(Tok::Ident(name)) => self.parse_ident_primary(name),
            _ => Err(self.error("expected an expression")),
        }
    }

    fn parse_ident_primary(&mut self, name: String) -> Result<Expr> {
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Null));
            }
            "TRUE" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Bool(true)));
            }
            "FALSE" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Bool(false)));
            }
            "DATE" => {
                if let Some(Tok::Str(_)) = self.peek_n(1) {
                    self.pos += 1;
                    if let Some(Tok::Str(s)) = self.advance() {
                        let d = Date::parse(&s)
                            .ok_or_else(|| self.error(format!("bad date literal '{s}'")))?;
                        return Ok(Expr::Literal(Value::Date(d)));
                    }
                    unreachable!();
                }
            }
            "CASE" => {
                self.pos += 1;
                let mut branches = Vec::new();
                while self.accept_kw("WHEN") {
                    let c = self.parse_expr()?;
                    self.expect_kw("THEN")?;
                    let v = self.parse_expr()?;
                    branches.push((c, v));
                }
                let else_expr = if self.accept_kw("ELSE") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect_kw("END")?;
                if branches.is_empty() {
                    return Err(self.error("CASE requires at least one WHEN"));
                }
                return Ok(Expr::Case {
                    branches,
                    else_expr,
                });
            }
            "EXISTS" => {
                self.pos += 1;
                self.expect_tok(&Tok::LParen)?;
                let q = self.parse_select()?;
                self.expect_tok(&Tok::RParen)?;
                return Ok(Expr::Exists {
                    negated: false,
                    query: Box::new(q),
                });
            }
            "CAST" if self.peek_n(1) == Some(&Tok::LParen) => {
                {
                    self.pos += 2;
                    let inner = self.parse_expr()?;
                    self.expect_kw("AS")?;
                    let tname = self.expect_ident()?;
                    let dtype = DataType::from_sql_name(&tname)
                        .ok_or_else(|| self.error(format!("unknown type '{tname}'")))?;
                    // Swallow optional length, e.g. VARCHAR(20).
                    if self.accept_tok(&Tok::LParen) {
                        self.expect_int()?;
                        self.expect_tok(&Tok::RParen)?;
                    }
                    self.expect_tok(&Tok::RParen)?;
                    return Ok(Expr::Cast {
                        expr: Box::new(inner),
                        dtype,
                    });
                }
            }
            _ => {}
        }

        // Structural keywords cannot start a primary expression; catching
        // them here turns `SELECT FROM t` into a parse error instead of a
        // column named "FROM". (Softer words like SUPPORT or CLUSTER stay
        // usable as column names — MINE RULE output tables have them.)
        const EXPR_RESERVED: &[&str] = &[
            "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AS", "ON", "AND",
            "OR", "INTO", "UNION", "JOIN", "INNER", "LEFT", "RIGHT", "SET", "VALUES", "BY", "ASC",
            "DESC", "DISTINCT", "BETWEEN", "IN", "IS", "LIKE", "WHEN", "THEN", "ELSE", "END",
        ];
        if EXPR_RESERVED.iter().any(|k| *k == upper) {
            return Err(self.error(format!("unexpected keyword {upper}")));
        }

        // Function or aggregate call: ident '('.
        if self.peek_n(1) == Some(&Tok::LParen) {
            self.pos += 2;
            if let Some(func) = AggFunc::from_name(&name) {
                if func == AggFunc::Count && self.accept_tok(&Tok::Star) {
                    self.expect_tok(&Tok::RParen)?;
                    return Ok(Expr::Aggregate {
                        func,
                        distinct: false,
                        arg: None,
                    });
                }
                let distinct = self.accept_kw("DISTINCT");
                let arg = self.parse_expr()?;
                self.expect_tok(&Tok::RParen)?;
                return Ok(Expr::Aggregate {
                    func,
                    distinct,
                    arg: Some(Box::new(arg)),
                });
            }
            let mut args = Vec::new();
            if !self.accept_tok(&Tok::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.accept_tok(&Tok::Comma) {
                        break;
                    }
                }
                self.expect_tok(&Tok::RParen)?;
            }
            return Ok(Expr::Func { name, args });
        }

        // Qualified reference: ident '.' ident — either sequence NEXTVAL
        // or a qualified column.
        if self.peek_n(1) == Some(&Tok::Dot) {
            if let Some(Tok::Ident(second)) = self.peek_n(2) {
                let second = second.clone();
                self.pos += 3;
                if second.eq_ignore_ascii_case("NEXTVAL") {
                    return Ok(Expr::NextVal(name));
                }
                return Ok(Expr::Column {
                    qualifier: Some(name),
                    name: second,
                });
            }
        }

        self.pos += 1;
        Ok(Expr::Column {
            qualifier: None,
            name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(s: &str) -> Expr {
        parse_expression(s).unwrap()
    }

    #[test]
    fn parse_precedence() {
        assert_eq!(expr("1 + 2 * 3").to_sql(), "1 + 2 * 3");
        assert_eq!(expr("(1 + 2) * 3").to_sql(), "(1 + 2) * 3");
        assert_eq!(expr("a OR b AND c").to_sql(), "a OR b AND c");
        assert_eq!(expr("(a OR b) AND c").to_sql(), "(a OR b) AND c");
    }

    #[test]
    fn parse_mining_condition() {
        let e = expr("BODY.price >= 100 AND HEAD.price < 100");
        assert_eq!(e.to_sql(), "BODY.price >= 100 AND HEAD.price < 100");
    }

    #[test]
    fn parse_between_and_date() {
        let e = expr("date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'");
        assert!(matches!(e, Expr::Between { .. }));
    }

    #[test]
    fn parse_not_between() {
        let e = expr("x NOT BETWEEN 1 AND 2");
        assert!(matches!(e, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn parse_count_star_and_distinct() {
        assert_eq!(expr("COUNT(*)").to_sql(), "COUNT(*)");
        assert_eq!(expr("COUNT(DISTINCT x)").to_sql(), "COUNT(DISTINCT x)");
    }

    #[test]
    fn parse_nextval() {
        assert_eq!(
            expr("Gidsequence.NEXTVAL"),
            Expr::NextVal("Gidsequence".into())
        );
    }

    #[test]
    fn parse_in_list_and_subquery() {
        assert!(matches!(expr("x IN (1, 2, 3)"), Expr::InList { .. }));
        assert!(matches!(
            expr("x IN (SELECT a FROM t)"),
            Expr::InSubquery { .. }
        ));
    }

    #[test]
    fn parse_select_full() {
        let s = parse_statement(
            "SELECT DISTINCT a AS x, COUNT(*) AS n FROM t AS s, u \
             WHERE s.a = u.a GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(sel.distinct);
                assert_eq!(sel.items.len(), 2);
                assert_eq!(sel.from.len(), 2);
                assert!(sel.where_clause.is_some());
                assert_eq!(sel.group_by.len(), 1);
                assert!(sel.having.is_some());
                assert_eq!(sel.order_by.len(), 1);
                assert!(!sel.order_by[0].asc);
                assert_eq!(sel.limit, Some(5));
            }
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn parse_select_into_hostvar() {
        let s = parse_statement("SELECT COUNT(*) INTO :totg FROM (SELECT DISTINCT g FROM s) d")
            .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.into_var.as_deref(), Some("totg"));
                assert!(matches!(sel.from[0].source, TableSource::Subquery(_)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_insert_query_appendix_style() {
        let s = parse_statement(
            "INSERT INTO Source (SELECT item, price FROM Purchase WHERE price > 10)",
        )
        .unwrap();
        assert!(matches!(
            s,
            Statement::Insert {
                source: InsertSource::Query(_),
                ..
            }
        ));
    }

    #[test]
    fn parse_insert_values() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert {
                columns,
                source: InsertSource::Values(rows),
                ..
            } => {
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_create_table_and_view() {
        assert!(matches!(
            parse_statement("CREATE TABLE t (a INT, b VARCHAR(30), c DATE)").unwrap(),
            Statement::CreateTable { .. }
        ));
        assert!(matches!(
            parse_statement("CREATE VIEW v AS (SELECT a FROM t)").unwrap(),
            Statement::CreateView { .. }
        ));
        assert!(matches!(
            parse_statement("CREATE TABLE c AS SELECT a FROM t").unwrap(),
            Statement::CreateTableAs { .. }
        ));
    }

    #[test]
    fn parse_qualified_wildcard() {
        let s = parse_statement("SELECT V.* FROM ValidGroups V").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items[0], SelectItem::QualifiedWildcard("V".into()));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_statements_script() {
        let stmts = parse_statements("CREATE SEQUENCE s; SELECT 1; SELECT 2;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn display_parse_roundtrip() {
        let sql = "SELECT DISTINCT a AS x FROM t AS s WHERE a > 1 AND b BETWEEN 2 AND 3 GROUP BY a HAVING COUNT(*) > 2";
        let s1 = parse_statement(sql).unwrap();
        let s2 = parse_statement(&s1.to_string()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn parse_case_expression() {
        let e = expr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END");
        assert!(matches!(e, Expr::Case { .. }));
    }

    #[test]
    fn parse_error_position_reported() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }
}
