//! SQL lexer, shared by the SQL parser and the MINE RULE parser.
//!
//! Identifiers are case-preserving; keyword recognition happens in the
//! parsers. The token set includes `..` (used by MINE RULE cardinality
//! specifications such as `1..n`) and host variables (`:totg`).

use crate::error::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `:name`
    HostVar(String),
    /// Bare `:` (used by MINE RULE's `SUPPORT: 0.2` syntax).
    Colon,
    LParen,
    RParen,
    Comma,
    Dot,
    /// `..`
    DotDot,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    /// `<>` or `!=`
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||`
    Concat,
}

/// A token plus its byte offset in the source (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub pos: usize,
}

/// Tokenise `input`. Comments (`-- ...` to end of line) are skipped.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    pos: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    pos: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    pos: i,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    tok: Tok::Semi,
                    pos: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    tok: Tok::Star,
                    pos: i,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    tok: Tok::Plus,
                    pos: i,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    tok: Tok::Minus,
                    pos: i,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    tok: Tok::Slash,
                    pos: i,
                });
                i += 1;
            }
            '%' => {
                out.push(Token {
                    tok: Tok::Percent,
                    pos: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    tok: Tok::Eq,
                    pos: i,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    tok: Tok::NotEq,
                    pos: i,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::LtEq,
                        pos: i,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        tok: Tok::NotEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Lt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::GtEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Gt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Token {
                    tok: Tok::Concat,
                    pos: i,
                });
                i += 2;
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Token {
                        tok: Tok::DotDot,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Dot,
                        pos: i,
                    });
                    i += 1;
                }
            }
            ':' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    out.push(Token {
                        tok: Tok::Colon,
                        pos: i,
                    });
                    i += 1;
                } else {
                    out.push(Token {
                        tok: Tok::HostVar(input[start..j].to_string()),
                        pos: i,
                    });
                    i = j;
                }
            }
            '\'' => {
                let start = i;
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(Error::Lex {
                                pos: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Strings are UTF-8: copy the whole char.
                            let ch = input[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    pos: start,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                // A '.' followed by a digit continues the number; `1..n`
                // must lex as Int(1) DotDot Ident(n).
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| Error::Lex {
                        pos: start,
                        message: format!("bad float literal '{text}'"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| Error::Lex {
                        pos: start,
                        message: format!("bad integer literal '{text}'"),
                    })?)
                };
                out.push(Token { tok, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                let start = i;
                let name = if c == '"' {
                    // Delimited identifier.
                    i += 1;
                    let s = i;
                    while i < bytes.len() && bytes[i] != b'"' {
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return Err(Error::Lex {
                            pos: start,
                            message: "unterminated delimited identifier".into(),
                        });
                    }
                    let name = input[s..i].to_string();
                    i += 1;
                    name
                } else {
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    input[start..i].to_string()
                };
                out.push(Token {
                    tok: Tok::Ident(name),
                    pos: start,
                });
            }
            other => {
                return Err(Error::Lex {
                    pos: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_basic_select() {
        assert_eq!(
            toks("SELECT a, b FROM t"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
            ]
        );
    }

    #[test]
    fn lex_numbers_and_dotdot() {
        assert_eq!(
            toks("1..n 2.5 0.2"),
            vec![
                Tok::Int(1),
                Tok::DotDot,
                Tok::Ident("n".into()),
                Tok::Float(2.5),
                Tok::Float(0.2),
            ]
        );
    }

    #[test]
    fn lex_qualified_and_nextval() {
        assert_eq!(
            toks("Gidsequence.NEXTVAL"),
            vec![
                Tok::Ident("Gidsequence".into()),
                Tok::Dot,
                Tok::Ident("NEXTVAL".into()),
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            toks("< <= > >= <> != = ||"),
            vec![
                Tok::Lt,
                Tok::LtEq,
                Tok::Gt,
                Tok::GtEq,
                Tok::NotEq,
                Tok::NotEq,
                Tok::Eq,
                Tok::Concat,
            ]
        );
    }

    #[test]
    fn lex_string_with_escape() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn lex_host_var() {
        assert_eq!(toks(":totg"), vec![Tok::HostVar("totg".into())]);
    }

    #[test]
    fn lex_bare_colon() {
        assert_eq!(
            toks("SUPPORT: 0.2"),
            vec![Tok::Ident("SUPPORT".into()), Tok::Colon, Tok::Float(0.2)]
        );
    }

    #[test]
    fn lex_comment_skipped() {
        assert_eq!(
            toks("a -- comment\n b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(lex("'abc").is_err());
    }

    #[test]
    fn lex_delimited_identifier() {
        assert_eq!(toks("\"Group By\""), vec![Tok::Ident("Group By".into())]);
    }
}
