//! Durable paged storage: slotted pages, a pinning page cache, a pager
//! over one heap file, and a write-ahead log with recovery-on-open.
//!
//! The tightly-coupled architecture assumes the DBMS side provides real
//! storage; this module is that side's storage engine. A database opened
//! with [`StorageBackend::Paged`] writes every committed statement
//! through a WAL before it touches the heap, so a crash at *any* point —
//! mid-append, mid-fsync, mid-checkpoint — loses nothing that was
//! committed and resurrects nothing that was not. The full protocol and
//! its invariants are documented in `docs/STORAGE.md`.
//!
//! Layout of a store directory:
//!
//! * `heap.tcdm` — flat array of checksummed [`page::PAGE_SIZE`] slotted
//!   pages; page 0 is the superblock pointing at the catalog chain, and
//!   every table heap is a singly-linked chain of pages.
//! * `wal.tcdm` — the write-ahead log ([`wal`]); one transaction per SQL
//!   statement, full-page redo images, truncated at each checkpoint.
//!
//! Because encoded mining artifacts (`CodedSource`, `Bset`, `Hset`, the
//! rule tables) are ordinary catalog tables, the preprocessor and
//! postprocessor inherit durability with zero extra plumbing: their
//! tables flow through the same pager as user data.
//!
//! ## Kill and recover
//!
//! ```
//! use relational::Database;
//! let dir = std::env::temp_dir().join(format!("tcdm_storage_doc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! {
//!     let mut db = Database::open_paged(&dir).unwrap();
//!     db.execute("CREATE TABLE t (a INT)").unwrap();
//!     db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
//! } // dropped without a checkpoint — the WAL alone carries the commits
//! let mut db = Database::open_paged(&dir).unwrap();
//! let n = db.query("SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(n.scalar().unwrap().to_string(), "3");
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod cache;
pub mod page;
pub mod pager;
pub mod wal;

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::path::Path;

use crate::catalog::{Catalog, View};
use crate::error::{Error, Result};
use crate::row::Row;
use crate::sequence::Sequence;
use crate::sql::ast::Statement;
use crate::sql::parser::parse_statement;
use crate::table::Table;
use crate::types::{Column, DataType, Schema};
use crate::value::{Date, Value};

use page::{Page, MAX_CELL, PAGE_SIZE};
use pager::Pager;
use wal::{Wal, WalRecord};
pub use wal::{WalFault, WalFaultKind};

/// Which storage engine a [`crate::Database`] runs on.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum StorageBackend {
    /// Everything lives in process memory; persistence only via the
    /// explicit [`crate::persist`] snapshot. The default.
    #[default]
    Memory,
    /// Durable paged storage: slotted pages + WAL, crash-safe at every
    /// statement boundary. Requires a storage directory.
    Paged,
}

impl StorageBackend {
    /// Parse a backend name (`memory` | `paged`), ASCII-case-insensitively.
    pub fn from_name(name: &str) -> Option<StorageBackend> {
        match name.to_ascii_lowercase().as_str() {
            "memory" => Some(StorageBackend::Memory),
            "paged" => Some(StorageBackend::Paged),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            StorageBackend::Memory => "memory",
            StorageBackend::Paged => "paged",
        }
    }
}

impl fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs of the paged backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// Memory budget of the page cache, in pages (× 4 KiB each).
    pub cache_pages: usize,
    /// Auto-checkpoint once the WAL grows past this many bytes.
    pub checkpoint_bytes: u64,
}

impl Default for StorageConfig {
    fn default() -> StorageConfig {
        StorageConfig {
            cache_pages: 256,          // 1 MiB of cached pages
            checkpoint_bytes: 1 << 20, // 1 MiB of WAL
        }
    }
}

/// Work counters of the paged backend, all zero under the memory
/// backend. Surfaced as `relational.storage.*` telemetry deltas.
#[derive(Debug, Default, Clone, Copy)]
pub struct StorageStats {
    /// Pages read from the heap file (cache misses).
    pub page_reads: u64,
    /// Pages written to the heap file (LRU spills + checkpoints).
    pub page_writes: u64,
    /// Page lookups served by the cache.
    pub cache_hits: u64,
    /// Pages pushed out of the cache by the LRU policy.
    pub cache_evictions: u64,
    /// Records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Successful WAL fsyncs (one per committed transaction).
    pub wal_fsyncs: u64,
    /// Recoveries performed at open (a non-empty WAL was replayed).
    pub recoveries: u64,
}

impl StorageStats {
    /// Field-wise sum (used to fold a detached store into a running total).
    pub fn merged(self, other: StorageStats) -> StorageStats {
        StorageStats {
            page_reads: self.page_reads + other.page_reads,
            page_writes: self.page_writes + other.page_writes,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_evictions: self.cache_evictions + other.cache_evictions,
            wal_appends: self.wal_appends + other.wal_appends,
            wal_fsyncs: self.wal_fsyncs + other.wal_fsyncs,
            recoveries: self.recoveries + other.recoveries,
        }
    }
}

const MAGIC: &[u8; 8] = b"TCDMPG01";
const CATALOG_HEADER: &str = "tcdm-storage-catalog v1";
const HEAP_FILE: &str = "heap.tcdm";
const WAL_FILE: &str = "wal.tcdm";

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unesc(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                other => {
                    return Err(Error::storage(format!(
                        "bad escape in stored catalog: \\{other:?}"
                    )))
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Encode one row as one page cell: `ncols u16`, then a tag byte per
/// value (0 NULL, 1 INT i64, 2 FLOAT bits u64, 3 STR len u32 + UTF-8,
/// 4 BOOL u8, 5 DATE days i32), all little-endian. Floats round-trip by
/// bit pattern, so the codec is bit-exact.
fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + row.len() * 9);
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
            Value::Date(d) => {
                out.push(5);
                out.extend_from_slice(&d.days_since_epoch().to_le_bytes());
            }
        }
    }
    out
}

fn decode_row(cell: &[u8]) -> Result<Row> {
    fn take<'a>(cell: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8]> {
        let s = cell
            .get(*at..*at + n)
            .ok_or_else(|| Error::storage("truncated row cell"))?;
        *at += n;
        Ok(s)
    }
    let mut at = 0usize;
    let b = take(cell, &mut at, 2)?;
    let ncols = u16::from_le_bytes([b[0], b[1]]);
    let mut row = Vec::with_capacity(ncols as usize);
    for _ in 0..ncols {
        let tag = take(cell, &mut at, 1)?[0];
        row.push(match tag {
            0 => Value::Null,
            1 => {
                let b = take(cell, &mut at, 8)?;
                Value::Int(i64::from_le_bytes(b.try_into().expect("8 bytes")))
            }
            2 => {
                let b = take(cell, &mut at, 8)?;
                Value::Float(f64::from_bits(u64::from_le_bytes(
                    b.try_into().expect("8 bytes"),
                )))
            }
            3 => {
                let b = take(cell, &mut at, 4)?;
                let len = u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize;
                let s = take(cell, &mut at, len)?;
                Value::Str(
                    String::from_utf8(s.to_vec())
                        .map_err(|_| Error::storage("stored string is not UTF-8"))?,
                )
            }
            4 => Value::Bool(take(cell, &mut at, 1)?[0] != 0),
            5 => {
                let b = take(cell, &mut at, 4)?;
                Value::Date(Date::from_days_since_epoch(i32::from_le_bytes(
                    b.try_into().expect("4 bytes"),
                )))
            }
            other => return Err(Error::storage(format!("unknown value tag {other}"))),
        });
    }
    if at != cell.len() {
        return Err(Error::storage("trailing bytes in row cell"));
    }
    Ok(row)
}

/// The disk-side identity of one table heap.
#[derive(Debug)]
struct HeapEntry {
    /// First page of the chain.
    root: u32,
    /// Version stamp of the in-memory [`Table`] this chain mirrors
    /// (0 = not yet bound to a live table).
    version: u64,
    /// Every page of the chain, in order (freeing needs no re-walk).
    pages: Vec<u32>,
}

/// The parsed form of the on-disk catalog blob.
struct CatalogImage {
    tables: Vec<(String, u32, Vec<Column>)>,
    views: Vec<(String, String)>,
    sequences: Vec<(String, i64, i64)>,
}

fn parse_catalog_blob(blob: &str) -> Result<CatalogImage> {
    let mut lines = blob.lines();
    if lines.next() != Some(CATALOG_HEADER) {
        return Err(Error::storage("catalog blob has a bad header"));
    }
    let mut image = CatalogImage {
        tables: Vec::new(),
        views: Vec::new(),
        sequences: Vec::new(),
    };
    for line in lines {
        let mut parts = line.split('\t');
        match parts.next() {
            Some("table") => {
                let (Some(name), Some(root)) = (parts.next(), parts.next()) else {
                    return Err(Error::storage("catalog blob: malformed table line"));
                };
                let root: u32 = root
                    .parse()
                    .map_err(|_| Error::storage("catalog blob: bad root page id"))?;
                let mut cols = Vec::new();
                for spec in parts {
                    let Some((cname, ctype)) = spec.rsplit_once(':') else {
                        return Err(Error::storage("catalog blob: malformed column spec"));
                    };
                    let dtype = DataType::from_sql_name(ctype).ok_or_else(|| {
                        Error::storage(format!("catalog blob: unknown type {ctype}"))
                    })?;
                    cols.push(Column::new(unesc(cname)?, dtype));
                }
                image.tables.push((unesc(name)?, root, cols));
            }
            Some("view") => {
                let (Some(name), Some(sql)) = (parts.next(), parts.next()) else {
                    return Err(Error::storage("catalog blob: malformed view line"));
                };
                image.views.push((unesc(name)?, unesc(sql)?));
            }
            Some("sequence") => {
                let (Some(name), Some(next), Some(inc)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(Error::storage("catalog blob: malformed sequence line"));
                };
                let next: i64 = next
                    .parse()
                    .map_err(|_| Error::storage("catalog blob: bad sequence value"))?;
                let inc: i64 = inc
                    .parse()
                    .map_err(|_| Error::storage("catalog blob: bad sequence increment"))?;
                image.sequences.push((unesc(name)?, next, inc));
            }
            Some("") | None => {}
            Some(other) => {
                return Err(Error::storage(format!(
                    "catalog blob: unknown record '{other}'"
                )))
            }
        }
    }
    Ok(image)
}

/// A durable store attached to one directory: pager + WAL + the table
/// map that links in-memory version stamps to on-disk page chains.
///
/// The store is *write-through at statement granularity*: the engine
/// calls [`PagedStore::sync`] after every statement, which diffs table
/// version stamps, rewrites only the chains that changed, and commits
/// the whole statement as one WAL transaction. See `docs/STORAGE.md`.
#[derive(Debug)]
pub struct PagedStore {
    pager: Pager,
    wal: Wal,
    cfg: StorageConfig,
    catalog_root: u32,
    catalog_pages: Vec<u32>,
    catalog_blob: String,
    /// Lowercased table name → its heap chain.
    tables: BTreeMap<String, HeapEntry>,
    next_tx: u64,
    recoveries: u64,
    poisoned: bool,
}

impl PagedStore {
    /// Open (or create) a store under `dir`, replaying the WAL first if
    /// the previous process died with committed-but-unflushed work.
    pub fn open(dir: &Path, cfg: StorageConfig) -> Result<PagedStore> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::storage(format!("create {}: {e}", dir.display())))?;
        let (wal, records) = Wal::open(&dir.join(WAL_FILE))?;
        let pager = Pager::open(&dir.join(HEAP_FILE), cfg.cache_pages)?;
        let fresh = pager.file_pages() == 0 && records.is_empty();
        let mut store = PagedStore {
            pager,
            wal,
            cfg,
            catalog_root: 0,
            catalog_pages: Vec::new(),
            catalog_blob: String::new(),
            tables: BTreeMap::new(),
            next_tx: 1,
            recoveries: 0,
            poisoned: false,
        };
        if fresh {
            store.init_fresh()?;
        } else {
            if !records.is_empty() {
                store.recover(records)?;
            }
            store.load_metadata()?;
        }
        Ok(store)
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(Error::storage(
                "storage hit a fault; reopen the database to recover",
            ));
        }
        Ok(())
    }

    /// True when the store holds no tables, views or sequences.
    pub fn is_empty(&self) -> bool {
        self.catalog_blob.trim_end() == CATALOG_HEADER
    }

    /// Current work counters.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            page_reads: self.pager.reads(),
            page_writes: self.pager.writes(),
            cache_hits: self.pager.cache_hits(),
            cache_evictions: self.pager.cache_evictions(),
            wal_appends: self.wal.appends(),
            wal_fsyncs: self.wal.fsyncs(),
            recoveries: self.recoveries,
        }
    }

    /// Arm (or disarm) the WAL crash-injection hook (tests only).
    pub fn set_fault(&mut self, fault: Option<WalFault>) {
        self.wal.set_fault(fault);
    }

    fn init_fresh(&mut self) -> Result<()> {
        self.catalog_blob = format!("{CATALOG_HEADER}\n");
        let cells = vec![self.catalog_blob.as_bytes().to_vec()];
        let (root, pages) = self.write_chain(&cells)?;
        self.catalog_root = root;
        self.catalog_pages = pages;
        self.write_superblock(root)?;
        self.commit()?;
        self.checkpoint()
    }

    fn recover(&mut self, records: Vec<WalRecord>) -> Result<()> {
        type TxImages = Vec<(u32, Box<[u8; PAGE_SIZE]>)>;
        self.recoveries = 1;
        let mut in_flight: HashMap<u64, TxImages> = HashMap::new();
        let mut committed: TxImages = Vec::new();
        let mut max_tx = 0u64;
        for record in records {
            match record {
                WalRecord::Begin { tx } => {
                    max_tx = max_tx.max(tx);
                    in_flight.insert(tx, Vec::new());
                }
                WalRecord::Page { tx, page_id, image } => {
                    if let Some(pages) = in_flight.get_mut(&tx) {
                        pages.push((page_id, image));
                    }
                }
                WalRecord::Commit { tx } => {
                    // Commit order == file order: later images win.
                    committed.extend(in_flight.remove(&tx).unwrap_or_default());
                }
            }
        }
        // Anything still in `in_flight` never committed: discarded.
        for (page_id, image) in committed {
            let page = Page::from_bytes(&image[..])?;
            if page.id() != page_id {
                return Err(Error::storage(format!(
                    "wal image for page {page_id} carries id {}",
                    page.id()
                )));
            }
            self.pager.install(page)?;
        }
        self.next_tx = max_tx + 1;
        // Make the replayed state the new heap baseline, then empty the
        // WAL — the crash is fully absorbed.
        self.checkpoint()
    }

    fn load_metadata(&mut self) -> Result<()> {
        let sb = self.pager.read(0)?;
        let cell_ok = sb.cell_count() == 1 && sb.cell(0).len() == 12 && &sb.cell(0)[..8] == MAGIC;
        if !cell_ok {
            return Err(Error::storage(
                "superblock is not a tcdm paged store (bad magic)",
            ));
        }
        let c = sb.cell(0);
        self.catalog_root = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let (cells, pages) = self.read_chain(self.catalog_root)?;
        let bytes: Vec<u8> = cells.concat();
        self.catalog_blob =
            String::from_utf8(bytes).map_err(|_| Error::storage("catalog blob is not UTF-8"))?;
        self.catalog_pages = pages;
        let image = parse_catalog_blob(&self.catalog_blob)?;

        // Walk every table chain once: binds roots to page lists and
        // feeds the mark phase of the free-list sweep.
        let mut live: BTreeSet<u32> = BTreeSet::new();
        live.insert(0);
        live.extend(&self.catalog_pages);
        for (name, root, _) in &image.tables {
            let (_, pages) = self.read_chain(*root)?;
            live.extend(&pages);
            self.tables.insert(
                name.to_ascii_lowercase(),
                HeapEntry {
                    root: *root,
                    version: 0,
                    pages,
                },
            );
        }
        let free: Vec<u32> = (1..self.pager.page_count())
            .filter(|id| !live.contains(id))
            .collect();
        self.pager.set_free(free);
        Ok(())
    }

    /// Materialise the stored catalog as in-memory tables, views and
    /// sequences. Every table gets a *fresh* version stamp, so index or
    /// cache entries from before the reopen can never hit it.
    pub fn load_catalog(&mut self) -> Result<Catalog> {
        let image = parse_catalog_blob(&self.catalog_blob)?;
        let mut catalog = Catalog::new();
        for (name, root, cols) in image.tables {
            let mut table = Table::new(name.clone(), Schema::new(cols));
            let (cells, _) = self.read_chain(root)?;
            for cell in &cells {
                table.insert(decode_row(cell)?)?;
            }
            let version = table.version();
            if let Some(entry) = self.tables.get_mut(&name.to_ascii_lowercase()) {
                entry.version = version;
            }
            catalog.create_table(table)?;
        }
        for (name, sql) in image.views {
            let Statement::Select(query) = parse_statement(&sql)? else {
                return Err(Error::storage("stored view body is not a SELECT"));
            };
            catalog.create_view(View { name, query })?;
        }
        for (name, next, inc) in image.sequences {
            catalog.create_sequence(Sequence::new(name, next, inc))?;
        }
        Ok(catalog)
    }

    fn write_superblock(&mut self, root: u32) -> Result<()> {
        let mut page = Page::new(0);
        let mut cell = Vec::with_capacity(12);
        cell.extend_from_slice(MAGIC);
        cell.extend_from_slice(&root.to_le_bytes());
        page.push_cell(&cell)?;
        self.pager.write(page)
    }

    fn write_chain(&mut self, cells: &[Vec<u8>]) -> Result<(u32, Vec<u32>)> {
        let root = self.pager.allocate();
        let mut pages = vec![root];
        let mut current = Page::new(root);
        for cell in cells {
            if !current.push_cell(cell)? {
                let next = self.pager.allocate();
                current.set_next(next);
                self.pager.write(current)?;
                current = Page::new(next);
                pages.push(next);
                // An empty page accepts any cell push_cell didn't reject.
                let pushed = current.push_cell(cell)?;
                debug_assert!(pushed);
            }
        }
        self.pager.write(current)?;
        Ok((root, pages))
    }

    fn read_chain(&mut self, root: u32) -> Result<(Vec<Vec<u8>>, Vec<u32>)> {
        let mut cells = Vec::new();
        let mut pages = Vec::new();
        let mut id = root;
        loop {
            let page = self.pager.read(id)?;
            cells.extend(page.cells().map(|c| c.to_vec()));
            pages.push(id);
            id = page.next();
            if id == 0 {
                break;
            }
            if pages.len() as u64 > self.pager.page_count() as u64 {
                return Err(Error::storage(format!(
                    "page chain from {root} has a cycle"
                )));
            }
        }
        Ok((cells, pages))
    }

    fn free_entry_pages(&mut self, pages: Vec<u32>) {
        for p in pages {
            self.pager.free_page(p);
        }
    }

    /// Serialize the catalog using this store's current root map.
    fn serialize_catalog(&self, catalog: &Catalog) -> String {
        let mut out = format!("{CATALOG_HEADER}\n");
        for name in catalog.table_names() {
            let root = self
                .tables
                .get(&name.to_ascii_lowercase())
                .map(|e| e.root)
                .unwrap_or(0);
            let table = catalog.table(name).expect("listed table exists");
            out.push_str(&format!("table\t{}\t{root}", esc(name)));
            for c in table.schema().columns() {
                out.push_str(&format!("\t{}:{}", esc(&c.name), c.dtype));
            }
            out.push('\n');
        }
        for (name, sql) in catalog.view_definitions() {
            out.push_str(&format!("view\t{}\t{}\n", esc(&name), esc(&sql)));
        }
        for (name, next, inc) in catalog.sequence_states() {
            out.push_str(&format!("sequence\t{}\t{next}\t{inc}\n", esc(&name)));
        }
        out
    }

    /// Mirror `catalog` to disk as one committed transaction. Diffs by
    /// table version stamp: unchanged tables cost one u64 comparison;
    /// changed tables get their chain rewritten. A no-op when nothing
    /// moved (the common case for pure SELECTs).
    pub fn sync(&mut self, catalog: &Catalog) -> Result<()> {
        self.check_poisoned()?;
        let mut changed: Vec<String> = Vec::new();
        let mut live_keys: BTreeSet<String> = BTreeSet::new();
        for name in catalog.table_names() {
            let key = name.to_ascii_lowercase();
            let version = catalog.table(name).expect("listed table exists").version();
            if self.tables.get(&key).map(|e| e.version) != Some(version) {
                changed.push(name.to_string());
            }
            live_keys.insert(key);
        }
        let dropped: Vec<String> = self
            .tables
            .keys()
            .filter(|k| !live_keys.contains(*k))
            .cloned()
            .collect();
        if changed.is_empty()
            && dropped.is_empty()
            && self.serialize_catalog(catalog) == self.catalog_blob
        {
            return Ok(());
        }

        for key in dropped {
            if let Some(entry) = self.tables.remove(&key) {
                self.free_entry_pages(entry.pages);
            }
        }
        for name in &changed {
            let key = name.to_ascii_lowercase();
            if let Some(entry) = self.tables.remove(&key) {
                self.free_entry_pages(entry.pages);
            }
            let table = catalog.table(name)?;
            let cells: Vec<Vec<u8>> = table.rows().iter().map(encode_row).collect();
            let (root, pages) = self.write_chain(&cells)?;
            self.tables.insert(
                key,
                HeapEntry {
                    root,
                    version: table.version(),
                    pages,
                },
            );
        }
        let blob = self.serialize_catalog(catalog);
        if blob != self.catalog_blob {
            let old = std::mem::take(&mut self.catalog_pages);
            self.free_entry_pages(old);
            let cells: Vec<Vec<u8>> = blob
                .as_bytes()
                .chunks(MAX_CELL)
                .map(<[u8]>::to_vec)
                .collect();
            let (root, pages) = self.write_chain(&cells)?;
            self.catalog_pages = pages;
            if root != self.catalog_root {
                self.catalog_root = root;
                self.write_superblock(root)?;
            }
            self.catalog_blob = blob;
        }
        self.commit()?;
        if self.wal.len() > self.cfg.checkpoint_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// WAL-commit the current transaction: Begin, one full-page image
    /// per dirtied page, Commit, then one fsync. Durability boundary.
    fn commit(&mut self) -> Result<()> {
        let mut dirty = self.pager.tx_dirty_pages();
        if dirty.is_empty() {
            return Ok(());
        }
        let tx = self.next_tx;
        self.next_tx += 1;
        let result = (|| -> Result<()> {
            self.wal.append(&WalRecord::Begin { tx })?;
            for page in dirty.iter_mut() {
                let mut image = Box::new([0u8; PAGE_SIZE]);
                image.copy_from_slice(page.sealed_bytes());
                self.wal.append(&WalRecord::Page {
                    tx,
                    page_id: page.id(),
                    image,
                })?;
            }
            self.wal.append(&WalRecord::Commit { tx })?;
            self.wal.sync()
        })();
        if result.is_err() {
            self.poisoned = true;
            return result;
        }
        self.pager.end_tx();
        Ok(())
    }

    /// Flush every dirty page to the heap, fsync it, then truncate the
    /// WAL: the heap alone now carries the whole state. Ordering is the
    /// crash-safety linchpin — the WAL only shrinks *after* the heap is
    /// durable.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.check_poisoned()?;
        let result = self.pager.flush_dirty().and_then(|_| self.wal.reset());
        if result.is_err() {
            self.poisoned = true;
            return result;
        }
        self.pager.end_tx();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tcdm_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
                Column::new("c", DataType::Float),
                Column::new("d", DataType::Date),
                Column::new("e", DataType::Bool),
            ]),
        );
        t.insert(vec![
            Value::Int(1),
            Value::Str("tab\there".into()),
            Value::Float(0.1),
            Value::Date(Date::from_ymd(1995, 12, 17).unwrap()),
            Value::Bool(true),
        ])
        .unwrap();
        t.insert(vec![
            Value::Null,
            Value::Null,
            Value::Float(-0.0),
            Value::Null,
            Value::Bool(false),
        ])
        .unwrap();
        c.create_table(t).unwrap();
        c.create_sequence(Sequence::new("ids", 10, 3)).unwrap();
        c
    }

    #[test]
    fn row_codec_is_bit_exact() {
        let rows = [
            row![1i64, "x", 2.5],
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(f64::MIN_POSITIVE),
            ],
            vec![
                Value::Date(Date::from_ymd(1899, 3, 31).unwrap()),
                Value::Str("multi\nline\\slash".into()),
                Value::Int(i64::MIN),
            ],
        ];
        for row in &rows {
            let decoded = decode_row(&encode_row(row)).unwrap();
            assert_eq!(decoded.len(), row.len());
            for (a, b) in row.iter().zip(&decoded) {
                // Value::eq treats Int(7) == Float(7.0); compare debug
                // renderings to check the exact variant and bits survive.
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
        }
        assert!(decode_row(&[5, 0]).is_err(), "truncated cell");
        assert!(decode_row(&[1, 0, 9]).is_err(), "unknown tag");
    }

    #[test]
    fn fresh_store_roundtrips_a_catalog() {
        let dir = temp_store("roundtrip");
        {
            let mut store = PagedStore::open(&dir, StorageConfig::default()).unwrap();
            assert!(store.is_empty());
            store.sync(&sample_catalog()).unwrap();
            assert!(!store.is_empty());
        } // dropped without checkpoint: WAL carries the commit
        let mut store = PagedStore::open(&dir, StorageConfig::default()).unwrap();
        assert_eq!(store.stats().recoveries, 1);
        let catalog = store.load_catalog().unwrap();
        let t = catalog.table("T").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.rows()[0][1], Value::Str("tab\there".into()));
        match &t.rows()[1][2] {
            Value::Float(f) => assert_eq!(f.to_bits(), (-0.0f64).to_bits()),
            other => panic!("{other:?}"),
        }
        assert_eq!(catalog.sequence_states(), vec![("ids".into(), 10, 3)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unchanged_catalog_sync_is_a_noop() {
        let dir = temp_store("noop");
        let mut store = PagedStore::open(&dir, StorageConfig::default()).unwrap();
        let catalog = sample_catalog();
        store.sync(&catalog).unwrap();
        let before = store.stats();
        store.sync(&catalog).unwrap();
        store.sync(&catalog).unwrap();
        let after = store.stats();
        assert_eq!(before.wal_appends, after.wal_appends);
        assert_eq!(before.page_writes, after.page_writes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_tables_free_their_pages_for_reuse() {
        let dir = temp_store("free");
        let mut store = PagedStore::open(&dir, StorageConfig::default()).unwrap();
        let mut catalog = sample_catalog();
        store.sync(&catalog).unwrap();
        let grown = store.pager.page_count();
        catalog.drop_table("t", false).unwrap();
        store.sync(&catalog).unwrap();
        // Recreate a similar table: its chain reuses the freed ids, so
        // the heap does not grow.
        let mut t = Table::new("t", Schema::new(vec![Column::new("a", DataType::Int)]));
        t.insert(row![42]).unwrap();
        catalog.create_table(t).unwrap();
        store.sync(&catalog).unwrap();
        assert_eq!(store.pager.page_count(), grown, "freed pages were reused");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fault_poisons_then_reopen_recovers_committed_only() {
        let dir = temp_store("fault");
        let mut catalog = sample_catalog();
        {
            let mut store = PagedStore::open(&dir, StorageConfig::default()).unwrap();
            store.sync(&catalog).unwrap(); // committed
            store.set_fault(Some(WalFault {
                kind: WalFaultKind::Fsync,
                at: store.stats().wal_fsyncs,
            }));
            catalog
                .table_mut("t")
                .unwrap()
                .insert(row![
                    9,
                    "uncommitted",
                    0.0,
                    Date::from_ymd(2000, 1, 1).unwrap(),
                    false
                ])
                .unwrap();
            assert!(store.sync(&catalog).is_err(), "fsync fault fires");
            assert!(store.sync(&catalog).is_err(), "store is poisoned");
            assert!(store.checkpoint().is_err(), "checkpoint refused too");
        }
        let mut store = PagedStore::open(&dir, StorageConfig::default()).unwrap();
        let recovered = store.load_catalog().unwrap();
        assert_eq!(
            recovered.table("t").unwrap().row_count(),
            2,
            "committed rows present, uncommitted row absent"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_cache_budget_still_roundtrips() {
        let dir = temp_store("tiny");
        let cfg = StorageConfig {
            cache_pages: 1,
            checkpoint_bytes: 4096,
        };
        {
            let mut store = PagedStore::open(&dir, cfg).unwrap();
            let mut catalog = Catalog::new();
            let mut t = Table::new("big", Schema::new(vec![Column::new("s", DataType::Str)]));
            for i in 0..2000 {
                t.insert(vec![Value::Str(format!("row-{i}-{}", "x".repeat(40)))])
                    .unwrap();
            }
            catalog.create_table(t).unwrap();
            store.sync(&catalog).unwrap();
            assert!(store.stats().cache_evictions > 0, "budget forced spills");
            store.checkpoint().unwrap();
        }
        let mut store = PagedStore::open(&dir, cfg).unwrap();
        let catalog = store.load_catalog().unwrap();
        let t = catalog.table("big").unwrap();
        assert_eq!(t.row_count(), 2000);
        assert_eq!(
            t.rows()[1999][0],
            Value::Str(format!("row-1999-{}", "x".repeat(40)))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
