//! The write-ahead log: physical redo records with commit boundaries,
//! fsync-on-commit, and a fault-injection hook for crash testing.
//!
//! Every frame on disk is self-describing and self-checking:
//!
//! ```text
//! frame   := [payload len u32 LE] [crc32(payload) u32 LE] [payload]
//! payload := kind u8 ++ fields
//!   kind 1  Begin   tx u64
//!   kind 2  Page    tx u64, page id u32, full page image (PAGE_SIZE)
//!   kind 3  Commit  tx u64
//! ```
//!
//! Recovery scans frames from the start and stops at the first torn or
//! corrupt one (short frame, bad length, bad CRC): everything before is
//! the durable prefix, everything after is a crash artifact and is
//! discarded. Only transactions whose `Commit` record made it into the
//! durable prefix are replayed — see `docs/STORAGE.md` for the protocol.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use super::page::{crc32, PAGE_SIZE};
use crate::error::{Error, Result};

/// One logical WAL record.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A transaction starts.
    Begin { tx: u64 },
    /// Full after-image of one page, written by transaction `tx`.
    Page {
        tx: u64,
        page_id: u32,
        image: Box<[u8; PAGE_SIZE]>,
    },
    /// Transaction `tx` is durable once this record is on disk.
    Commit { tx: u64 },
}

/// Where an injected fault fires inside the WAL writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFaultKind {
    /// Fail before any bytes of the frame are written.
    Append,
    /// Write only half the frame, then fail — a torn append.
    TornAppend,
    /// Fail the fsync and drop every byte written since the last
    /// successful fsync, as a crashed OS page cache would.
    Fsync,
}

/// A simulated crash point: fire on the `at`-th operation (0-based) of
/// the matching kind. After a fault fires the log is poisoned and every
/// further operation errors, so the only way forward is a fresh
/// [`Wal::open`] — exactly like a process restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalFault {
    pub kind: WalFaultKind,
    pub at: u64,
}

/// An append-only log file plus replay/truncate machinery.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// End of the valid, written prefix (next append goes here).
    len: u64,
    /// End of the prefix known durable (last successful fsync).
    synced_len: u64,
    appends: u64,
    fsyncs: u64,
    fault: Option<WalFault>,
    poisoned: bool,
}

fn encode(record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    match record {
        WalRecord::Begin { tx } => {
            payload.push(1);
            payload.extend_from_slice(&tx.to_le_bytes());
        }
        WalRecord::Page { tx, page_id, image } => {
            payload.push(2);
            payload.extend_from_slice(&tx.to_le_bytes());
            payload.extend_from_slice(&page_id.to_le_bytes());
            payload.extend_from_slice(&image[..]);
        }
        WalRecord::Commit { tx } => {
            payload.push(3);
            payload.extend_from_slice(&tx.to_le_bytes());
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn decode(payload: &[u8]) -> Option<WalRecord> {
    let read_u64 = |at: usize| -> Option<u64> {
        payload
            .get(at..at + 8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    };
    match payload.first()? {
        1 if payload.len() == 9 => Some(WalRecord::Begin { tx: read_u64(1)? }),
        2 if payload.len() == 13 + PAGE_SIZE => {
            let tx = read_u64(1)?;
            let b = &payload[9..13];
            let page_id = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            let mut image = Box::new([0u8; PAGE_SIZE]);
            image.copy_from_slice(&payload[13..]);
            Some(WalRecord::Page { tx, page_id, image })
        }
        3 if payload.len() == 9 => Some(WalRecord::Commit { tx: read_u64(1)? }),
        _ => None,
    }
}

impl Wal {
    /// Open (or create) the log at `path`, replay its durable prefix and
    /// truncate away any torn tail. Returns the log positioned for
    /// appending plus every valid record in file order.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| Error::storage(format!("open wal {}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| Error::storage(format!("read wal: {e}")))?;

        let mut records = Vec::new();
        let mut at = 0usize;
        while bytes.len() - at >= 8 {
            let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
                as usize;
            let sum =
                u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
            let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
                break; // torn tail: frame extends past EOF
            };
            if crc32(payload) != sum {
                break; // torn or corrupt frame
            }
            let Some(record) = decode(payload) else {
                break; // unknown kind or malformed payload
            };
            records.push(record);
            at += 8 + len;
        }
        let valid = at as u64;
        file.set_len(valid)
            .map_err(|e| Error::storage(format!("truncate wal tail: {e}")))?;
        file.seek(SeekFrom::Start(valid))
            .map_err(|e| Error::storage(format!("seek wal: {e}")))?;
        Ok((
            Wal {
                file,
                len: valid,
                synced_len: valid,
                appends: 0,
                fsyncs: 0,
                fault: None,
                poisoned: false,
            },
            records,
        ))
    }

    /// Arm (or disarm) the crash-injection hook.
    pub fn set_fault(&mut self, fault: Option<WalFault>) {
        self.fault = fault;
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(Error::storage(
                "write-ahead log hit an injected fault; reopen the database to recover",
            ));
        }
        Ok(())
    }

    fn fires(&self, kind: WalFaultKind, count: u64) -> bool {
        matches!(self.fault, Some(f) if f.kind == kind && f.at == count)
    }

    /// Append one record at the end of the valid prefix. Not durable
    /// until [`Wal::sync`] returns.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.check_poisoned()?;
        if self.fires(WalFaultKind::Append, self.appends) {
            self.poisoned = true;
            return Err(Error::storage("injected fault: wal append failed"));
        }
        let frame = encode(record);
        let torn = self.fires(WalFaultKind::TornAppend, self.appends);
        let write = if torn {
            &frame[..frame.len() / 2]
        } else {
            &frame[..]
        };
        self.file
            .seek(SeekFrom::Start(self.len))
            .and_then(|_| self.file.write_all(write))
            .map_err(|e| {
                self.poisoned = true;
                Error::storage(format!("wal append: {e}"))
            })?;
        if torn {
            self.poisoned = true;
            return Err(Error::storage("injected fault: torn wal append"));
        }
        self.len += frame.len() as u64;
        self.appends += 1;
        Ok(())
    }

    /// Make every appended record durable. On an injected fsync fault
    /// the unsynced tail is physically dropped from the file, modelling
    /// dirty OS buffers lost in a crash.
    pub fn sync(&mut self) -> Result<()> {
        self.check_poisoned()?;
        if self.fires(WalFaultKind::Fsync, self.fsyncs) {
            self.poisoned = true;
            let _ = self.file.set_len(self.synced_len);
            self.len = self.synced_len;
            return Err(Error::storage("injected fault: wal fsync failed"));
        }
        self.file.sync_data().map_err(|e| {
            self.poisoned = true;
            Error::storage(format!("wal fsync: {e}"))
        })?;
        self.synced_len = self.len;
        self.fsyncs += 1;
        Ok(())
    }

    /// Checkpoint step: the heap now holds everything, so empty the log.
    pub fn reset(&mut self) -> Result<()> {
        self.check_poisoned()?;
        self.file
            .set_len(0)
            .and_then(|_| self.file.sync_data())
            .map_err(|e| {
                self.poisoned = true;
                Error::storage(format!("wal reset: {e}"))
            })?;
        self.len = 0;
        self.synced_len = 0;
        Ok(())
    }

    /// Bytes currently in the valid prefix (drives auto-checkpointing).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the valid prefix is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records appended since open.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Successful fsyncs since open.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::page::Page;

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tcdm_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal")
    }

    fn image(fill: u8) -> Box<[u8; PAGE_SIZE]> {
        let mut p = Page::new(fill as u32);
        p.push_cell(&[fill; 16]).unwrap();
        let mut img = Box::new([0u8; PAGE_SIZE]);
        img.copy_from_slice(p.sealed_bytes());
        img
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let path = temp_wal("roundtrip");
        {
            let (mut wal, records) = Wal::open(&path).unwrap();
            assert!(records.is_empty());
            wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
            wal.append(&WalRecord::Page {
                tx: 1,
                page_id: 5,
                image: image(7),
            })
            .unwrap();
            wal.append(&WalRecord::Commit { tx: 1 }).unwrap();
            wal.sync().unwrap();
            assert_eq!(wal.appends(), 3);
            assert_eq!(wal.fsyncs(), 1);
        }
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[0], WalRecord::Begin { tx: 1 }));
        assert!(matches!(
            records[1],
            WalRecord::Page {
                tx: 1,
                page_id: 5,
                ..
            }
        ));
        assert!(matches!(records[2], WalRecord::Commit { tx: 1 }));
        assert!(!wal.is_empty());
    }

    #[test]
    fn torn_tail_is_discarded_on_open() {
        let path = temp_wal("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
            wal.append(&WalRecord::Commit { tx: 1 }).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn append: half a frame of garbage at the tail.
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&[0xAB; 11]);
        std::fs::write(&path, &torn).unwrap();
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2, "durable prefix survives");
        assert_eq!(wal.len(), full.len() as u64, "torn tail truncated away");
    }

    #[test]
    fn injected_faults_poison_the_log() {
        for kind in [WalFaultKind::Append, WalFaultKind::TornAppend] {
            let path = temp_wal("fault_append");
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.set_fault(Some(WalFault { kind, at: 1 }));
            wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
            assert!(wal.append(&WalRecord::Commit { tx: 1 }).is_err());
            // Poisoned: everything fails until reopen.
            assert!(wal.append(&WalRecord::Begin { tx: 2 }).is_err());
            assert!(wal.sync().is_err());
            let (_, records) = Wal::open(&path).unwrap();
            assert_eq!(records.len(), 1, "only the clean append survives");
        }
    }

    #[test]
    fn fsync_fault_drops_unsynced_tail() {
        let path = temp_wal("fault_fsync");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
        wal.append(&WalRecord::Commit { tx: 1 }).unwrap();
        wal.sync().unwrap();
        wal.set_fault(Some(WalFault {
            kind: WalFaultKind::Fsync,
            at: 1,
        }));
        wal.append(&WalRecord::Begin { tx: 2 }).unwrap();
        wal.append(&WalRecord::Commit { tx: 2 }).unwrap();
        assert!(wal.sync().is_err(), "second fsync faults");
        let (_, records) = Wal::open(&path).unwrap();
        // Transaction 2 was never durable; its records are gone.
        assert_eq!(records.len(), 2);
        assert!(matches!(records[1], WalRecord::Commit { tx: 1 }));
    }
}
