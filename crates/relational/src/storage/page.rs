//! The fixed-size slotted page: the unit of disk I/O, caching and
//! write-ahead logging.
//!
//! Every page is [`PAGE_SIZE`] bytes with a 16-byte header, a slot
//! directory growing *up* from the header and cell payloads growing
//! *down* from the end — the classical slotted layout:
//!
//! ```text
//!  0         4         8        12    14    16
//!  ┌─────────┬─────────┬─────────┬─────┬─────┬──────────────┬───┈┈───┐
//!  │checksum │ page id │ next id │cells│cell │ slot dir ──▶ │ ◀── cells│
//!  │ (CRC32) │         │(0 = end)│     │start│ (off,len)×n  │        │
//!  └─────────┴─────────┴─────────┴─────┴─────┴──────────────┴───┈┈───┘
//! ```
//!
//! The checksum covers every byte after itself, so a torn write — a
//! page only partially flushed before a crash — is detected on the next
//! read instead of silently decoding garbage. Page id 0 is reserved for
//! the superblock, which is why `next id = 0` can mean "end of chain".
//!
//! ```
//! use relational::storage::page::{Page, MAX_CELL};
//! let mut p = Page::new(7);
//! assert!(p.push_cell(b"hello").unwrap());
//! assert_eq!(p.cell(0), b"hello");
//! assert!(p.free_space() < MAX_CELL);
//! let bytes = p.sealed_bytes().to_vec();
//! let back = Page::from_bytes(&bytes).unwrap();
//! assert_eq!(back.id(), 7);
//! assert_eq!(back.cell_count(), 1);
//! ```

use crate::error::{Error, Result};

/// Size of every page, in bytes. Fixed for the whole store: the heap
/// file is an array of `PAGE_SIZE` slots and a page id is its index.
pub const PAGE_SIZE: usize = 4096;

/// Header bytes before the slot directory.
pub const HEADER: usize = 16;

/// Largest payload one cell can carry (one slot entry + the payload
/// must fit beside the header). Rows above this limit are rejected
/// with a typed storage error — see `docs/STORAGE.md`.
pub const MAX_CELL: usize = PAGE_SIZE - HEADER - SLOT;

const SLOT: usize = 4;

/// One fixed-size slotted page, always resident as a boxed buffer.
#[derive(Debug, Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

fn read_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn write_u16(b: &mut [u8], at: usize, v: u16) {
    b[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn write_u32(b: &mut [u8], at: usize, v: u32) {
    b[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

impl Page {
    /// A fresh, empty page with the given id.
    pub fn new(id: u32) -> Page {
        let mut page = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        write_u32(&mut page.data[..], 4, id);
        write_u32(&mut page.data[..], 8, 0);
        write_u16(&mut page.data[..], 12, 0);
        write_u16(&mut page.data[..], 14, PAGE_SIZE as u16);
        page
    }

    /// Decode a page from raw bytes, verifying length and checksum.
    /// A checksum mismatch means a torn or corrupted write.
    pub fn from_bytes(bytes: &[u8]) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(Error::storage(format!(
                "page image is {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        let mut page = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        page.data.copy_from_slice(bytes);
        let stored = read_u32(&page.data[..], 0);
        let actual = crc32(&page.data[4..]);
        if stored != actual {
            return Err(Error::storage(format!(
                "checksum mismatch on page {} (stored {stored:#010x}, computed {actual:#010x}) — torn or corrupt write",
                page.id()
            )));
        }
        Ok(page)
    }

    /// This page's id (its index in the heap file).
    pub fn id(&self) -> u32 {
        read_u32(&self.data[..], 4)
    }

    /// The next page in this chain (0 = end of chain).
    pub fn next(&self) -> u32 {
        read_u32(&self.data[..], 8)
    }

    /// Link this page to a successor.
    pub fn set_next(&mut self, next: u32) {
        write_u32(&mut self.data[..], 8, next);
    }

    /// Number of cells stored.
    pub fn cell_count(&self) -> usize {
        read_u16(&self.data[..], 12) as usize
    }

    fn cell_start(&self) -> usize {
        read_u16(&self.data[..], 14) as usize
    }

    /// Bytes still available for one more cell (payload only).
    pub fn free_space(&self) -> usize {
        let used_low = HEADER + SLOT * self.cell_count();
        self.cell_start().saturating_sub(used_low + SLOT)
    }

    /// Append a cell. Returns `Ok(false)` when the page is full and the
    /// caller should chain a new page; errors when the payload can never
    /// fit in any page.
    pub fn push_cell(&mut self, payload: &[u8]) -> Result<bool> {
        if payload.len() > MAX_CELL {
            return Err(Error::storage(format!(
                "cell of {} bytes exceeds the page capacity of {MAX_CELL} bytes",
                payload.len()
            )));
        }
        if self.free_space() < payload.len() {
            return Ok(false);
        }
        let n = self.cell_count();
        let start = self.cell_start() - payload.len();
        self.data[start..start + payload.len()].copy_from_slice(payload);
        let slot_at = HEADER + SLOT * n;
        write_u16(&mut self.data[..], slot_at, start as u16);
        write_u16(&mut self.data[..], slot_at + 2, payload.len() as u16);
        write_u16(&mut self.data[..], 12, (n + 1) as u16);
        write_u16(&mut self.data[..], 14, start as u16);
        Ok(true)
    }

    /// The payload of cell `i` (panics when out of range, like slicing).
    pub fn cell(&self, i: usize) -> &[u8] {
        assert!(i < self.cell_count(), "cell {i} out of range");
        let slot_at = HEADER + SLOT * i;
        let off = read_u16(&self.data[..], slot_at) as usize;
        let len = read_u16(&self.data[..], slot_at + 2) as usize;
        &self.data[off..off + len]
    }

    /// Iterate all cell payloads in insertion order.
    pub fn cells(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.cell_count()).map(move |i| self.cell(i))
    }

    /// Stamp the checksum and return the full on-disk image.
    pub fn sealed_bytes(&mut self) -> &[u8; PAGE_SIZE] {
        let sum = crc32(&self.data[4..]);
        write_u32(&mut self.data[..], 0, sum);
        &self.data
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum Ethernet, gzip and SQLite's WAL use for torn-write
/// detection. Table-driven, table built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn push_and_read_cells() {
        let mut p = Page::new(3);
        assert!(p.push_cell(b"abc").unwrap());
        assert!(p.push_cell(b"").unwrap());
        assert!(p.push_cell(b"defg").unwrap());
        assert_eq!(p.cell_count(), 3);
        assert_eq!(p.cell(0), b"abc");
        assert_eq!(p.cell(1), b"");
        assert_eq!(p.cell(2), b"defg");
        assert_eq!(p.cells().count(), 3);
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = Page::new(1);
        let payload = [7u8; 100];
        let mut pushed = 0;
        while p.push_cell(&payload).unwrap() {
            pushed += 1;
        }
        // 100-byte payload + 4-byte slot per cell inside the usable area.
        assert_eq!(pushed, (PAGE_SIZE - HEADER) / 104);
        // Existing cells are intact after the failed push.
        assert_eq!(p.cell(0), &payload[..]);
    }

    #[test]
    fn oversized_cell_is_a_typed_error() {
        let mut p = Page::new(1);
        let huge = vec![0u8; MAX_CELL + 1];
        assert!(p.push_cell(&huge).is_err());
        let max = vec![1u8; MAX_CELL];
        assert!(p.push_cell(&max).unwrap());
    }

    #[test]
    fn seal_roundtrip_and_torn_write_detection() {
        let mut p = Page::new(9);
        p.push_cell(b"payload").unwrap();
        p.set_next(11);
        let mut bytes = p.sealed_bytes().to_vec();
        let back = Page::from_bytes(&bytes).unwrap();
        assert_eq!(back.id(), 9);
        assert_eq!(back.next(), 11);
        assert_eq!(back.cell(0), b"payload");
        // Flip one byte anywhere in the body: the checksum catches it.
        bytes[PAGE_SIZE - 1] ^= 0xFF;
        assert!(Page::from_bytes(&bytes).is_err());
        assert!(Page::from_bytes(&bytes[..10]).is_err());
    }
}
