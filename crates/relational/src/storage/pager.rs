//! The pager: maps page ids onto a single heap file, funnels every
//! access through the [`PageCache`], and hands
//! out page ids from a free list rebuilt by mark-and-sweep at open.
//!
//! The heap file is a flat array of [`PAGE_SIZE`] slots; page id `n`
//! lives at byte offset `n * PAGE_SIZE`. Page 0 is the superblock and is
//! never allocated to a chain. The free list is deliberately *not*
//! persisted: the store recomputes it at open from the set of reachable
//! pages, which removes a whole class of free-list corruption bugs.
//!
//! Writes inside a transaction stay pinned in the cache (no-steal);
//! committed pages reach the heap either by LRU spill or by checkpoint
//! ([`Pager::flush_dirty`]), both of which are safe because commit has
//! already made their WAL images durable.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use super::cache::PageCache;
use super::page::{Page, PAGE_SIZE};
use crate::error::{Error, Result};

/// Heap-file manager; see the module docs for the protocol.
#[derive(Debug)]
pub struct Pager {
    file: File,
    /// Pages the store knows about (allocated; the file may be shorter
    /// until the next spill or checkpoint reaches the tail).
    page_count: u32,
    /// Pages physically present in the file at open (fresh-store probe).
    file_pages: u32,
    /// Reusable page ids, sorted descending so `pop` yields the smallest
    /// (deterministic allocation order).
    free: Vec<u32>,
    cache: PageCache,
    tx_dirty: BTreeSet<u32>,
    reads: u64,
    writes: u64,
}

impl Pager {
    /// Open (or create) the heap file with a cache of `cache_pages`.
    pub fn open(path: &Path, cache_pages: usize) -> Result<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| Error::storage(format!("open heap {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| Error::storage(format!("stat heap: {e}")))?
            .len();
        let file_pages = (len / PAGE_SIZE as u64) as u32;
        Ok(Pager {
            file,
            page_count: file_pages.max(1), // page 0 is always reserved
            file_pages,
            free: Vec::new(),
            cache: PageCache::new(cache_pages),
            tx_dirty: BTreeSet::new(),
            reads: 0,
            writes: 0,
        })
    }

    /// Pages physically present in the heap file when it was opened.
    pub fn file_pages(&self) -> u32 {
        self.file_pages
    }

    /// Pages the store has ever allocated (including freed ones).
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Raise the allocation horizon (recovery saw a higher page id).
    pub fn ensure_page_count(&mut self, n: u32) {
        self.page_count = self.page_count.max(n);
    }

    /// Install the free list computed by mark-and-sweep.
    pub fn set_free(&mut self, mut free: Vec<u32>) {
        free.sort_unstable_by(|a, b| b.cmp(a));
        self.free = free;
    }

    /// Hand out a page id: the smallest free one, else a fresh one.
    pub fn allocate(&mut self) -> u32 {
        match self.free.pop() {
            Some(id) => id,
            None => {
                let id = self.page_count;
                self.page_count += 1;
                id
            }
        }
    }

    /// Return a page id to the free list and drop any cached copy.
    pub fn free_page(&mut self, id: u32) {
        self.cache.remove(id);
        self.tx_dirty.remove(&id);
        match self.free.binary_search_by(|x| id.cmp(x)) {
            Ok(_) => {} // double-free is a no-op
            Err(at) => self.free.insert(at, id),
        }
    }

    fn heap_write(&mut self, page: &mut Page) -> Result<()> {
        let offset = page.id() as u64 * PAGE_SIZE as u64;
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.write_all(page.sealed_bytes()))
            .map_err(|e| Error::storage(format!("heap write page {}: {e}", page.id())))?;
        self.writes += 1;
        Ok(())
    }

    fn spill(&mut self, evicted: Vec<Page>) -> Result<()> {
        for mut page in evicted {
            self.heap_write(&mut page)?;
        }
        Ok(())
    }

    /// Read a page, from cache when possible, from the heap otherwise
    /// (verifying its checksum and identity on the way in).
    pub fn read(&mut self, id: u32) -> Result<Page> {
        if let Some(page) = self.cache.get(id) {
            return Ok(page.clone());
        }
        let mut buf = [0u8; PAGE_SIZE];
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .and_then(|_| self.file.read_exact(&mut buf))
            .map_err(|e| Error::storage(format!("heap read page {id}: {e}")))?;
        self.reads += 1;
        let page = Page::from_bytes(&buf)?;
        if page.id() != id {
            return Err(Error::storage(format!(
                "heap page {id} carries id {} — misdirected write",
                page.id()
            )));
        }
        let evicted = self.cache.insert(page.clone(), false);
        self.spill(evicted)?;
        Ok(page)
    }

    /// Write a page inside the current transaction: cached dirty and
    /// pinned until [`Pager::end_tx`], and recorded for the commit's WAL
    /// records.
    pub fn write(&mut self, page: Page) -> Result<()> {
        self.tx_dirty.insert(page.id());
        let evicted = self.cache.insert(page, true);
        self.spill(evicted)
    }

    /// Install a committed page image during recovery: dirty (so the
    /// recovery checkpoint flushes it) but outside any transaction.
    pub fn install(&mut self, page: Page) -> Result<()> {
        self.ensure_page_count(page.id() + 1);
        let evicted = self.cache.insert(page, true);
        self.spill(evicted)
    }

    /// Final images of every page written by the current transaction,
    /// sorted by id (pages freed again within the transaction are
    /// unreachable and skipped).
    pub fn tx_dirty_pages(&self) -> Vec<Page> {
        self.tx_dirty
            .iter()
            .filter_map(|id| self.cache.peek(*id).cloned())
            .collect()
    }

    /// The transaction committed: clear its dirty set and release pins.
    pub fn end_tx(&mut self) {
        self.tx_dirty.clear();
        self.cache.unpin_all();
    }

    /// Checkpoint step: write every dirty page to the heap and fsync it.
    pub fn flush_dirty(&mut self) -> Result<()> {
        for mut page in self.cache.take_dirty() {
            self.heap_write(&mut page)?;
        }
        self.file
            .sync_data()
            .map_err(|e| Error::storage(format!("heap fsync: {e}")))
    }

    /// Heap pages read from disk.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Heap pages written to disk (spills + checkpoints).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Reads served by the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Pages pushed out of the cache by the LRU policy.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_heap(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tcdm_pager_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("heap")
    }

    #[test]
    fn write_flush_reopen_read() {
        let path = temp_heap("roundtrip");
        {
            let mut pager = Pager::open(&path, 8).unwrap();
            assert_eq!(pager.file_pages(), 0, "fresh heap");
            let id = pager.allocate();
            assert_eq!(id, 1, "page 0 stays reserved");
            let mut page = Page::new(id);
            page.push_cell(b"cell").unwrap();
            pager.write(page).unwrap();
            pager.end_tx();
            pager.flush_dirty().unwrap();
        }
        let mut pager = Pager::open(&path, 8).unwrap();
        assert_eq!(pager.file_pages(), 2);
        let page = pager.read(1).unwrap();
        assert_eq!(page.cell(0), b"cell");
        assert_eq!(pager.reads(), 1);
        // Second read is a cache hit, not a heap read.
        pager.read(1).unwrap();
        assert_eq!(pager.reads(), 1);
        assert_eq!(pager.cache_hits(), 1);
    }

    #[test]
    fn allocation_prefers_smallest_free_id() {
        let path = temp_heap("alloc");
        let mut pager = Pager::open(&path, 8).unwrap();
        let a = pager.allocate();
        let b = pager.allocate();
        let c = pager.allocate();
        assert_eq!((a, b, c), (1, 2, 3));
        pager.free_page(c);
        pager.free_page(a);
        pager.free_page(a); // double-free is harmless
        assert_eq!(pager.allocate(), 1);
        assert_eq!(pager.allocate(), 3);
        assert_eq!(pager.allocate(), 4);
    }

    #[test]
    fn eviction_spills_committed_pages_to_heap() {
        let path = temp_heap("spill");
        let mut pager = Pager::open(&path, 2).unwrap();
        for _ in 0..4 {
            let id = pager.allocate();
            let mut p = Page::new(id);
            p.push_cell(&id.to_le_bytes()).unwrap();
            pager.write(p).unwrap();
        }
        // All four are pinned: the cache overshoots instead of stealing.
        assert_eq!(pager.writes(), 0);
        pager.end_tx();
        // Post-commit pressure evicts down to budget, spilling to heap.
        let id = pager.allocate();
        pager.write(Page::new(id)).unwrap();
        assert!(pager.writes() >= 2, "dirty evictions reached the heap");
        assert!(pager.cache_evictions() >= 2);
        // Spilled pages read back intact from the heap.
        let p = pager.read(1).unwrap();
        assert_eq!(p.cell(0), &1u32.to_le_bytes());
    }
}
