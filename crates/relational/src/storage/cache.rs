//! The pinning page cache: a bounded pool of in-memory pages with LRU
//! eviction and a no-steal pin protocol.
//!
//! Pages dirtied by the transaction in flight are *pinned* — the cache
//! will never evict them, so an uncommitted page can never reach the
//! heap file before its redo image is durable in the WAL (the no-steal
//! buffer policy). Unpinned dirty pages (committed, not yet
//! checkpointed) may be evicted; the caller receives them back and must
//! write them to the heap, which is safe precisely because commit
//! already logged their images.
//!
//! ```
//! use relational::storage::cache::PageCache;
//! use relational::storage::page::Page;
//! let mut cache = PageCache::new(2);
//! assert!(cache.insert(Page::new(1), false).is_empty());
//! assert!(cache.insert(Page::new(2), false).is_empty());
//! assert!(cache.get(1).is_some());       // hit; bumps recency
//! cache.insert(Page::new(3), false);     // evicts page 2 (LRU)
//! assert!(cache.get(2).is_none());
//! assert_eq!(cache.hits(), 1);
//! assert_eq!(cache.evictions(), 1);
//! ```

use std::collections::HashMap;

use super::page::Page;

#[derive(Debug)]
struct Entry {
    page: Page,
    dirty: bool,
    pinned: bool,
    last_used: u64,
}

/// A bounded page pool with LRU eviction; see the module docs for the
/// pin/dirty protocol.
#[derive(Debug)]
pub struct PageCache {
    budget: usize,
    entries: HashMap<u32, Entry>,
    clock: u64,
    hits: u64,
    evictions: u64,
}

impl PageCache {
    /// A cache holding at most `budget` pages (minimum 1).
    pub fn new(budget: usize) -> PageCache {
        PageCache {
            budget: budget.max(1),
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            evictions: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Look up a cached page, bumping its recency and the hit counter.
    pub fn get(&mut self, id: u32) -> Option<&Page> {
        let clock = self.tick();
        let entry = self.entries.get_mut(&id)?;
        entry.last_used = clock;
        self.hits += 1;
        Some(&entry.page)
    }

    /// Insert (or replace) a page. Returns any *dirty* pages evicted to
    /// make room — the caller must write them to the heap. Clean
    /// evictions are dropped silently. Pinned pages are never evicted;
    /// when everything is pinned the cache grows past its budget rather
    /// than violate the no-steal policy.
    pub fn insert(&mut self, page: Page, dirty: bool) -> Vec<Page> {
        let clock = self.tick();
        let id = page.id();
        match self.entries.get_mut(&id) {
            Some(entry) => {
                entry.page = page;
                entry.dirty = entry.dirty || dirty;
                entry.pinned = entry.pinned || dirty;
                entry.last_used = clock;
                return Vec::new();
            }
            None => {
                self.entries.insert(
                    id,
                    Entry {
                        page,
                        dirty,
                        pinned: dirty,
                        last_used: clock,
                    },
                );
            }
        }
        let mut spilled = Vec::new();
        while self.entries.len() > self.budget {
            let victim = self
                .entries
                .iter()
                .filter(|(vid, e)| !e.pinned && **vid != id)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(vid, _)| *vid);
            let Some(victim) = victim else {
                break; // everything is pinned: exceed the budget
            };
            let entry = self.entries.remove(&victim).expect("victim exists");
            self.evictions += 1;
            if entry.dirty {
                spilled.push(entry.page);
            }
        }
        spilled
    }

    /// Look at a cached page without counting a hit or touching recency
    /// (internal bookkeeping reads, e.g. gathering commit images).
    pub fn peek(&self, id: u32) -> Option<&Page> {
        self.entries.get(&id).map(|e| &e.page)
    }

    /// Release every pin (commit finished; the WAL holds the images).
    pub fn unpin_all(&mut self) {
        for entry in self.entries.values_mut() {
            entry.pinned = false;
        }
    }

    /// Drain the dirty set for a checkpoint: returns clones of every
    /// dirty page (sorted by id for deterministic heap writes) and marks
    /// them clean.
    pub fn take_dirty(&mut self) -> Vec<Page> {
        let mut dirty: Vec<Page> = self
            .entries
            .values_mut()
            .filter(|e| e.dirty)
            .map(|e| {
                e.dirty = false;
                e.page.clone()
            })
            .collect();
        dirty.sort_by_key(|p| p.id());
        dirty
    }

    /// Forget a page entirely (used when its page id is freed).
    pub fn remove(&mut self, id: u32) {
        self.entries.remove(&id);
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Pages pushed out by the LRU policy.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = PageCache::new(2);
        cache.insert(Page::new(1), false);
        cache.insert(Page::new(2), false);
        cache.get(1); // 2 is now least recent
        cache.insert(Page::new(3), false);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn dirty_evictions_are_returned_for_spill() {
        let mut cache = PageCache::new(1);
        cache.insert(Page::new(1), true);
        cache.unpin_all(); // committed: evictable now
        let spilled = cache.insert(Page::new(2), false);
        assert_eq!(spilled.len(), 1);
        assert_eq!(spilled[0].id(), 1);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mut cache = PageCache::new(1);
        cache.insert(Page::new(1), true); // dirty ⇒ pinned
        let spilled = cache.insert(Page::new(2), true);
        assert!(spilled.is_empty(), "no-steal: pinned pages never spill");
        assert_eq!(cache.len(), 2, "budget exceeded rather than steal");
        assert!(cache.get(1).is_some());
        cache.unpin_all();
        cache.insert(Page::new(3), false);
        assert_eq!(cache.len(), 1, "pressure relieved after unpin");
    }

    #[test]
    fn take_dirty_is_sorted_and_clears_flags() {
        let mut cache = PageCache::new(8);
        cache.insert(Page::new(5), true);
        cache.insert(Page::new(2), true);
        cache.insert(Page::new(9), false);
        let dirty = cache.take_dirty();
        assert_eq!(dirty.iter().map(Page::id).collect::<Vec<_>>(), vec![2, 5]);
        assert!(cache.take_dirty().is_empty(), "flags cleared");
    }
}
