//! Persistent hash indexes over base tables — the engine's access paths.
//!
//! The preprocessing programs of the paper's Appendix A join and group the
//! same encoded tables (`Source`, `ValidGroups`, `Bset`, `Hset`, ...) over
//! and over, and before this module every such operator rebuilt its hash
//! table from a full scan. A [`HashIndex`] is that hash table kept alive
//! in the catalog's shadow: built lazily the first time a column set is
//! used as an equi-join build key or a GROUP BY key, then reused by every
//! later statement until the table changes.
//!
//! Invalidation is by version, not by notification: every table carries a
//! globally-unique version stamp ([`crate::table::Table::version`]) that
//! changes on INSERT/UPDATE/DELETE/TRUNCATE, and an index remembers the
//! stamp it was built against. A lookup whose stamp disagrees discards the
//! entry and rebuilds — stale results are structurally impossible, even
//! across DROP/CREATE of a same-named table or a reload from disk, because
//! stamps are never reused.
//!
//! The index stores *every* key, including keys containing SQL NULL. The
//! GROUP BY consumer wants NULL groups; the equi-join consumer never
//! probes with a NULL key (SQL equality semantics skip them), so
//! NULL-containing entries are simply unreachable on that path.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::row::Row;
use crate::value::Value;

/// Whether the engine may create and consult table indexes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum IndexPolicy {
    /// Build an index the first time a column set is used as an equi-join
    /// or GROUP BY key, and reuse it while the table version holds.
    #[default]
    Auto,
    /// Never build or consult indexes; every operator scans.
    Off,
}

impl IndexPolicy {
    /// Parse a policy name (`auto` | `off`), ASCII-case-insensitively.
    pub fn from_name(name: &str) -> Option<IndexPolicy> {
        match name.to_ascii_lowercase().as_str() {
            "auto" => Some(IndexPolicy::Auto),
            "off" => Some(IndexPolicy::Off),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            IndexPolicy::Auto => "auto",
            IndexPolicy::Off => "off",
        }
    }
}

impl fmt::Display for IndexPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A hash index on one column set of one table snapshot.
///
/// `map` buckets row positions by key value; `order` lists the distinct
/// keys in first-seen row order. Both views are exactly what the two
/// consumers need: the equi-join probes `map`, and GROUP BY walks `order`
/// so grouped output keeps the same deterministic first-seen order as an
/// on-the-fly bucketing pass.
#[derive(Debug)]
pub struct HashIndex {
    /// Key value → positions of the rows carrying it, ascending.
    pub map: HashMap<Vec<Value>, Vec<usize>>,
    /// Distinct keys in first-seen row order.
    pub order: Vec<Vec<Value>>,
    /// The table version this index was built against.
    pub version: u64,
}

impl HashIndex {
    /// Build an index over `rows` keyed by the given column positions.
    pub fn build(rows: &[Row], cols: &[usize], version: u64) -> HashIndex {
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rows.len());
        let mut order: Vec<Vec<Value>> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(e.key().clone());
                    e.insert(vec![i]);
                }
            }
        }
        HashIndex {
            map,
            order,
            version,
        }
    }

    /// Rough memory footprint in bytes (keys + row-position lists).
    pub fn approx_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for (key, rows) in &self.map {
            bytes += 16 * (2 * key.len() as u64) + 8 * rows.len() as u64;
        }
        bytes
    }
}

/// The per-database registry of live indexes, keyed by lowercase table
/// name and column positions. Entries are replaced on version mismatch and
/// purged when their table is dropped or recreated.
#[derive(Debug, Default)]
pub struct IndexRegistry {
    entries: HashMap<(String, Vec<usize>), Arc<HashIndex>>,
}

/// What [`IndexRegistry::get`] found, so the caller can account for the
/// lookup without the registry knowing about engine statistics.
pub enum IndexLookup {
    /// A live index at the requested version.
    Hit(Arc<HashIndex>),
    /// An entry existed but its version is stale; it has been removed.
    Stale,
    /// No entry for this table/column set.
    Miss,
}

impl IndexRegistry {
    /// Look up the index for `(table, cols)` at exactly `version`,
    /// discarding a stale entry.
    pub fn get(&mut self, table: &str, cols: &[usize], version: u64) -> IndexLookup {
        let key = (table.to_ascii_lowercase(), cols.to_vec());
        match self.entries.get(&key) {
            Some(ix) if ix.version == version => IndexLookup::Hit(Arc::clone(ix)),
            Some(_) => {
                self.entries.remove(&key);
                IndexLookup::Stale
            }
            None => IndexLookup::Miss,
        }
    }

    /// True when a live index exists for `(table, cols)` at exactly
    /// `version`. Read-only: stale entries are left for [`Self::get`].
    pub fn peek(&self, table: &str, cols: &[usize], version: u64) -> bool {
        let key = (table.to_ascii_lowercase(), cols.to_vec());
        matches!(self.entries.get(&key), Some(ix) if ix.version == version)
    }

    /// Store a freshly built index.
    pub fn put(&mut self, table: &str, cols: &[usize], index: Arc<HashIndex>) {
        self.entries
            .insert((table.to_ascii_lowercase(), cols.to_vec()), index);
    }

    /// Drop every index of one table (DROP TABLE / CREATE TABLE).
    pub fn purge_table(&mut self, table: &str) {
        let key = table.to_ascii_lowercase();
        self.entries.retain(|(t, _), _| *t != key);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no index is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn policy_names_round_trip() {
        for policy in [IndexPolicy::Auto, IndexPolicy::Off] {
            assert_eq!(IndexPolicy::from_name(policy.name()), Some(policy));
            assert_eq!(
                IndexPolicy::from_name(&policy.name().to_ascii_uppercase()),
                Some(policy)
            );
        }
        assert_eq!(IndexPolicy::from_name("fast"), None);
        assert_eq!(IndexPolicy::default(), IndexPolicy::Auto);
    }

    #[test]
    fn build_buckets_in_first_seen_order() {
        let rows = vec![row![2, "b"], row![1, "a"], row![2, "c"]];
        let ix = HashIndex::build(&rows, &[0], 7);
        assert_eq!(ix.order, vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        assert_eq!(ix.map[&vec![Value::Int(2)]], vec![0, 2]);
        assert_eq!(ix.map[&vec![Value::Int(1)]], vec![1]);
        assert_eq!(ix.version, 7);
        assert!(ix.approx_bytes() > 0);
    }

    #[test]
    fn null_keys_are_stored() {
        let rows = vec![vec![Value::Null], vec![Value::Int(1)]];
        let ix = HashIndex::build(&rows, &[0], 1);
        assert_eq!(ix.order.len(), 2);
        assert_eq!(ix.map[&vec![Value::Null]], vec![0]);
    }

    #[test]
    fn registry_hits_stale_and_purges() {
        let mut reg = IndexRegistry::default();
        let ix = Arc::new(HashIndex::build(&[row![1]], &[0], 5));
        reg.put("T", &[0], ix);
        assert!(matches!(reg.get("t", &[0], 5), IndexLookup::Hit(_)));
        assert!(matches!(reg.get("t", &[0], 6), IndexLookup::Stale));
        assert!(matches!(reg.get("t", &[0], 6), IndexLookup::Miss));
        let ix = Arc::new(HashIndex::build(&[row![1]], &[0], 6));
        reg.put("t", &[0], ix);
        assert_eq!(reg.len(), 1);
        reg.purge_table("T");
        assert!(reg.is_empty());
    }
}
