//! Error types for the relational engine.

use std::fmt;

/// Every failure the engine can report.
///
/// The engine is used programmatically by the mining kernel, so errors carry
/// enough structure for callers to react (e.g. distinguish a missing table
/// from a type error) while keeping a human-readable rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexical error while scanning SQL text.
    Lex { pos: usize, message: String },
    /// Syntax error while parsing SQL text.
    Parse { pos: usize, message: String },
    /// A referenced catalog object does not exist.
    UnknownObject { kind: ObjectKind, name: String },
    /// An object with this name already exists.
    DuplicateObject { kind: ObjectKind, name: String },
    /// A column reference could not be resolved.
    UnknownColumn { name: String },
    /// A column reference is ambiguous (matches more than one input column).
    AmbiguousColumn { name: String },
    /// Operation applied to incompatible value types.
    TypeMismatch { message: String },
    /// Arity mismatch (e.g. INSERT with the wrong number of values).
    Arity { expected: usize, got: usize },
    /// A scalar subquery returned more than one row or column.
    ScalarSubquery { message: String },
    /// Aggregate misuse (nesting, aggregate in WHERE, ...).
    Aggregate { message: String },
    /// Host variable not bound.
    UnboundVariable { name: String },
    /// Division by zero or other arithmetic failure.
    Arithmetic { message: String },
    /// Failure in the durable storage layer (I/O, checksum, WAL, or a
    /// misconfigured backend switch).
    Storage { message: String },
    /// Anything else.
    Unsupported { message: String },
}

/// The kinds of catalog objects an [`Error`] can reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Table,
    View,
    Sequence,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectKind::Table => write!(f, "table"),
            ObjectKind::View => write!(f, "view"),
            ObjectKind::Sequence => write!(f, "sequence"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            Error::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            Error::UnknownObject { kind, name } => write!(f, "unknown {kind} '{name}'"),
            Error::DuplicateObject { kind, name } => {
                write!(f, "{kind} '{name}' already exists")
            }
            Error::UnknownColumn { name } => write!(f, "unknown column '{name}'"),
            Error::AmbiguousColumn { name } => write!(f, "ambiguous column '{name}'"),
            Error::TypeMismatch { message } => write!(f, "type mismatch: {message}"),
            Error::Arity { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            Error::ScalarSubquery { message } => write!(f, "scalar subquery: {message}"),
            Error::Aggregate { message } => write!(f, "aggregate: {message}"),
            Error::UnboundVariable { name } => write!(f, "unbound host variable ':{name}'"),
            Error::Arithmetic { message } => write!(f, "arithmetic error: {message}"),
            Error::Storage { message } => write!(f, "storage error: {message}"),
            Error::Unsupported { message } => write!(f, "unsupported: {message}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Build an [`Error::Unsupported`] from anything displayable.
    pub fn unsupported(message: impl Into<String>) -> Self {
        Error::Unsupported {
            message: message.into(),
        }
    }

    /// Build an [`Error::TypeMismatch`] from anything displayable.
    pub fn type_mismatch(message: impl Into<String>) -> Self {
        Error::TypeMismatch {
            message: message.into(),
        }
    }

    /// Build an [`Error::Storage`] from anything displayable.
    pub fn storage(message: impl Into<String>) -> Self {
        Error::Storage {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_kind_and_name() {
        let e = Error::UnknownObject {
            kind: ObjectKind::Table,
            name: "purchase".into(),
        };
        assert_eq!(e.to_string(), "unknown table 'purchase'");
    }

    #[test]
    fn display_renders_positions() {
        let e = Error::Parse {
            pos: 7,
            message: "expected FROM".into(),
        };
        assert!(e.to_string().contains("at 7"));
    }
}
