//! The preprocessor (§4.2): runs the translator's SQL program against the
//! SQL server, producing the encoded tables the core operator works on.

use relational::{Database, Value};

use crate::error::{MineError, Result};
use crate::translator::{Step, Translation};

/// Timing/row-count breakdown of a preprocessing run, used by the
/// benchmark harness (experiment E2/E3) and exposed for curiosity.
#[derive(Debug, Clone, Default)]
pub struct PreprocessReport {
    /// `(query id, statement count)` per executed step.
    pub executed: Vec<(String, usize)>,
    /// Total number of groups in the source (`:totg`).
    pub total_groups: u64,
    /// The absolute large-element threshold (`:mingroups`).
    pub min_groups: u64,
}

/// Run a sequence of translation steps on the database.
pub fn run_steps(db: &mut Database, steps: &[Step], min_support: f64) -> Result<PreprocessReport> {
    let mut report = PreprocessReport::default();
    for step in steps {
        match step {
            Step::Sql { id, sql } => {
                let outcome = db.execute(sql).map_err(|e| annotate(e, id, sql))?;
                report
                    .executed
                    .push((id.clone(), outcome.rows_affected.max(1)));
            }
            Step::ComputeMinGroups => {
                let totg = match db.var("totg") {
                    Some(Value::Int(n)) => *n,
                    other => {
                        return Err(MineError::Internal {
                            message: format!(":totg not set before ComputeMinGroups: {other:?}"),
                        })
                    }
                };
                let min_groups = min_groups_for(totg as u64, min_support);
                db.set_var("mingroups", Value::Int(min_groups as i64));
                report.total_groups = totg as u64;
                report.min_groups = min_groups;
            }
        }
    }
    Ok(report)
}

/// The smallest group count that satisfies `count / totg >= min_support`,
/// never below 1 (a rule must occur somewhere).
pub fn min_groups_for(total_groups: u64, min_support: f64) -> u64 {
    let raw = (total_groups as f64 * min_support).ceil() as u64;
    raw.max(1)
}

/// Run the full preprocessing phase of a translation: cleanup first, then
/// `Q0`..`Q11`.
pub fn preprocess(db: &mut Database, translation: &Translation) -> Result<PreprocessReport> {
    run_steps(db, &translation.cleanup, translation.stmt.min_support)?;
    run_steps(db, &translation.preprocess, translation.stmt.min_support)
}

fn annotate(e: relational::Error, id: &str, sql: &str) -> MineError {
    match MineError::from(e) {
        MineError::Sql(inner) => MineError::Internal {
            message: format!("preprocessing query {id} failed: {inner} (sql: {sql})"),
        },
        MineError::Syntax { pos, message } => MineError::Internal {
            message: format!(
                "generated SQL for {id} failed to parse at {pos}: {message} (sql: {sql})"
            ),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_groups_rounds_up() {
        assert_eq!(min_groups_for(10, 0.25), 3);
        assert_eq!(min_groups_for(10, 0.2), 2);
        assert_eq!(min_groups_for(2, 0.2), 1);
        assert_eq!(min_groups_for(1000, 0.001), 1);
        assert_eq!(min_groups_for(4, 0.5), 2);
    }

    #[test]
    fn min_groups_never_zero() {
        assert_eq!(min_groups_for(100, 0.0001), 1);
        assert_eq!(min_groups_for(0, 0.5), 1);
    }
}
