//! The preprocessor (§4.2): runs the translator's SQL program against the
//! SQL server, producing the encoded tables the core operator works on.
//!
//! Under the cost-based planner ([`relational::PlannerMode::Cost`], the
//! default) the simple-class program (`Q1`..`Q4` of Figure 4a, without a
//! group HAVING or a source condition) runs as **one fused pipelined
//! pass** instead of six SQL statements: a single scan of the source
//! assigns group and body encodings in first-seen order, and the
//! intermediate artefacts (`ValidGroupsView`, `DistinctGroupsInBody`)
//! stream through in-memory maps without ever materialising as catalog
//! tables. The encoded outputs (`ValidGroups`, `Bset`, `CodedSource`),
//! the `:totg`/`:mingroups` bindings and the id-sequence states are
//! bit-identical to the step-by-step SQL program — row contents *and*
//! row order — which `tests/planner_agreement.rs` enforces.

use std::collections::HashMap;

use relational::expr::compile::ExecCounter;
use relational::expr::eval::QueryCtx;
use relational::{
    Column, ColumnBatch, DataType, Database, ExecMode, PlannerMode, Schema, Table, Value,
    VECTOR_BATCH_ROWS,
};

use crate::directives::StatementClass;
use crate::error::{MineError, Result};
use crate::translator::{Step, Translation};

/// Timing/row-count breakdown of a preprocessing run, used by the
/// benchmark harness (experiment E2/E3) and exposed for curiosity.
#[derive(Debug, Clone, Default)]
pub struct PreprocessReport {
    /// `(query id, statement count)` per executed step.
    pub executed: Vec<(String, usize)>,
    /// Total number of groups in the source (`:totg`).
    pub total_groups: u64,
    /// The absolute large-element threshold (`:mingroups`).
    pub min_groups: u64,
    /// How many SQL statements of the translated program were subsumed by
    /// the fused pipelined pass (0 when preprocessing ran step by step).
    pub fused_steps: usize,
}

/// Run a sequence of translation steps on the database.
pub fn run_steps(db: &mut Database, steps: &[Step], min_support: f64) -> Result<PreprocessReport> {
    let mut report = PreprocessReport::default();
    for step in steps {
        match step {
            Step::Sql { id, sql } => {
                let outcome = db.execute(sql).map_err(|e| annotate(e, id, sql))?;
                report
                    .executed
                    .push((id.clone(), outcome.rows_affected.max(1)));
            }
            Step::ComputeMinGroups => {
                let totg = match db.var("totg") {
                    Some(Value::Int(n)) => *n,
                    other => {
                        return Err(MineError::Internal {
                            message: format!(":totg not set before ComputeMinGroups: {other:?}"),
                        })
                    }
                };
                let min_groups = min_groups_for(totg as u64, min_support);
                db.set_var("mingroups", Value::Int(min_groups as i64));
                report.total_groups = totg as u64;
                report.min_groups = min_groups;
            }
        }
    }
    Ok(report)
}

/// The smallest group count that satisfies `count / totg >= min_support`,
/// never below 1 (a rule must occur somewhere).
pub fn min_groups_for(total_groups: u64, min_support: f64) -> u64 {
    let raw = (total_groups as f64 * min_support).ceil() as u64;
    raw.max(1)
}

/// Run the full preprocessing phase of a translation: cleanup first, then
/// `Q0`..`Q11` — fused into one pipelined pass when the cost-based
/// planner is active and the statement qualifies (see [`fusible`]).
pub fn preprocess(db: &mut Database, translation: &Translation) -> Result<PreprocessReport> {
    run_steps(db, &translation.cleanup, translation.stmt.min_support)?;
    if db.planner_mode() == PlannerMode::Cost && fusible(translation) {
        return run_fused_simple(db, translation);
    }
    run_steps(db, &translation.preprocess, translation.stmt.min_support)
}

/// Whether the translated program qualifies for the fused pipelined pass:
/// the simple class (`Q1`..`Q4` only), reading one base table directly
/// (no `Q0` source materialisation) and encoding every group (no group
/// HAVING). Everything else runs the step-by-step SQL program.
pub fn fusible(translation: &Translation) -> bool {
    translation.class == StatementClass::Simple
        && !translation.directives.w
        && !translation.directives.g
}

/// The fused simple-class preprocessing pass.
///
/// One scan of the source assigns group keys and body keys to first-seen
/// slots — exactly the bucket order the SQL engine's hash GROUP BY and
/// DISTINCT produce — then `ValidGroups`, `Bset` and `CodedSource` are
/// built directly, drawing Gid/Bid from the same catalog sequences the
/// SQL program uses. The subsumed intermediates (`ValidGroupsView`,
/// `DistinctGroupsInBody`) never reach the catalog.
///
/// Unless the batch execution mode is pinned to `row`, the scan streams
/// the source through [`ColumnBatch`]es of [`VECTOR_BATCH_ROWS`] rows —
/// the same batches the SQL server's vectorized operators use — bumping
/// the `relational.vector.*` counters; key order and output tables are
/// identical either way.
fn run_fused_simple(db: &mut Database, translation: &Translation) -> Result<PreprocessReport> {
    let stmt = &translation.stmt;
    let names = &translation.names;
    let mut report = PreprocessReport::default();

    // The id sequences stay real catalog objects: draws must advance the
    // same state the SQL program would, so cache captures and later runs
    // over the same prefix agree bit for bit.
    for seq in [names.gid_sequence(), names.bid_sequence()] {
        db.execute(&format!("CREATE SEQUENCE {seq}"))?;
        report.executed.push(("DDL".to_string(), 1));
    }

    // --- The fused scan: Q1 + Q2 + Q3's DISTINCT all in one pass. ---
    // Group and body keys go into first-seen-order slot maps (the same
    // order a hash GROUP BY emits); each body slot tracks the *distinct*
    // groups it occurs in (Q3's `SELECT DISTINCT body, group` pipelined
    // into its `COUNT(*) GROUP BY body`). NULLs participate in grouping
    // (SQL GROUP BY keeps NULL keys) but never join in Q4, so each row
    // also records whether its keys are join-eligible.
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    let mut body_order: Vec<Vec<Value>> = Vec::new();
    let mut body_groups: Vec<std::collections::HashSet<usize>> = Vec::new();
    // Per source row: (group slot, body slot, join-eligible).
    let mut row_slots: Vec<(usize, usize, bool)> = Vec::new();
    // The scan reads plain columns — always vector-safe — so only an
    // explicit `row` exec mode forces the row-at-a-time walk.
    let batched = db.exec_mode() != ExecMode::Row;
    let mut vector_batches = 0u64;
    let mut vector_rows = 0u64;
    let (g_cols, b_cols) = {
        let src = &stmt.from[0].name;
        let table = db.catalog().table(src)?;
        let schema = table.schema();
        let resolve = |attrs: &[String]| -> Result<Vec<(usize, DataType)>> {
            attrs
                .iter()
                .map(|a| {
                    let i = schema.resolve(None, a).map_err(|e| MineError::Internal {
                        message: format!("fused preprocess lost attribute '{a}': {e}"),
                    })?;
                    Ok((i, schema.column(i).dtype))
                })
                .collect()
        };
        let g_cols = resolve(&stmt.group_by)?;
        let b_cols = resolve(&stmt.body.schema)?;

        let mut group_slots: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut body_slots: HashMap<Vec<Value>, usize> = HashMap::new();
        let rows = table.rows();
        row_slots.reserve(rows.len());
        let mut take = |g_key: Vec<Value>, b_key: Vec<Value>| {
            let joinable = !g_key.iter().any(|v| v.is_null()) && !b_key.iter().any(|v| v.is_null());
            let g_slot = match group_slots.get(&g_key) {
                Some(&s) => s,
                None => {
                    let s = group_order.len();
                    group_order.push(g_key.clone());
                    group_slots.insert(g_key, s);
                    s
                }
            };
            let b_slot = match body_slots.get(&b_key) {
                Some(&s) => s,
                None => {
                    let s = body_order.len();
                    body_order.push(b_key.clone());
                    body_slots.insert(b_key, s);
                    body_groups.push(std::collections::HashSet::new());
                    s
                }
            };
            body_groups[b_slot].insert(g_slot);
            row_slots.push((g_slot, b_slot, joinable));
        };
        if batched {
            // Stream the source through column batches: each chunk is
            // pivoted into typed vectors once, then both key sets gather
            // from the same batch lane by lane.
            let key_cols: Vec<usize> = g_cols.iter().chain(&b_cols).map(|&(i, _)| i).collect();
            for chunk in rows.chunks(VECTOR_BATCH_ROWS) {
                vector_batches += 1;
                vector_rows += chunk.len() as u64;
                let batch = ColumnBatch::from_rows(chunk, &key_cols);
                for lane in 0..batch.len() {
                    let g_key = g_cols.iter().map(|&(i, _)| batch.value(i, lane)).collect();
                    let b_key = b_cols.iter().map(|&(i, _)| batch.value(i, lane)).collect();
                    take(g_key, b_key);
                }
            }
        } else {
            let key_of = |row: &[Value], cols: &[(usize, DataType)]| -> Vec<Value> {
                cols.iter().map(|&(i, _)| row[i].clone()).collect()
            };
            for row in rows {
                take(key_of(row, &g_cols), key_of(row, &b_cols));
            }
        }
        (g_cols, b_cols)
    };
    if batched {
        db.bump(ExecCounter::VectorBatches, vector_batches);
        db.bump(ExecCounter::VectorRows, vector_rows);
    }

    // Q1 + ComputeMinGroups: bind :totg and :mingroups.
    let total_groups = group_order.len() as u64;
    let min_groups = min_groups_for(total_groups, stmt.min_support);
    db.set_var("totg", Value::Int(total_groups as i64));
    db.set_var("mingroups", Value::Int(min_groups as i64));
    report.total_groups = total_groups;
    report.min_groups = min_groups;
    report.executed.push(("Q1".to_string(), 1));

    // Q2: ValidGroups — with no group HAVING every group encodes, in
    // first-seen order, Gid drawn from the sequence per row.
    let mut columns = vec![Column::new("Gid", DataType::Int)];
    for (attr, &(_, dtype)) in stmt.group_by.iter().zip(&g_cols) {
        columns.push(Column::new(attr.clone(), dtype));
    }
    let mut valid_groups = Table::new(names.valid_groups(), Schema::new(columns));
    let mut gids: Vec<i64> = Vec::with_capacity(group_order.len());
    for key in &group_order {
        let gid = db
            .catalog_mut()
            .sequence_mut(&names.gid_sequence())?
            .nextval();
        gids.push(gid);
        let mut row = Vec::with_capacity(key.len() + 1);
        row.push(Value::Int(gid));
        row.extend(key.iter().cloned());
        valid_groups
            .insert(row)
            .map_err(|e| annotate_fused(e, "Q2"))?;
    }
    report
        .executed
        .push(("Q2".to_string(), valid_groups.row_count().max(1)));
    db.catalog_mut()
        .create_table(valid_groups)
        .map_err(|e| annotate_fused(e, "Q2"))?;

    // Q3: Bset — bodies in first-seen order, filtered by the
    // large-element threshold, Bid drawn only for survivors (HAVING
    // filters before the projection draws NEXTVAL).
    let mut columns = vec![Column::new("Bid", DataType::Int)];
    for (attr, &(_, dtype)) in stmt.body.schema.iter().zip(&b_cols) {
        columns.push(Column::new(attr.clone(), dtype));
    }
    columns.push(Column::new("ngroups", DataType::Int));
    let mut bset = Table::new(names.bset(), Schema::new(columns));
    let mut bids: Vec<Option<i64>> = vec![None; body_order.len()];
    for (slot, key) in body_order.iter().enumerate() {
        let ngroups = body_groups[slot].len() as u64;
        if ngroups < min_groups {
            continue;
        }
        let bid = db
            .catalog_mut()
            .sequence_mut(&names.bid_sequence())?
            .nextval();
        bids[slot] = Some(bid);
        let mut row = Vec::with_capacity(key.len() + 2);
        row.push(Value::Int(bid));
        row.extend(key.iter().cloned());
        row.push(Value::Int(ngroups as i64));
        bset.insert(row).map_err(|e| annotate_fused(e, "Q3"))?;
    }
    report
        .executed
        .push(("Q3".to_string(), bset.row_count().max(1)));
    db.catalog_mut()
        .create_table(bset)
        .map_err(|e| annotate_fused(e, "Q3"))?;

    // Q4: CodedSource — the source-scan join replayed from the recorded
    // slots: source row order, each row matching at most one group and
    // one large body, DISTINCT keeping the first (Gid, Bid) occurrence.
    let schema = Schema::new(vec![
        Column::new("Gid", DataType::Int),
        Column::new("Bid", DataType::Int),
    ]);
    let mut coded = Table::new(names.coded_source(), schema);
    let mut seen: std::collections::HashSet<(i64, i64)> = std::collections::HashSet::new();
    for &(g_slot, b_slot, joinable) in &row_slots {
        if !joinable {
            continue;
        }
        if let Some(bid) = bids[b_slot] {
            let gid = gids[g_slot];
            if seen.insert((gid, bid)) {
                coded
                    .insert(vec![Value::Int(gid), Value::Int(bid)])
                    .map_err(|e| annotate_fused(e, "Q4"))?;
            }
        }
    }
    report
        .executed
        .push(("Q4".to_string(), coded.row_count().max(1)));
    db.catalog_mut()
        .create_table(coded)
        .map_err(|e| annotate_fused(e, "Q4"))?;

    // Six SQL statements subsumed: Q1, the Q2 view + table, Q3's two
    // statements and Q4.
    report.fused_steps = 6;
    Ok(report)
}

fn annotate_fused(e: relational::Error, id: &str) -> MineError {
    MineError::Internal {
        message: format!("preprocessing query {id} failed (fused pass): {e}"),
    }
}

fn annotate(e: relational::Error, id: &str, sql: &str) -> MineError {
    match MineError::from(e) {
        MineError::Sql(inner) => MineError::Internal {
            message: format!("preprocessing query {id} failed: {inner} (sql: {sql})"),
        },
        MineError::Syntax { pos, message } => MineError::Internal {
            message: format!(
                "generated SQL for {id} failed to parse at {pos}: {message} (sql: {sql})"
            ),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_groups_rounds_up() {
        assert_eq!(min_groups_for(10, 0.25), 3);
        assert_eq!(min_groups_for(10, 0.2), 2);
        assert_eq!(min_groups_for(2, 0.2), 1);
        assert_eq!(min_groups_for(1000, 0.001), 1);
        assert_eq!(min_groups_for(4, 0.5), 2);
    }

    #[test]
    fn min_groups_never_zero() {
        assert_eq!(min_groups_for(100, 0.0001), 1);
        assert_eq!(min_groups_for(0, 0.5), 1);
    }
}
