//! Statement classification: the boolean directives of §4.1.
//!
//! The translator classifies every MINE RULE statement with eight boolean
//! variables. The first five (`H, W, M, G, C`) are orthogonal; the last
//! three are dependent (`K ⇒ C`, `F ⇒ K`, `R ⇒ G`). The directives steer
//! the preprocessor (which queries to generate), the core operator (simple
//! vs general algorithm) and the postprocessor (which decode joins to run).
//! The full directive-to-module map is in `docs/ARCHITECTURE.md`.
//!
//! # Example
//!
//! Classifying the paper's §2 statement (a mining condition over clustered
//! purchases) versus a plain market-basket statement:
//!
//! ```
//! use minerule::directives::{Directives, StatementClass};
//! use minerule::parser::parse_mine_rule;
//!
//! let plain = parse_mine_rule(
//!     "MINE RULE SimpleRules AS \
//!      SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
//!      SUPPORT, CONFIDENCE \
//!      FROM Baskets GROUP BY tr \
//!      EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
//! )?;
//! let d = Directives::classify(&plain);
//! assert_eq!(d.class(), StatementClass::Simple);
//! assert_eq!(d.to_string(), "H=0 W=0 M=0 G=0 C=0 K=0 F=0 R=0");
//!
//! let temporal = parse_mine_rule(
//!     "MINE RULE FilteredOrderedSets AS \
//!      SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, \
//!      SUPPORT, CONFIDENCE \
//!      WHERE BODY.price >= 100 AND HEAD.price < 100 \
//!      FROM Purchase GROUP BY customer \
//!      CLUSTER BY date HAVING BODY.date < HEAD.date \
//!      EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3",
//! )?;
//! let d = Directives::classify(&temporal);
//! assert_eq!(d.class(), StatementClass::General);
//! assert!(d.m && d.c && d.k, "mining condition, clusters, cluster HAVING");
//! assert!(d.invariants_hold());
//! # Ok::<(), minerule::MineError>(())
//! ```

use std::fmt;

use crate::ast::MineRuleStatement;

/// Which core-processing variant a statement needs (§3, Figure 3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementClass {
    /// Simple association rules: body and head over the same attributes,
    /// no CLUSTER BY, no mining condition.
    Simple,
    /// Everything else: the general algorithm over the rule lattice.
    General,
}

impl fmt::Display for StatementClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatementClass::Simple => write!(f, "simple"),
            StatementClass::General => write!(f, "general"),
        }
    }
}

/// The classification directives passed from the translator to the other
/// kernel components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Directives {
    /// H: body and head are relative to different attributes.
    pub h: bool,
    /// W: a source condition is present (or the FROM list joins tables).
    pub w: bool,
    /// M: a mining condition is present.
    pub m: bool,
    /// G: the GROUP BY clause has a HAVING condition.
    pub g: bool,
    /// C: a CLUSTER BY clause is present.
    pub c: bool,
    /// K: the CLUSTER BY clause has a HAVING condition (K ⇒ C).
    pub k: bool,
    /// F: the cluster condition contains aggregate functions (F ⇒ K).
    pub f: bool,
    /// R: the group condition contains aggregate functions (R ⇒ G).
    pub r: bool,
}

impl Directives {
    /// Classify a parsed statement.
    pub fn classify(stmt: &MineRuleStatement) -> Directives {
        let h = !same_attr_list(&stmt.body.schema, &stmt.head.schema);
        let w = stmt.source_cond.is_some() || stmt.from.len() > 1;
        let m = stmt.mining_cond.is_some();
        let g = stmt.group_cond.is_some();
        let c = !stmt.cluster_by.is_empty();
        let k = stmt.cluster_cond.is_some();
        let f = stmt
            .cluster_cond
            .as_ref()
            .is_some_and(|e| e.contains_aggregate());
        let r = stmt
            .group_cond
            .as_ref()
            .is_some_and(|e| e.contains_aggregate());
        Directives {
            h,
            w,
            m,
            g,
            c,
            k,
            f,
            r,
        }
    }

    /// The processing class this statement falls into.
    pub fn class(&self) -> StatementClass {
        if self.h || self.c || self.m {
            StatementClass::General
        } else {
            StatementClass::Simple
        }
    }

    /// The dependency invariants of §4.1 (`K ⇒ C`, `F ⇒ K`, `R ⇒ G`).
    /// Always true for directives built by [`Directives::classify`];
    /// exposed for property tests.
    pub fn invariants_hold(&self) -> bool {
        (!self.k || self.c) && (!self.f || self.k) && (!self.r || self.g)
    }
}

impl fmt::Display for Directives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let flag = |b: bool| if b { '1' } else { '0' };
        write!(
            f,
            "H={} W={} M={} G={} C={} K={} F={} R={}",
            flag(self.h),
            flag(self.w),
            flag(self.m),
            flag(self.g),
            flag(self.c),
            flag(self.k),
            flag(self.f),
            flag(self.r)
        )
    }
}

fn same_attr_list(a: &[String], b: &[String]) -> bool {
    a.len() == b.len()
        && a.iter()
            .all(|x| b.iter().any(|y| x.eq_ignore_ascii_case(y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_mine_rule;

    fn classify(text: &str) -> Directives {
        Directives::classify(&parse_mine_rule(text).unwrap())
    }

    #[test]
    fn simple_statement_classifies_simple() {
        let d = classify(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM t GROUP BY g EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        );
        assert_eq!(
            d,
            Directives::default(),
            "all flags false for the plainest statement"
        );
        assert_eq!(d.class(), StatementClass::Simple);
    }

    #[test]
    fn paper_statement_is_general() {
        let d = classify(
            "MINE RULE F AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD \
             WHERE BODY.price >= 100 AND HEAD.price < 100 \
             FROM Purchase WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' \
             GROUP BY customer CLUSTER BY date HAVING BODY.date < HEAD.date \
             EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3",
        );
        assert!(!d.h, "same attribute for body and head");
        assert!(d.w && d.m && d.c && d.k);
        assert!(!d.g && !d.f && !d.r);
        assert_eq!(d.class(), StatementClass::General);
        assert!(d.invariants_hold());
    }

    #[test]
    fn h_flag_for_different_schemas() {
        let d = classify(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, shop AS HEAD \
             FROM t GROUP BY g EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        );
        assert!(d.h);
        assert_eq!(d.class(), StatementClass::General);
    }

    #[test]
    fn w_flag_for_join_without_condition() {
        let d = classify(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM t, u GROUP BY g EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        );
        assert!(d.w);
        assert_eq!(d.class(), StatementClass::Simple, "W alone keeps it simple");
    }

    #[test]
    fn r_and_f_track_aggregates() {
        let d = classify(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM t GROUP BY g HAVING COUNT(*) > 2 \
             CLUSTER BY d HAVING SUM(BODY.price) > 100 \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        );
        assert!(d.g && d.r && d.c && d.k && d.f);
        assert!(d.invariants_hold());
    }

    #[test]
    fn attr_list_comparison_is_order_insensitive() {
        let d = classify(
            "MINE RULE R AS SELECT DISTINCT item, brand AS BODY, brand, item AS HEAD \
             FROM t GROUP BY g EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        );
        assert!(!d.h);
    }
}
