//! The end-to-end mining pipeline: the kernel of Figure 3a.
//!
//! [`MineRuleEngine::execute`] runs translator → preprocessor → core
//! operator → postprocessor against a [`relational::Database`], exactly
//! mirroring the process flow of the paper's architecture, and returns a
//! [`MiningOutcome`] with the decoded rules and a per-phase breakdown.

use std::time::{Duration, Instant};

use relational::Database;

use crate::core_op::{run_core, CoreOptions, CoreOutput};
use crate::encoded::read_encoded;
use crate::error::Result;
use crate::parser::parse_mine_rule;
use crate::postprocess::{postprocess, read_rules, store_encoded_rules, DecodedRule};
use crate::preprocess::{preprocess, PreprocessReport};
use crate::translator::{translate_with_prefix, Translation};

/// Wall-clock breakdown of one mining run.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    pub translate: Duration,
    pub preprocess: Duration,
    pub core: Duration,
    pub postprocess: Duration,
    /// Per-shard wall-clock of the core's mining executor (simple path
    /// with `workers > 0`; empty on the general path). One entry per
    /// shard of each sharded pass, in pass order.
    pub core_shards: Vec<Duration>,
}

impl PhaseTimings {
    /// Total time across phases.
    pub fn total(&self) -> Duration {
        self.translate + self.preprocess + self.core + self.postprocess
    }

    /// Busy time summed across executor shards — compares against
    /// [`PhaseTimings::core`] to show the parallel win (core wall-clock
    /// below summed shard time means shards overlapped).
    pub fn core_shard_busy(&self) -> Duration {
        self.core_shards.iter().sum()
    }
}

/// Everything a mining run produces.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// Decoded rules, sorted by (body, head).
    pub rules: Vec<DecodedRule>,
    /// The translation that drove the run.
    pub translation: Translation,
    /// Preprocessing row counts and thresholds.
    pub preprocess_report: PreprocessReport,
    /// Whether the general core path ran.
    pub used_general: bool,
    /// Per-phase wall-clock times.
    pub timings: PhaseTimings,
}

/// The mining engine: core-operator options plus encoded-table naming.
#[derive(Debug, Clone, Default)]
pub struct MineRuleEngine {
    /// Core-operator configuration (algorithm choice, lattice order).
    pub core: CoreOptions,
    /// Prefix for the encoded tables (lets several statements share one
    /// catalog, and enables preprocessing reuse).
    pub table_prefix: String,
}

impl MineRuleEngine {
    /// An engine with default options.
    pub fn new() -> MineRuleEngine {
        MineRuleEngine::default()
    }

    /// Select the simple-class mining algorithm by pool name
    /// (`"apriori"`, `"count"`, `"dhp"`, `"partition"`, `"sampling"`).
    pub fn with_algorithm(mut self, name: &str) -> MineRuleEngine {
        self.core.algorithm = name.to_string();
        self
    }

    /// Use a table prefix for all encoded tables.
    pub fn with_prefix(mut self, prefix: &str) -> MineRuleEngine {
        self.table_prefix = prefix.to_string();
        self
    }

    /// Run the core operator's mining executor with `workers` threads.
    /// The mined rule set is identical for every value; only wall-clock
    /// changes.
    pub fn with_workers(mut self, workers: usize) -> MineRuleEngine {
        self.core.workers = workers.max(1);
        self
    }

    /// Parse and execute a MINE RULE statement end to end.
    pub fn execute(&self, db: &mut Database, text: &str) -> Result<MiningOutcome> {
        let stmt = parse_mine_rule(text)?;

        let t0 = Instant::now();
        let translation = translate_with_prefix(&stmt, db.catalog(), &self.table_prefix)?;
        let translate_time = t0.elapsed();

        let t1 = Instant::now();
        let preprocess_report = preprocess(db, &translation)?;
        let preprocess_time = t1.elapsed();

        self.finish(
            db,
            translation,
            preprocess_report,
            translate_time,
            preprocess_time,
        )
    }

    /// Execute against *already materialised* encoded tables (the shared
    /// preprocessing of §3: "the same preprocessing could be in common to
    /// the execution of several data mining queries"). The caller must
    /// have run [`MineRuleEngine::execute`] for an identical statement
    /// shape first; only core + postprocessing run here.
    pub fn execute_reusing_preprocessing(
        &self,
        db: &mut Database,
        text: &str,
    ) -> Result<MiningOutcome> {
        let stmt = parse_mine_rule(text)?;
        let t0 = Instant::now();
        let translation = translate_with_prefix(&stmt, db.catalog(), &self.table_prefix)?;
        let translate_time = t0.elapsed();

        // Drop only the output-side tables so the decode joins can rerun.
        let out = &translation.stmt.output_table;
        for table in [
            translation.names.output_rules(),
            translation.names.output_bodies(),
            translation.names.output_heads(),
            out.clone(),
            format!("{out}_Bodies"),
            format!("{out}_Heads"),
        ] {
            db.execute(&format!("DROP TABLE IF EXISTS {table}"))?;
        }

        self.finish(
            db,
            translation,
            PreprocessReport::default(),
            translate_time,
            Duration::ZERO,
        )
    }

    fn finish(
        &self,
        db: &mut Database,
        translation: Translation,
        preprocess_report: PreprocessReport,
        translate_time: Duration,
        preprocess_time: Duration,
    ) -> Result<MiningOutcome> {
        let t2 = Instant::now();
        let encoded = read_encoded(db, &translation)?;
        let CoreOutput {
            rules,
            used_general,
            shard_timings,
            ..
        } = run_core(&encoded, &self.core)?;
        let core_time = t2.elapsed();

        let t3 = Instant::now();
        store_encoded_rules(db, &translation, &rules)?;
        postprocess(db, &translation)?;
        let decoded = read_rules(db, &translation)?;
        let postprocess_time = t3.elapsed();

        Ok(MiningOutcome {
            rules: decoded,
            translation,
            preprocess_report,
            used_general,
            timings: PhaseTimings {
                translate: translate_time,
                preprocess: preprocess_time,
                core: core_time,
                postprocess: postprocess_time,
                core_shards: shard_timings,
            },
        })
    }
}
