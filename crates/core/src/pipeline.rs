//! The end-to-end mining pipeline: the kernel of Figure 3a.
//!
//! [`MineRuleEngine::execute`] runs translator → preprocessor → core
//! operator → postprocessor against a [`relational::Database`], exactly
//! mirroring the process flow of the paper's architecture, and returns a
//! [`MiningOutcome`] with the decoded rules and a per-phase breakdown.
//!
//! Every run reports through the engine's [`Telemetry`] registry: phase
//! spans (`phase.*` histograms), translator directive counters,
//! preprocessor row counts per `Qi` step, core-operator work counters
//! and postprocessor row counts — see `docs/OBSERVABILITY.md` for the
//! full metric inventory. [`PhaseTimings`] is a per-run view derived
//! from the same spans, kept for its established accessors.

use std::time::Duration;

use relational::{
    Database, ExecMode, ExecStats, IndexPolicy, PlannerMode, SqlExec, StorageBackend,
};

use crate::cache::PreprocessCache;
use crate::core_op::{run_core_with_telemetry, CoreOptions, CoreOutput};
use crate::encoded::read_encoded;
use crate::error::{MineError, Result};
use crate::minecache::{MineResultCache, ServeKind};
use crate::parser::parse_mine_rule;
use crate::postprocess::{postprocess, read_rules, store_encoded_rules, DecodedRule};
use crate::preprocess::{preprocess, PreprocessReport};
use crate::telemetry::{MetricsSnapshot, Telemetry};
use crate::translator::{translate_with_prefix, Translation};

/// Wall-clock breakdown of one mining run.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    pub translate: Duration,
    pub preprocess: Duration,
    pub core: Duration,
    pub postprocess: Duration,
    /// Per-shard wall-clock of the core's mining executor (simple path
    /// with `workers > 0`; empty on the general path). One entry per
    /// shard of each sharded pass, in pass order.
    pub core_shards: Vec<Duration>,
}

impl PhaseTimings {
    /// Total time across phases.
    pub fn total(&self) -> Duration {
        self.translate + self.preprocess + self.core + self.postprocess
    }

    /// Busy time summed across executor shards — compares against
    /// [`PhaseTimings::core`] to show the parallel win (core wall-clock
    /// below summed shard time means shards overlapped).
    pub fn core_shard_busy(&self) -> Duration {
        self.core_shards.iter().sum()
    }
}

/// Everything a mining run produces.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// Decoded rules, sorted by (body, head).
    pub rules: Vec<DecodedRule>,
    /// The translation that drove the run.
    pub translation: Translation,
    /// Preprocessing row counts and thresholds.
    pub preprocess_report: PreprocessReport,
    /// Whether the general core path ran.
    pub used_general: bool,
    /// Per-phase wall-clock times.
    pub timings: PhaseTimings,
}

/// The mining engine: core-operator options plus encoded-table naming.
#[derive(Debug, Clone)]
pub struct MineRuleEngine {
    /// Core-operator configuration (algorithm choice, lattice order).
    pub core: CoreOptions,
    /// Prefix for the encoded tables (lets several statements share one
    /// catalog, and enables preprocessing reuse).
    pub table_prefix: String,
    /// How the SQL server evaluates expressions for this engine's runs
    /// (`auto` — the default — uses the compiled path). Every choice
    /// produces bit-identical rules and preprocessing reports; this is a
    /// perf/debugging knob, enforced by `tests/sqlexec_agreement.rs`.
    pub sqlexec: SqlExec,
    /// How the SQL server executes its hot sites for this engine's runs
    /// (`auto` — the default — runs a site batch-at-a-time when every
    /// program it evaluates is vector-safe). Every choice produces
    /// bit-identical rules and row orders; this is a perf/debugging
    /// knob, enforced by `tests/vector_agreement.rs`.
    pub exec: ExecMode,
    /// The storage backend the database is switched to before each run
    /// (`None` — the default — leaves the database on whatever backend
    /// it already uses). Memory and paged mine bit-identical rules; the
    /// paged backend adds durability (enforced by
    /// `tests/persist_roundtrip.rs`). Switching to `paged` requires the
    /// database to have a storage directory configured
    /// ([`relational::Database::set_storage_dir`]).
    pub storage: Option<StorageBackend>,
    /// How the SQL server plans queries for this engine's runs (`cost` —
    /// the default — chooses join order, build sides and access paths
    /// from catalog statistics, and lets the preprocessor fuse the
    /// simple-class `Qi` program into one pipelined pass). `naive` keeps
    /// written order and materialises every step. Both modes mine
    /// bit-identical rules (enforced by `tests/planner_agreement.rs`).
    pub planner: PlannerMode,
    /// The metrics registry every run reports into. Enabled by default;
    /// clones of the engine share the same registry. Disabling it
    /// changes no mined output (enforced by `tests/telemetry.rs`).
    telemetry: Telemetry,
    /// The preprocess artifact cache. Enabled by default; clones of the
    /// engine share the same store. Disabling it changes no mined output
    /// (enforced by `tests/cache_agreement.rs`).
    preprocache: PreprocessCache,
    /// The mined-result cache: frequent-itemset inventories keyed like
    /// the preprocess cache, serving tightened-threshold reruns and
    /// small source deltas without running the core operator. Enabled by
    /// default; clones share the same store. On/off mines bit-identical
    /// rules (enforced by `tests/cache_agreement.rs`).
    minecache: MineResultCache,
}

impl Default for MineRuleEngine {
    fn default() -> Self {
        MineRuleEngine {
            core: CoreOptions::default(),
            table_prefix: String::new(),
            sqlexec: SqlExec::default(),
            exec: ExecMode::default(),
            storage: None,
            planner: PlannerMode::default(),
            telemetry: Telemetry::new(),
            preprocache: PreprocessCache::new(),
            minecache: MineResultCache::new(),
        }
    }
}

impl MineRuleEngine {
    /// An engine with default options.
    pub fn new() -> MineRuleEngine {
        MineRuleEngine::default()
    }

    /// Select the simple-class mining algorithm by pool name
    /// (`"apriori"`, `"count"`, `"dhp"`, `"partition"`, `"sampling"`).
    pub fn with_algorithm(mut self, name: &str) -> MineRuleEngine {
        self.core.algorithm = name.to_string();
        self
    }

    /// Use a table prefix for all encoded tables.
    pub fn with_prefix(mut self, prefix: &str) -> MineRuleEngine {
        self.table_prefix = prefix.to_string();
        self
    }

    /// Run the core operator's mining executor with `workers` threads.
    /// The mined rule set is identical for every valid value; only
    /// wall-clock changes. A count of 0 is rejected when the statement
    /// runs ([`crate::MineError::InvalidWorkerCount`]).
    pub fn with_workers(mut self, workers: usize) -> MineRuleEngine {
        self.core.workers = workers;
        self
    }

    /// Pin the physical gid-set representation used by the vertical pool
    /// members (`auto` — the default — picks per set by density). Every
    /// choice mines the same rules; this is a debugging/bench knob.
    pub fn with_gidset(mut self, repr: crate::algo::GidSetRepr) -> MineRuleEngine {
        self.core.gidset = repr;
        self
    }

    /// Pin the SQL server's expression execution mode for every run of
    /// this engine (`auto` — the default — uses the compiled path).
    /// Every choice mines the same rules; this is a perf/debugging knob.
    pub fn with_sqlexec(mut self, mode: SqlExec) -> MineRuleEngine {
        self.sqlexec = mode;
        self
    }

    /// Pin the SQL server's batch execution mode for every run of this
    /// engine (`auto` — the default — vectorizes each hot site whose
    /// programs are all vector-safe). Every choice mines the same rules;
    /// this is a perf/debugging knob.
    pub fn with_exec(mut self, mode: ExecMode) -> MineRuleEngine {
        self.exec = mode;
        self
    }

    /// Switch the database to the given storage backend before each run
    /// of this engine. Both backends mine bit-identical rules; `paged`
    /// adds crash-safe durability and needs a storage directory on the
    /// database ([`relational::Database::set_storage_dir`]).
    pub fn with_storage(mut self, backend: StorageBackend) -> MineRuleEngine {
        self.storage = Some(backend);
        self
    }

    /// Pin the SQL server's planner mode for every run of this engine
    /// (`cost` — the default — plans from catalog statistics and fuses
    /// the simple-class preprocess program). Every choice mines the same
    /// rules; this is a perf/debugging knob.
    pub fn with_planner(mut self, mode: PlannerMode) -> MineRuleEngine {
        self.planner = mode;
        self
    }

    /// Turn the preprocess artifact cache on (a fresh store) or off. The
    /// cache skips `Q0`..`Q8` when a statement reruns with only changed
    /// EXTRACTING thresholds over unmodified source tables; on/off mines
    /// bit-identical rules (enforced by `tests/cache_agreement.rs`).
    pub fn with_preprocache(mut self, enabled: bool) -> MineRuleEngine {
        self.set_preprocache_enabled(enabled);
        self
    }

    /// Turn the preprocess artifact cache on (a fresh store) or off.
    pub fn set_preprocache_enabled(&mut self, enabled: bool) {
        if enabled != self.preprocache.is_enabled() {
            self.preprocache = if enabled {
                PreprocessCache::new()
            } else {
                PreprocessCache::disabled()
            };
        }
    }

    /// Whether runs currently consult the preprocess artifact cache.
    pub fn preprocache_enabled(&self) -> bool {
        self.preprocache.is_enabled()
    }

    /// Turn the mined-result cache on (a fresh store) or off. The cache
    /// answers reruns of a statement with tightened thresholds — and
    /// reruns after small INSERT/DELETE deltas on the source table —
    /// without running the core operator; on/off mines bit-identical
    /// rules (enforced by `tests/cache_agreement.rs`).
    pub fn with_minecache(mut self, enabled: bool) -> MineRuleEngine {
        self.set_minecache_enabled(enabled);
        self
    }

    /// Turn the mined-result cache on (a fresh store) or off.
    pub fn set_minecache_enabled(&mut self, enabled: bool) {
        if enabled != self.minecache.is_enabled() {
            self.minecache = if enabled {
                MineResultCache::new()
            } else {
                MineResultCache::disabled()
            };
        }
    }

    /// Whether runs currently consult the mined-result cache.
    pub fn minecache_enabled(&self) -> bool {
        self.minecache.is_enabled()
    }

    /// Report runs into the given telemetry registry (replaces the
    /// engine's own). Useful to share one registry across engines.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> MineRuleEngine {
        self.telemetry = telemetry;
        self
    }

    /// Turn metric recording on (a fresh registry) or off.
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        if enabled != self.telemetry.is_enabled() {
            self.telemetry = if enabled {
                Telemetry::new()
            } else {
                Telemetry::disabled()
            };
        }
    }

    /// Whether runs currently record metrics.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_enabled()
    }

    /// The engine's telemetry handle (cloning it shares the registry).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// A point-in-time copy of every metric recorded so far.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.telemetry.snapshot()
    }

    /// Clear all recorded metrics.
    pub fn reset_metrics(&self) {
        self.telemetry.reset();
    }

    /// Parse and execute a MINE RULE statement end to end.
    pub fn execute(&self, db: &mut Database, text: &str) -> Result<MiningOutcome> {
        self.telemetry.counter_inc("translator.statements");
        db.set_sqlexec(self.sqlexec);
        db.set_exec(self.exec);
        db.set_planner(self.planner);
        if let Some(backend) = self.storage {
            db.set_storage(backend)?;
        }
        let sql_before = db.stats();
        let stmt = parse_mine_rule(text)?;

        let span = self.telemetry.span("phase.translate");
        let translation = translate_with_prefix(&stmt, db.catalog(), &self.table_prefix)?;
        let translate_time = span.stop();
        self.record_translation(&translation);

        let span = self.telemetry.span("phase.preprocess");
        let preprocess_report = self.run_preprocess(db, &translation)?;
        let preprocess_time = span.stop();
        self.record_preprocess(&preprocess_report);

        self.finish(
            db,
            translation,
            preprocess_report,
            translate_time,
            preprocess_time,
            sql_before,
        )
    }

    /// Run preprocessing through the artifact cache: a hit reinstates the
    /// cached encoded tables (no `Qi` step executes); a miss runs the
    /// full program and captures the artifacts for the next run. With the
    /// cache disabled this is exactly [`preprocess`].
    fn run_preprocess(
        &self,
        db: &mut Database,
        translation: &Translation,
    ) -> Result<PreprocessReport> {
        if !self.preprocache.is_enabled() {
            return preprocess(db, translation);
        }
        if let Some(report) = self
            .preprocache
            .try_restore(db, translation, &self.table_prefix)?
        {
            self.telemetry.counter_inc("preprocess.cache.hit");
            return Ok(report);
        }
        self.telemetry.counter_inc("preprocess.cache.miss");
        let report = preprocess(db, translation)?;
        let stored = self
            .preprocache
            .store(db, translation, &self.table_prefix, &report);
        if stored.evicted > 0 {
            self.telemetry
                .counter_add("preprocess.cache.evict", stored.evicted);
        }
        self.telemetry
            .gauge_set("preprocess.cache.bytes", stored.bytes as i64);
        Ok(report)
    }

    /// Count the translation's directive classification
    /// (`translator.*` metrics).
    fn record_translation(&self, translation: &Translation) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_inc(&format!("translator.class.{}", translation.class));
        let d = &translation.directives;
        for (flag, set) in [
            ("h", d.h),
            ("w", d.w),
            ("m", d.m),
            ("g", d.g),
            ("c", d.c),
            ("k", d.k),
            ("f", d.f),
            ("r", d.r),
        ] {
            if set {
                self.telemetry
                    .counter_inc(&format!("translator.directive.{flag}"));
            }
        }
    }

    /// Count rows materialised per `Qi` step (`preprocess.*` metrics).
    fn record_preprocess(&self, report: &PreprocessReport) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_add("preprocess.steps", report.executed.len() as u64);
        if report.fused_steps > 0 {
            self.telemetry
                .counter_add("preprocess.fused_steps", report.fused_steps as u64);
        }
        for (id, rows) in &report.executed {
            self.telemetry
                .counter_add(&format!("preprocess.rows.{id}"), *rows as u64);
        }
        self.telemetry
            .gauge_set("preprocess.total_groups", report.total_groups as i64);
        self.telemetry
            .gauge_set("preprocess.min_groups", report.min_groups as i64);
    }

    /// Execute against *already materialised* encoded tables (the shared
    /// preprocessing of §3: "the same preprocessing could be in common to
    /// the execution of several data mining queries"). The caller must
    /// have run [`MineRuleEngine::execute`] for an identical statement
    /// shape first; only core + postprocessing run here.
    pub fn execute_reusing_preprocessing(
        &self,
        db: &mut Database,
        text: &str,
    ) -> Result<MiningOutcome> {
        self.telemetry.counter_inc("translator.statements");
        self.telemetry.counter_inc("preprocess.reused");
        db.set_sqlexec(self.sqlexec);
        db.set_exec(self.exec);
        db.set_planner(self.planner);
        if let Some(backend) = self.storage {
            db.set_storage(backend)?;
        }
        let sql_before = db.stats();
        let stmt = parse_mine_rule(text)?;
        let span = self.telemetry.span("phase.translate");
        let translation = translate_with_prefix(&stmt, db.catalog(), &self.table_prefix)?;
        let translate_time = span.stop();
        self.record_translation(&translation);

        // Drop only the output-side tables so the decode joins can rerun.
        let out = &translation.stmt.output_table;
        for table in [
            translation.names.output_rules(),
            translation.names.output_bodies(),
            translation.names.output_heads(),
            out.clone(),
            format!("{out}_Bodies"),
            format!("{out}_Heads"),
        ] {
            db.execute(&format!("DROP TABLE IF EXISTS {table}"))?;
        }

        self.finish(
            db,
            translation,
            PreprocessReport::default(),
            translate_time,
            Duration::ZERO,
            sql_before,
        )
    }

    /// Publish the SQL server's execution-counter deltas for one run
    /// (`relational.*` metrics). Zero deltas are skipped so interpreted
    /// runs don't mint empty `relational.compile.*` counters and
    /// memory-backend runs don't mint `relational.storage.*` ones; every
    /// published value is independent of the core's worker count because
    /// the relational layer runs single-threaded.
    fn record_relational(&self, before: ExecStats, after: ExecStats) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for (name, before, after) in [
            (
                "relational.compile.programs",
                before.programs_compiled,
                after.programs_compiled,
            ),
            (
                "relational.compile.const_folded",
                before.exprs_const_folded,
                after.exprs_const_folded,
            ),
            (
                "relational.compile.fallback_ops",
                before.compile_fallback_ops,
                after.compile_fallback_ops,
            ),
            (
                "relational.rows.scanned",
                before.rows_scanned,
                after.rows_scanned,
            ),
            (
                "relational.rows.filtered",
                before.rows_filtered,
                after.rows_filtered,
            ),
            (
                "relational.rows.joined",
                before.rows_joined,
                after.rows_joined,
            ),
            (
                "relational.index.built",
                before.indexes_built,
                after.indexes_built,
            ),
            ("relational.index.hits", before.index_hits, after.index_hits),
            (
                "relational.index.invalidations",
                before.index_invalidations,
                after.index_invalidations,
            ),
            (
                "relational.storage.page_reads",
                before.storage_page_reads,
                after.storage_page_reads,
            ),
            (
                "relational.storage.page_writes",
                before.storage_page_writes,
                after.storage_page_writes,
            ),
            (
                "relational.storage.cache_hits",
                before.storage_cache_hits,
                after.storage_cache_hits,
            ),
            (
                "relational.storage.cache_evictions",
                before.storage_cache_evictions,
                after.storage_cache_evictions,
            ),
            (
                "relational.storage.wal_appends",
                before.storage_wal_appends,
                after.storage_wal_appends,
            ),
            (
                "relational.storage.wal_fsyncs",
                before.storage_wal_fsyncs,
                after.storage_wal_fsyncs,
            ),
            (
                "relational.storage.recoveries",
                before.storage_recoveries,
                after.storage_recoveries,
            ),
            (
                "relational.planner.plans",
                before.planner_plans,
                after.planner_plans,
            ),
            (
                "relational.planner.reordered_joins",
                before.planner_reordered_joins,
                after.planner_reordered_joins,
            ),
            (
                "relational.planner.pushed_filters",
                before.planner_pushed_filters,
                after.planner_pushed_filters,
            ),
            (
                "relational.planner.est_rows_err",
                before.planner_est_rows_err,
                after.planner_est_rows_err,
            ),
            (
                "relational.vector.batches",
                before.vector_batches,
                after.vector_batches,
            ),
            (
                "relational.vector.rows",
                before.vector_rows,
                after.vector_rows,
            ),
            (
                "relational.vector.sel_narrowings",
                before.vector_sel_narrowings,
                after.vector_sel_narrowings,
            ),
            (
                "relational.vector.fallback_batches",
                before.vector_fallback_batches,
                after.vector_fallback_batches,
            ),
        ] {
            let delta = after.saturating_sub(before);
            if delta > 0 {
                self.telemetry.counter_add(name, delta);
            }
        }
    }

    fn finish(
        &self,
        db: &mut Database,
        translation: Translation,
        preprocess_report: PreprocessReport,
        translate_time: Duration,
        preprocess_time: Duration,
        sql_before: ExecStats,
    ) -> Result<MiningOutcome> {
        let span = self.telemetry.span("phase.core");
        // A mined-result cache serve replaces the whole core phase: no
        // encoded read, no itemset mining, no `core.level.*` activity —
        // the cached inventory filtered at the current thresholds yields
        // rules bit-identical to a cold mine.
        let serve =
            self.minecache
                .try_serve(db, &translation, &self.table_prefix, &preprocess_report)?;
        let (rules, used_general, shard_timings) = match serve {
            Some(serve) => {
                self.telemetry.counter_inc("core.minecache.hit");
                match serve.kind {
                    ServeKind::Hit => {}
                    ServeKind::Refine => self.telemetry.counter_inc("core.minecache.refine"),
                    ServeKind::Delta => self.telemetry.counter_inc("core.minecache.delta"),
                }
                (serve.rules, false, Vec::new())
            }
            None => {
                if self.minecache.is_enabled() {
                    self.telemetry.counter_inc("core.minecache.miss");
                }
                let encoded = read_encoded(db, &translation)?;
                let CoreOutput {
                    rules,
                    used_general,
                    shard_timings,
                    large_itemsets,
                    ..
                } = run_core_with_telemetry(&encoded, &self.core, &self.telemetry)?;
                if let Some(large) = &large_itemsets {
                    let stored = self.minecache.store(
                        db,
                        &translation,
                        &self.table_prefix,
                        &preprocess_report,
                        large,
                    );
                    if stored.evicted > 0 {
                        self.telemetry
                            .counter_add("core.minecache.evict", stored.evicted);
                    }
                    if self.minecache.is_enabled() {
                        self.telemetry
                            .gauge_set("core.minecache.bytes", stored.bytes as i64);
                    }
                }
                (rules, used_general, shard_timings)
            }
        };
        let core_time = span.stop();

        let span = self.telemetry.span("phase.postprocess");
        store_encoded_rules(db, &translation, &rules)?;
        self.telemetry
            .counter_add("postprocess.rules_stored", rules.len() as u64);
        postprocess(db, &translation)?;
        let decoded = read_rules(db, &translation)?;
        self.telemetry
            .counter_add("postprocess.rules_decoded", decoded.len() as u64);
        let postprocess_time = span.stop();
        self.record_relational(sql_before, db.stats());

        Ok(MiningOutcome {
            rules: decoded,
            translation,
            preprocess_report,
            used_general,
            timings: PhaseTimings {
                translate: translate_time,
                preprocess: preprocess_time,
                core: core_time,
                postprocess: postprocess_time,
                core_shards: shard_timings,
            },
        })
    }
}

/// Resolve a SQL execution mode by name (`"compiled"`, `"interpreted"`,
/// `"auto"`; ASCII-case-insensitive), reporting unknown names with the
/// valid domain like [`crate::MineError::UnknownAlgorithm`] does.
pub fn parse_sqlexec(name: &str) -> Result<SqlExec> {
    SqlExec::from_name(name).ok_or_else(|| MineError::UnknownSqlExec {
        name: name.to_string(),
    })
}

/// Resolve a batch execution mode by name (`"vector"`, `"row"`,
/// `"auto"`; ASCII-case-insensitive), reporting unknown names with the
/// valid domain like [`crate::MineError::UnknownAlgorithm`] does.
pub fn parse_exec(name: &str) -> Result<ExecMode> {
    ExecMode::from_name(name).ok_or_else(|| MineError::UnknownExecMode {
        name: name.to_string(),
    })
}

/// Resolve a preprocess cache mode by name (`"on"`, `"off"`;
/// ASCII-case-insensitive), reporting unknown names with the valid domain
/// like [`crate::MineError::UnknownAlgorithm`] does.
pub fn parse_preprocache(name: &str) -> Result<bool> {
    match name.to_ascii_lowercase().as_str() {
        "on" => Ok(true),
        "off" => Ok(false),
        _ => Err(MineError::UnknownCacheMode {
            name: name.to_string(),
        }),
    }
}

/// Resolve a mined-result cache mode by name (`"on"`, `"off"`;
/// ASCII-case-insensitive), reporting unknown names with the valid domain
/// like [`crate::MineError::UnknownAlgorithm`] does.
pub fn parse_minecache(name: &str) -> Result<bool> {
    match name.to_ascii_lowercase().as_str() {
        "on" => Ok(true),
        "off" => Ok(false),
        _ => Err(MineError::UnknownMineCacheMode {
            name: name.to_string(),
        }),
    }
}

/// Resolve a relational index policy by name (`"auto"`, `"off"`;
/// ASCII-case-insensitive), reporting unknown names with the valid domain
/// like [`crate::MineError::UnknownAlgorithm`] does.
pub fn parse_index_policy(name: &str) -> Result<IndexPolicy> {
    IndexPolicy::from_name(name).ok_or_else(|| MineError::UnknownIndexPolicy {
        name: name.to_string(),
    })
}

/// Resolve a planner mode by name (`"cost"`, `"naive"`;
/// ASCII-case-insensitive), reporting unknown names with the valid domain
/// like [`crate::MineError::UnknownAlgorithm`] does.
pub fn parse_planner(name: &str) -> Result<PlannerMode> {
    PlannerMode::from_name(name).ok_or_else(|| MineError::UnknownPlanner {
        name: name.to_string(),
    })
}

/// Resolve a storage backend by name (`"memory"`, `"paged"`;
/// ASCII-case-insensitive), reporting unknown names with the valid domain
/// like [`crate::MineError::UnknownAlgorithm`] does.
pub fn parse_storage_backend(name: &str) -> Result<StorageBackend> {
    StorageBackend::from_name(name).ok_or_else(|| MineError::UnknownStorageBackend {
        name: name.to_string(),
    })
}
