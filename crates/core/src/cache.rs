//! Fingerprint-keyed cache of preprocessing artifacts.
//!
//! Preprocessing (`Q0`..`Q8`, plus `Q9`..`Q11` with a mining condition) is
//! by far the most expensive SQL phase, yet the paper observes (§3) that
//! "the same preprocessing could be in common to the execution of several
//! data mining queries". The cache makes that observation automatic: each
//! run is keyed by a *canonical fingerprint* of the preprocessing-relevant
//! statement fragment — the FROM list, source/group/cluster conditions,
//! grouping and clustering attributes, mining condition and body/head
//! descriptors — deliberately **excluding** the EXTRACTING thresholds and
//! the output table name, which only affect the core operator and the
//! postprocessor.
//!
//! Staleness is ruled out by table versions: every base table carries a
//! globally-unique, monotonically-increasing version stamp
//! ([`relational::Table::version`]) that changes on every mutation, and an
//! entry only hits when the versions of every FROM table still match the
//! live catalog. Drop-and-recreate or reload can never resurrect an old
//! version, so a hit is always sound.
//!
//! Thresholds need one extra care: `Q3`/`Q5`/`Q9` prune at
//! `:mingroups`, so the artifacts are support-*dependent*. The cache
//! therefore applies a superset rule — a hit requires
//! `min_groups_for(entry.total_groups, new_support) >= entry.min_groups`,
//! i.e. the cached artifacts were pruned at a threshold no stricter than
//! the new one. The core operator re-filters at the current `:mingroups`
//! (its L1 pass and the lattice's large-rule filters), so warm runs mine
//! bit-identical rules to cold runs (`tests/cache_agreement.rs`).

use std::sync::{Arc, Mutex};

use relational::catalog::View;
use relational::expr::Expr;
use relational::sequence::Sequence;
use relational::{Database, Table, Value};

use crate::ast::MineRuleStatement;
use crate::error::Result;
use crate::preprocess::{min_groups_for, run_steps, PreprocessReport};
use crate::translator::Translation;

/// Most-recently-used artifact sets kept; older entries are evicted.
const MAX_ENTRIES: usize = 8;

/// One cached artifact set: everything preprocessing materialised, plus
/// the validity conditions for reuse.
#[derive(Debug, Clone)]
struct CacheEntry {
    fingerprint: String,
    /// `(lowercase table name, version)` of every FROM table at capture.
    table_versions: Vec<(String, u64)>,
    /// `:totg` at capture.
    total_groups: u64,
    /// The `:mingroups` the artifacts were pruned at (superset rule).
    min_groups: u64,
    tables: Vec<Table>,
    views: Vec<View>,
    /// `(name, next, increment)` of the id sequences at capture.
    sequences: Vec<(String, i64, i64)>,
    bytes: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    /// LRU order: least-recently used first.
    entries: Vec<CacheEntry>,
}

/// What [`PreprocessCache::store`] did, for telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOutcome {
    /// Entries evicted to make room.
    pub evicted: u64,
    /// Total approximate bytes retained after the store.
    pub bytes: u64,
}

/// The preprocess artifact cache. Clones share the same store (like
/// [`crate::telemetry::Telemetry`]), so engine clones reuse each other's
/// preprocessing. A disabled cache never hits and never retains anything.
#[derive(Debug, Clone)]
pub struct PreprocessCache {
    inner: Option<Arc<Mutex<CacheState>>>,
}

impl Default for PreprocessCache {
    fn default() -> Self {
        PreprocessCache::new()
    }
}

impl PreprocessCache {
    /// An enabled, empty cache.
    pub fn new() -> PreprocessCache {
        PreprocessCache {
            inner: Some(Arc::new(Mutex::new(CacheState::default()))),
        }
    }

    /// A cache that never hits and never stores.
    pub fn disabled() -> PreprocessCache {
        PreprocessCache { inner: None }
    }

    /// Whether lookups and stores do anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of retained artifact sets.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().unwrap().entries.len(),
            None => 0,
        }
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical fingerprint of the preprocessing-relevant fragment of
    /// a statement. Two statements with equal fingerprints generate the
    /// same preprocessing program over the same source; the EXTRACTING
    /// thresholds and the output table name are deliberately excluded.
    pub fn fingerprint(stmt: &MineRuleStatement, prefix: &str) -> String {
        fn cond(e: &Option<Expr>) -> String {
            e.as_ref().map(|x| x.to_string()).unwrap_or_default()
        }
        let from: Vec<String> = stmt
            .from
            .iter()
            .map(|t| format!("{}:{}", t.name.to_ascii_lowercase(), t.visible_name()))
            .collect();
        format!(
            "prefix={prefix}|from={}|where={}|group={}|having={}|cluster={}|cluster_having={}|mining={}|body={} {}|head={} {}",
            from.join(","),
            cond(&stmt.source_cond),
            stmt.group_by.join(","),
            cond(&stmt.group_cond),
            stmt.cluster_by.join(","),
            cond(&stmt.cluster_cond),
            cond(&stmt.mining_cond),
            stmt.body.card,
            stmt.body.schema.join(","),
            stmt.head.card,
            stmt.head.schema.join(","),
        )
    }

    /// Try to serve preprocessing from the cache. On a hit the statement's
    /// cleanup program runs (exactly as a cold run would), the cached
    /// artifact tables/views/sequences are reinstated and `:totg` /
    /// `:mingroups` are set for the *current* support threshold. Returns
    /// `None` on a miss (or when disabled) without touching the database.
    pub fn try_restore(
        &self,
        db: &mut Database,
        translation: &Translation,
        prefix: &str,
    ) -> Result<Option<PreprocessReport>> {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return Ok(None),
        };
        let stmt = &translation.stmt;
        let versions = match source_versions(db, stmt) {
            Some(v) => v,
            None => return Ok(None),
        };
        let fingerprint = Self::fingerprint(stmt, prefix);
        let entry = {
            let mut state = inner.lock().unwrap();
            let pos = state.entries.iter().position(|e| {
                e.fingerprint == fingerprint
                    && e.table_versions == versions
                    && min_groups_for(e.total_groups, stmt.min_support) >= e.min_groups
            });
            match pos {
                Some(pos) => {
                    // Touch: move to the most-recently-used end.
                    let entry = state.entries.remove(pos);
                    state.entries.push(entry.clone());
                    entry
                }
                None => return Ok(None),
            }
        };

        // Drop whatever a previous statement left behind, exactly as a
        // cold run would, then reinstate the captured objects. Restored
        // tables keep their capture-time version stamps, so any relational
        // indexes built over the same snapshot stay valid.
        run_steps(db, &translation.cleanup, stmt.min_support)?;
        for table in entry.tables {
            db.catalog_mut().create_table(table)?;
        }
        for view in entry.views {
            db.catalog_mut().create_view(view)?;
        }
        for (name, next, increment) in entry.sequences {
            db.catalog_mut()
                .create_sequence(Sequence::new(name, next, increment))?;
        }
        let min_groups = min_groups_for(entry.total_groups, stmt.min_support);
        db.set_var("totg", Value::Int(entry.total_groups as i64));
        db.set_var("mingroups", Value::Int(min_groups as i64));
        Ok(Some(PreprocessReport {
            executed: Vec::new(),
            total_groups: entry.total_groups,
            min_groups,
            fused_steps: 0,
        }))
    }

    /// Capture the artifacts a preprocessing run just materialised. A
    /// same-fingerprint entry is replaced (its versions or threshold can
    /// never become valid again once superseded); beyond the capacity
    /// (`MAX_ENTRIES`) the least-recently-used entry is evicted.
    pub fn store(
        &self,
        db: &Database,
        translation: &Translation,
        prefix: &str,
        report: &PreprocessReport,
    ) -> StoreOutcome {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return StoreOutcome::default(),
        };
        let stmt = &translation.stmt;
        let versions = match source_versions(db, stmt) {
            Some(v) => v,
            None => return StoreOutcome::default(),
        };
        let names = &translation.names;
        let catalog = db.catalog();
        let mut tables = Vec::new();
        for name in [
            names.source(),
            names.valid_groups(),
            names.distinct_groups_in_body(),
            names.distinct_groups_in_head(),
            names.bset(),
            names.hset(),
            names.clusters(),
            names.cluster_couples(),
            names.mining_source(),
            names.coded_source(),
            names.input_rules_raw(),
            names.large_rules(),
            names.input_rules(),
        ] {
            if let Ok(table) = catalog.table(&name) {
                tables.push(table.clone());
            }
        }
        let mut views = Vec::new();
        for name in [names.valid_groups_view(), names.coded_source()] {
            if let Some(view) = catalog.view(&name) {
                views.push(view.clone());
            }
        }
        let seq_names = [
            names.gid_sequence().to_ascii_lowercase(),
            names.bid_sequence().to_ascii_lowercase(),
            names.hid_sequence().to_ascii_lowercase(),
            names.cid_sequence().to_ascii_lowercase(),
        ];
        let sequences: Vec<(String, i64, i64)> = catalog
            .sequence_states()
            .into_iter()
            .filter(|(name, _, _)| seq_names.contains(&name.to_ascii_lowercase()))
            .collect();
        let bytes = approx_bytes(&tables);
        let entry = CacheEntry {
            fingerprint: Self::fingerprint(stmt, prefix),
            table_versions: versions,
            total_groups: report.total_groups,
            min_groups: report.min_groups,
            tables,
            views,
            sequences,
            bytes,
        };

        let mut state = inner.lock().unwrap();
        state.entries.retain(|e| e.fingerprint != entry.fingerprint);
        state.entries.push(entry);
        let mut evicted = 0;
        while state.entries.len() > MAX_ENTRIES {
            state.entries.remove(0);
            evicted += 1;
        }
        StoreOutcome {
            evicted,
            bytes: state.entries.iter().map(|e| e.bytes).sum(),
        }
    }
}

/// Current `(lowercase name, version)` of every FROM table, or `None` when
/// a source table is missing from the catalog.
fn source_versions(db: &Database, stmt: &MineRuleStatement) -> Option<Vec<(String, u64)>> {
    let mut versions = Vec::with_capacity(stmt.from.len());
    for source in &stmt.from {
        let table = db.catalog().table(&source.name).ok()?;
        versions.push((source.name.to_ascii_lowercase(), table.version()));
    }
    Some(versions)
}

/// Rough retained size: values dominate, headers are noise.
fn approx_bytes(tables: &[Table]) -> u64 {
    tables
        .iter()
        .map(|t| 64 + t.rows().iter().map(|r| r.len() as u64 * 24).sum::<u64>())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::purchase_db;
    use crate::parser::parse_mine_rule;
    use crate::preprocess::preprocess;
    use crate::translator::translate;

    fn stmt_text(support: f64, output: &str) -> String {
        format!(
            "MINE RULE {output} AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY tr \
             EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: 0.1"
        )
    }

    fn prepared(db: &mut Database, text: &str) -> (Translation, PreprocessReport) {
        let parsed = parse_mine_rule(text).unwrap();
        let translation = translate(&parsed, db.catalog()).unwrap();
        let report = preprocess(db, &translation).unwrap();
        (translation, report)
    }

    #[test]
    fn fingerprint_ignores_thresholds_and_output_table() {
        let a = parse_mine_rule(&stmt_text(0.25, "R1")).unwrap();
        let b = parse_mine_rule(&stmt_text(0.75, "R2")).unwrap();
        assert_eq!(
            PreprocessCache::fingerprint(&a, ""),
            PreprocessCache::fingerprint(&b, "")
        );
        // But the source fragment matters.
        let c = parse_mine_rule(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer \
             EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1",
        )
        .unwrap();
        assert_ne!(
            PreprocessCache::fingerprint(&a, ""),
            PreprocessCache::fingerprint(&c, "")
        );
        // And so does the table prefix (artifacts live at prefixed names).
        assert_ne!(
            PreprocessCache::fingerprint(&a, ""),
            PreprocessCache::fingerprint(&a, "x_")
        );
    }

    #[test]
    fn warm_hit_restores_artifacts_and_recomputes_mingroups() {
        let cache = PreprocessCache::new();
        let mut db = purchase_db();
        let (translation, report) = prepared(&mut db, &stmt_text(0.25, "R"));
        cache.store(&db, &translation, "", &report);
        assert_eq!(cache.len(), 1);

        // Refine the support threshold upwards: superset rule admits it.
        let parsed = parse_mine_rule(&stmt_text(0.5, "R")).unwrap();
        let translation = translate(&parsed, db.catalog()).unwrap();
        let warm = cache
            .try_restore(&mut db, &translation, "")
            .unwrap()
            .expect("refined threshold should hit");
        assert!(warm.executed.is_empty(), "no Qi steps on a warm run");
        assert_eq!(warm.total_groups, report.total_groups);
        assert_eq!(warm.min_groups, min_groups_for(report.total_groups, 0.5));
        // The encoded tables are back and consistent.
        assert!(db.catalog().has_table(&translation.names.bset()));
        assert_eq!(
            db.var("totg"),
            Some(&Value::Int(report.total_groups as i64))
        );
    }

    #[test]
    fn lower_threshold_misses_by_superset_rule() {
        let cache = PreprocessCache::new();
        let mut db = purchase_db();
        let (translation, report) = prepared(&mut db, &stmt_text(0.5, "R"));
        cache.store(&db, &translation, "", &report);

        let parsed = parse_mine_rule(&stmt_text(0.25, "R")).unwrap();
        let translation = translate(&parsed, db.catalog()).unwrap();
        assert!(
            cache
                .try_restore(&mut db, &translation, "")
                .unwrap()
                .is_none(),
            "a looser threshold needs items the cached artifacts pruned"
        );
    }

    #[test]
    fn source_mutation_invalidates_by_version() {
        let cache = PreprocessCache::new();
        let mut db = purchase_db();
        let (translation, report) = prepared(&mut db, &stmt_text(0.25, "R"));
        cache.store(&db, &translation, "", &report);

        db.execute(
            "INSERT INTO Purchase VALUES \
             (99, 'c9', 'umbrella', DATE '1997-01-08', 10, 1)",
        )
        .unwrap();
        let parsed = parse_mine_rule(&stmt_text(0.25, "R")).unwrap();
        let translation = translate(&parsed, db.catalog()).unwrap();
        assert!(
            cache
                .try_restore(&mut db, &translation, "")
                .unwrap()
                .is_none(),
            "mutated source table must never serve stale artifacts"
        );
    }

    #[test]
    fn disabled_cache_never_hits_or_stores() {
        let cache = PreprocessCache::disabled();
        assert!(!cache.is_enabled());
        let mut db = purchase_db();
        let (translation, report) = prepared(&mut db, &stmt_text(0.25, "R"));
        let outcome = cache.store(&db, &translation, "", &report);
        assert_eq!(outcome.bytes, 0);
        assert!(cache.is_empty());
        let parsed = parse_mine_rule(&stmt_text(0.25, "R")).unwrap();
        let translation = translate(&parsed, db.catalog()).unwrap();
        assert!(cache
            .try_restore(&mut db, &translation, "")
            .unwrap()
            .is_none());
    }

    #[test]
    fn lru_evicts_beyond_capacity() {
        let cache = PreprocessCache::new();
        let mut db = purchase_db();
        let mut last = StoreOutcome::default();
        for i in 0..=MAX_ENTRIES {
            // Distinct fingerprints via distinct group-by attributes are
            // scarce; distinct prefixes do the same job.
            let (translation, report) = prepared(&mut db, &stmt_text(0.25, "R"));
            last = cache.store(&db, &translation, &format!("p{i}_"), &report);
        }
        assert_eq!(cache.len(), MAX_ENTRIES);
        assert_eq!(last.evicted, 1);
        assert!(last.bytes > 0);
    }
}
