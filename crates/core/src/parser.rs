//! Parser for the MINE RULE operator.
//!
//! Reuses the relational crate's lexer and expression parser, so every
//! embedded condition (mining, source, group, cluster) is full SQL.

use relational::sql::lexer::Tok;
use relational::sql::parser::Parser;

use crate::ast::{CardMax, CardSpec, ElementSpec, MineRuleStatement, SourceTable};
use crate::error::{MineError, Result};

/// Parse one MINE RULE statement (a trailing `;` is allowed).
pub fn parse_mine_rule(text: &str) -> Result<MineRuleStatement> {
    let mut p = Parser::from_sql(text)?;
    let stmt = parse_with(&mut p)?;
    p.accept_tok(&Tok::Semi);
    p.expect_eof()?;
    Ok(stmt)
}

/// True when `text` looks like a MINE RULE statement (starts with the
/// keywords); used by front-ends that accept both SQL and mining input.
pub fn is_mine_rule(text: &str) -> bool {
    let mut words = text.split_whitespace();
    matches!(
        (words.next(), words.next()),
        (Some(a), Some(b)) if a.eq_ignore_ascii_case("MINE") && b.eq_ignore_ascii_case("RULE")
    )
}

fn parse_with(p: &mut Parser) -> Result<MineRuleStatement> {
    p.expect_kw("MINE")?;
    p.expect_kw("RULE")?;
    let output_table = p.expect_ident()?;
    p.expect_kw("AS")?;
    p.expect_kw("SELECT")?;
    p.expect_kw("DISTINCT")?;

    let body = parse_element(p, "BODY", CardSpec::one_to_n())?;
    p.expect_tok(&Tok::Comma)?;
    let head = parse_element(p, "HEAD", CardSpec::one_to_one())?;

    let mut select_support = false;
    let mut select_confidence = false;
    while p.accept_tok(&Tok::Comma) {
        if !select_support && p.accept_kw("SUPPORT") {
            select_support = true;
        } else if p.accept_kw("CONFIDENCE") {
            select_confidence = true;
            break;
        } else {
            return Err(MineError::Syntax {
                pos: 0,
                message: "expected SUPPORT or CONFIDENCE in SELECT list".into(),
            });
        }
    }

    // The mining condition is the WHERE *before* FROM.
    let mining_cond = if p.accept_kw("WHERE") {
        Some(p.parse_expr()?)
    } else {
        None
    };

    p.expect_kw("FROM")?;
    let mut from = Vec::new();
    loop {
        let name = p.expect_ident()?;
        let alias = p.parse_opt_alias();
        from.push(SourceTable { name, alias });
        if !p.accept_tok(&Tok::Comma) {
            break;
        }
    }

    let source_cond = if p.accept_kw("WHERE") {
        Some(p.parse_expr()?)
    } else {
        None
    };

    p.expect_kw("GROUP")?;
    p.expect_kw("BY")?;
    let group_by = parse_attr_list(p)?;
    let group_cond = if p.accept_kw("HAVING") {
        Some(p.parse_expr()?)
    } else {
        None
    };

    let (cluster_by, cluster_cond) = if p.accept_kw("CLUSTER") {
        p.expect_kw("BY")?;
        let attrs = parse_attr_list(p)?;
        let cond = if p.accept_kw("HAVING") {
            Some(p.parse_expr()?)
        } else {
            None
        };
        (attrs, cond)
    } else {
        (Vec::new(), None)
    };

    p.expect_kw("EXTRACTING")?;
    p.expect_kw("RULES")?;
    p.expect_kw("WITH")?;
    p.expect_kw("SUPPORT")?;
    p.expect_tok(&Tok::Colon)?;
    let min_support = p.expect_number()?;
    p.expect_tok(&Tok::Comma)?;
    p.expect_kw("CONFIDENCE")?;
    p.expect_tok(&Tok::Colon)?;
    let min_confidence = p.expect_number()?;

    Ok(MineRuleStatement {
        output_table,
        body,
        head,
        select_support,
        select_confidence,
        mining_cond,
        from,
        source_cond,
        group_by,
        group_cond,
        cluster_by,
        cluster_cond,
        min_support,
        min_confidence,
    })
}

/// `[<card spec>] <attr> (, <attr>)* AS BODY|HEAD`
fn parse_element(p: &mut Parser, kind: &str, default_card: CardSpec) -> Result<ElementSpec> {
    let card = parse_opt_cardspec(p)?.unwrap_or(default_card);
    let mut schema = Vec::new();
    loop {
        schema.push(p.expect_ident()?);
        if p.peek_kw("AS") {
            break;
        }
        p.expect_tok(&Tok::Comma)?;
    }
    p.expect_kw("AS")?;
    p.expect_kw(kind)?;
    Ok(ElementSpec { card, schema })
}

fn parse_opt_cardspec(p: &mut Parser) -> Result<Option<CardSpec>> {
    if !matches!(p.peek_tok(), Some(Tok::Int(_))) {
        return Ok(None);
    }
    let min = p.expect_int()?;
    p.expect_tok(&Tok::DotDot)?;
    let max = if p.accept_kw("n") {
        CardMax::Unbounded
    } else {
        CardMax::Fixed(p.expect_int()? as u32)
    };
    Ok(Some(CardSpec {
        min: min as u32,
        max,
    }))
}

fn parse_attr_list(p: &mut Parser) -> Result<Vec<String>> {
    let mut out = vec![p.expect_ident()?];
    while p.accept_tok(&Tok::Comma) {
        out.push(p.expect_ident()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full statement from §2 of the paper.
    pub const PAPER_STATEMENT: &str = "\
MINE RULE FilteredOrderedSets AS \
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE \
WHERE BODY.price >= 100 AND HEAD.price < 100 \
FROM Purchase \
WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' \
GROUP BY customer \
CLUSTER BY date HAVING BODY.date < HEAD.date \
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3";

    #[test]
    fn parses_paper_statement() {
        let s = parse_mine_rule(PAPER_STATEMENT).unwrap();
        assert_eq!(s.output_table, "FilteredOrderedSets");
        assert_eq!(s.body.schema, vec!["item"]);
        assert_eq!(s.body.card, CardSpec::one_to_n());
        assert_eq!(s.head.card, CardSpec::one_to_n());
        assert!(s.select_support && s.select_confidence);
        assert!(s.mining_cond.is_some());
        assert_eq!(s.from[0].name, "Purchase");
        assert!(s.source_cond.is_some());
        assert_eq!(s.group_by, vec!["customer"]);
        assert_eq!(s.cluster_by, vec!["date"]);
        assert!(s.cluster_cond.is_some());
        assert!((s.min_support - 0.2).abs() < 1e-12);
        assert!((s.min_confidence - 0.3).abs() < 1e-12);
    }

    #[test]
    fn parses_minimal_simple_statement() {
        let s = parse_mine_rule(
            "MINE RULE SimpleAssociations AS \
             SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE \
             FROM Transactions GROUP BY tr \
             EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.5",
        )
        .unwrap();
        assert!(s.mining_cond.is_none());
        assert!(s.source_cond.is_none());
        assert!(s.cluster_by.is_empty());
        assert_eq!(s.head.card, CardSpec::one_to_one());
    }

    #[test]
    fn default_cardinalities() {
        let s = parse_mine_rule(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM t GROUP BY g EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap();
        assert_eq!(s.body.card, CardSpec::one_to_n());
        assert_eq!(s.head.card, CardSpec::one_to_one());
        assert!(!s.select_support && !s.select_confidence);
    }

    #[test]
    fn multi_attribute_schemas() {
        let s = parse_mine_rule(
            "MINE RULE R AS SELECT DISTINCT 1..n item, brand AS BODY, 1..2 shop AS HEAD \
             FROM t GROUP BY g, h EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap();
        assert_eq!(s.body.schema, vec!["item", "brand"]);
        assert_eq!(s.head.schema, vec!["shop"]);
        assert_eq!(s.group_by, vec!["g", "h"]);
        assert_eq!(
            s.head.card,
            CardSpec {
                min: 1,
                max: CardMax::Fixed(2)
            }
        );
    }

    #[test]
    fn rejects_missing_group_by() {
        assert!(parse_mine_rule(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM t EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2"
        )
        .is_err());
    }

    #[test]
    fn rejects_missing_thresholds() {
        assert!(parse_mine_rule(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD FROM t GROUP BY g"
        )
        .is_err());
    }

    #[test]
    fn display_roundtrips() {
        let s1 = parse_mine_rule(PAPER_STATEMENT).unwrap();
        let s2 = parse_mine_rule(&s1.to_string()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn is_mine_rule_detects() {
        assert!(is_mine_rule("MINE RULE x AS ..."));
        assert!(is_mine_rule("mine rule x"));
        assert!(!is_mine_rule("SELECT * FROM t"));
    }

    #[test]
    fn from_list_with_aliases() {
        let s = parse_mine_rule(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM purchases p, products AS q WHERE p.item = q.name \
             GROUP BY customer EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias.as_deref(), Some("p"));
        assert_eq!(s.from[1].alias.as_deref(), Some("q"));
        assert_eq!(s.from[1].visible_name(), "q");
    }
}
