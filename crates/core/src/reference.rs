//! A brute-force reference implementation of the MINE RULE operational
//! semantics (§2, steps 1–6), evaluated directly from first principles —
//! no encoding, no SQL programs, no lattice.
//!
//! This evaluator is exponential in the per-group item count and exists
//! purely as a *differential-testing oracle*: on small inputs the full
//! pipeline (translator → preprocessor → core → postprocessor) must
//! produce exactly the rules this module computes. See
//! `tests/differential.rs`.

use std::collections::{BTreeMap, BTreeSet};

use relational::expr::eval::{eval_expr, eval_grouped, NoCtx};
use relational::expr::Expr;
use relational::row::Row;
use relational::types::{Column, Schema};
use relational::{Database, Value};

use crate::ast::MineRuleStatement;
use crate::error::{MineError, Result};
use crate::postprocess::DecodedRule;
use crate::preprocess::min_groups_for;

/// Rendered item: the body/head schema values joined with `|` (matching
/// the pipeline's decoder).
type Item = String;

/// Evaluate a MINE RULE statement by direct enumeration.
pub fn reference_mine(db: &mut Database, stmt: &MineRuleStatement) -> Result<Vec<DecodedRule>> {
    // Step 1 — FROM .. WHERE: the actual input table.
    let needed = stmt.needed_attributes();
    let mut from = String::new();
    for (i, t) in stmt.from.iter().enumerate() {
        if i > 0 {
            from.push_str(", ");
        }
        from.push_str(&t.name);
        if let Some(a) = &t.alias {
            from.push_str(&format!(" AS {a}"));
        }
    }
    let where_clause = match &stmt.source_cond {
        Some(c) => format!(" WHERE {c}"),
        None => String::new(),
    };
    let rs = db
        .query(&format!(
            "SELECT {} FROM {from}{where_clause}",
            needed.join(", ")
        ))
        .map_err(MineError::from)?;
    let schema = rs.schema().clone();
    let rows: Vec<Row> = rs.into_rows();

    let idx_of = |name: &str| -> Result<usize> {
        schema
            .columns()
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| MineError::Internal {
                message: format!("reference: attribute '{name}' missing"),
            })
    };
    let group_idx: Vec<usize> = stmt
        .group_by
        .iter()
        .map(|a| idx_of(a))
        .collect::<Result<_>>()?;
    let cluster_idx: Vec<usize> = stmt
        .cluster_by
        .iter()
        .map(|a| idx_of(a))
        .collect::<Result<_>>()?;
    let body_idx: Vec<usize> = stmt
        .body
        .schema
        .iter()
        .map(|a| idx_of(a))
        .collect::<Result<_>>()?;
    let head_idx: Vec<usize> = stmt
        .head
        .schema
        .iter()
        .map(|a| idx_of(a))
        .collect::<Result<_>>()?;

    // Step 2 — GROUP BY: disjoint groups, in key order for determinism.
    let mut groups: BTreeMap<Vec<String>, Vec<usize>> = BTreeMap::new();
    for (r, row) in rows.iter().enumerate() {
        let key: Vec<String> = group_idx.iter().map(|&i| row[i].to_string()).collect();
        groups.entry(key).or_default().push(r);
    }
    let total_groups = groups.len() as u32;
    let min_groups = min_groups_for(total_groups as u64, stmt.min_support) as u32;

    // Group HAVING (applied after the total count, matching Q1 then Q2).
    let group_key_exprs: Vec<Expr> = stmt.group_by.iter().map(|a| Expr::col(a.clone())).collect();
    let mut valid_groups: Vec<Vec<usize>> = Vec::new();
    for idxs in groups.values() {
        if let Some(cond) = &stmt.group_cond {
            let grows: Vec<&Row> = idxs.iter().map(|&i| &rows[i]).collect();
            let key_values: Vec<Value> = group_idx.iter().map(|&i| grows[0][i].clone()).collect();
            let keep = eval_grouped(
                cond,
                &schema,
                &grows,
                &group_key_exprs,
                &key_values,
                &mut NoCtx,
            )
            .map_err(MineError::from)?;
            if !keep.is_true() {
                continue;
            }
        }
        valid_groups.push(idxs.clone());
    }

    // Large-item filter (the Bset/Hset semantics): an item participates
    // only if it occurs in at least `min_groups` *groups* (counted over
    // all groups, as Q3 does, not only valid ones).
    let render = |row: &Row, idx: &[usize]| -> Item {
        idx.iter()
            .map(|&i| row[i].to_string())
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut body_item_groups: BTreeMap<Item, BTreeSet<usize>> = BTreeMap::new();
    let mut head_item_groups: BTreeMap<Item, BTreeSet<usize>> = BTreeMap::new();
    for (g, idxs) in groups.values().enumerate() {
        for &r in idxs {
            body_item_groups
                .entry(render(&rows[r], &body_idx))
                .or_default()
                .insert(g);
            head_item_groups
                .entry(render(&rows[r], &head_idx))
                .or_default()
                .insert(g);
        }
    }
    let large_body: BTreeSet<Item> = body_item_groups
        .iter()
        .filter(|(_, gs)| gs.len() as u32 >= min_groups)
        .map(|(i, _)| i.clone())
        .collect();
    let large_head: BTreeSet<Item> = head_item_groups
        .iter()
        .filter(|(_, gs)| gs.len() as u32 >= min_groups)
        .map(|(i, _)| i.clone())
        .collect();
    let same_schema = stmt.body.schema.len() == stmt.head.schema.len()
        && stmt
            .body
            .schema
            .iter()
            .all(|a| stmt.head.schema.iter().any(|b| a.eq_ignore_ascii_case(b)));

    // Steps 3–5 per valid group: clusters, cluster pairs, item pairs.
    // For each group we collect every locally-holding (body set, head set)
    // pair, then count supports globally.
    let mut rule_groups: BTreeMap<(Vec<Item>, Vec<Item>), BTreeSet<usize>> = BTreeMap::new();
    let mut body_groups: BTreeMap<Vec<Item>, BTreeSet<usize>> = BTreeMap::new();

    for (g, idxs) in valid_groups.iter().enumerate() {
        // Step 3 — CLUSTER BY: partition the group (one pseudo-cluster
        // without the clause).
        let mut clusters: BTreeMap<Vec<String>, Vec<usize>> = BTreeMap::new();
        for &r in idxs {
            let key: Vec<String> = cluster_idx
                .iter()
                .map(|&i| rows[r][i].to_string())
                .collect();
            clusters.entry(key).or_default().push(r);
        }
        let cluster_list: Vec<&Vec<usize>> = clusters.values().collect();

        // Step 4 — HAVING on cluster pairs.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for cb in 0..cluster_list.len() {
            for ch in 0..cluster_list.len() {
                if let Some(cond) = &stmt.cluster_cond {
                    if !cluster_pair_satisfies(
                        cond,
                        &schema,
                        &rows,
                        cluster_list[cb],
                        cluster_list[ch],
                        &stmt.cluster_by,
                        &cluster_idx,
                    )? {
                        continue;
                    }
                }
                pairs.push((cb, ch));
            }
        }

        // Confidence denominator: "all body clusters are used for
        // computing confidence" — the body occurs in a group if some
        // cluster contains it, regardless of pair validity.
        for cluster in &cluster_list {
            let mut items: BTreeSet<Item> = BTreeSet::new();
            for &r in cluster.iter() {
                let bi = render(&rows[r], &body_idx);
                if large_body.contains(&bi) {
                    items.insert(bi);
                }
            }
            let item_vec: Vec<Item> = items.into_iter().collect();
            for bset in subsets_up_to(&item_vec, stmt.body.card.upper_limit() as usize) {
                if stmt.body.card.admits(bset.len()) {
                    body_groups.entry(bset).or_default().insert(g);
                }
            }
        }

        // Step 5 — elementary pairs per cluster pair, then all subset
        // combinations that hold.
        for (cb, ch) in pairs {
            let body_rows = cluster_list[cb];
            let head_rows = cluster_list[ch];
            // Elementary validity per (item, item): some row pair with
            // those items satisfies the mining condition.
            let mut elem: BTreeSet<(Item, Item)> = BTreeSet::new();
            let mut body_items: BTreeSet<Item> = BTreeSet::new();
            let mut head_items: BTreeSet<Item> = BTreeSet::new();
            for &rb in body_rows {
                let bi = render(&rows[rb], &body_idx);
                if !large_body.contains(&bi) {
                    continue;
                }
                body_items.insert(bi.clone());
                for &rh in head_rows {
                    let hi = render(&rows[rh], &head_idx);
                    if !large_head.contains(&hi) {
                        continue;
                    }
                    head_items.insert(hi.clone());
                    if same_schema && bi == hi {
                        continue;
                    }
                    if let Some(cond) = &stmt.mining_cond {
                        if !mining_pair_satisfies(cond, &schema, &rows[rb], &rows[rh])? {
                            continue;
                        }
                    }
                    elem.insert((bi.clone(), hi.clone()));
                }
            }
            // Enumerate candidate rules: B × H fully elementary-valid.
            let body_vec: Vec<Item> = body_items.iter().cloned().collect();
            let head_vec: Vec<Item> = head_items.iter().cloned().collect();
            for bset in subsets_up_to(&body_vec, stmt.body.card.upper_limit() as usize) {
                if !stmt.body.card.admits(bset.len()) {
                    continue;
                }
                for hset in subsets_up_to(&head_vec, stmt.head.card.upper_limit() as usize) {
                    if !stmt.head.card.admits(hset.len()) {
                        continue;
                    }
                    if bset
                        .iter()
                        .all(|b| hset.iter().all(|h| elem.contains(&(b.clone(), h.clone()))))
                    {
                        rule_groups
                            .entry((bset.clone(), hset))
                            .or_default()
                            .insert(g);
                    }
                }
            }
        }
    }

    // Step 6 — support/confidence thresholds, then the output rendering.
    let mut out = Vec::new();
    for ((body, head), gs) in rule_groups {
        let count = gs.len() as u32;
        if count < min_groups {
            continue;
        }
        let body_count = body_groups
            .get(&body)
            .map(|s| s.len() as u32)
            .unwrap_or(0)
            .max(count);
        let support = count as f64 / total_groups.max(1) as f64;
        let confidence = count as f64 / body_count as f64;
        if support + 1e-12 < stmt.min_support || confidence + 1e-12 < stmt.min_confidence {
            continue;
        }
        out.push(DecodedRule {
            body,
            head,
            support,
            confidence,
        });
    }
    out.sort_by(|a, b| a.body.cmp(&b.body).then(a.head.cmp(&b.head)));
    Ok(out)
}

/// Non-empty subsets of `items` with size ≤ `max` (items are distinct and
/// sorted; subsets come out sorted).
fn subsets_up_to(items: &[Item], max: usize) -> Vec<Vec<Item>> {
    let cap = max.min(items.len()).min(16);
    let mut out = Vec::new();
    let mut buf: Vec<Item> = Vec::new();
    fn rec(
        items: &[Item],
        start: usize,
        cap: usize,
        buf: &mut Vec<Item>,
        out: &mut Vec<Vec<Item>>,
    ) {
        for i in start..items.len() {
            buf.push(items[i].clone());
            out.push(buf.clone());
            if buf.len() < cap {
                rec(items, i + 1, cap, buf, out);
            }
            buf.pop();
        }
    }
    if cap > 0 {
        rec(items, 0, cap, &mut buf, &mut out);
    }
    out
}

/// Evaluate the cluster condition on one (body cluster, head cluster)
/// pair: aggregates are computed over the respective cluster's rows,
/// plain references resolve to the cluster's key attributes.
fn cluster_pair_satisfies(
    cond: &Expr,
    schema: &Schema,
    rows: &[Row],
    body_rows: &[usize],
    head_rows: &[usize],
    cluster_attrs: &[String],
    cluster_idx: &[usize],
) -> Result<bool> {
    // Substitute aggregates with literals computed per side.
    let substituted = substitute_aggregates(cond, schema, rows, body_rows, head_rows)?;
    // Schema: BODY.<cluster attrs> ++ HEAD.<cluster attrs>.
    let mut cols = Vec::new();
    for a in cluster_attrs {
        cols.push(Column::qualified(
            "BODY",
            a.clone(),
            relational::DataType::Str,
        ));
    }
    for a in cluster_attrs {
        cols.push(Column::qualified(
            "HEAD",
            a.clone(),
            relational::DataType::Str,
        ));
    }
    let pair_schema = Schema::new(cols);
    let mut row: Row = Vec::new();
    let b0 = &rows[body_rows[0]];
    let h0 = &rows[head_rows[0]];
    for &i in cluster_idx {
        row.push(b0[i].clone());
    }
    for &i in cluster_idx {
        row.push(h0[i].clone());
    }
    let v = eval_expr(&substituted, &pair_schema, &row, &mut NoCtx).map_err(MineError::from)?;
    Ok(v.is_true())
}

fn substitute_aggregates(
    expr: &Expr,
    schema: &Schema,
    rows: &[Row],
    body_rows: &[usize],
    head_rows: &[usize],
) -> Result<Expr> {
    Ok(match expr {
        Expr::Aggregate { arg, .. } => {
            // Side determined by the argument's qualifiers.
            let mut is_head = false;
            if let Some(a) = arg {
                for (q, _) in a.column_refs() {
                    if q.is_some_and(|q| q.eq_ignore_ascii_case("HEAD")) {
                        is_head = true;
                    }
                }
            }
            let side = if is_head { head_rows } else { body_rows };
            let side_rows: Vec<&Row> = side.iter().map(|&i| &rows[i]).collect();
            let stripped = expr.map_qualifiers(&mut |q, n| match q {
                Some(q) if q.eq_ignore_ascii_case("BODY") || q.eq_ignore_ascii_case("HEAD") => {
                    (None, n.to_string())
                }
                other => (other.map(str::to_string), n.to_string()),
            });
            let v = eval_grouped(&stripped, schema, &side_rows, &[], &[], &mut NoCtx)
                .map_err(MineError::from)?;
            Expr::Literal(v)
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(substitute_aggregates(
                left, schema, rows, body_rows, head_rows,
            )?),
            op: *op,
            right: Box::new(substitute_aggregates(
                right, schema, rows, body_rows, head_rows,
            )?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_aggregates(
                expr, schema, rows, body_rows, head_rows,
            )?),
        },
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => Expr::Between {
            expr: Box::new(substitute_aggregates(
                expr, schema, rows, body_rows, head_rows,
            )?),
            negated: *negated,
            low: Box::new(substitute_aggregates(
                low, schema, rows, body_rows, head_rows,
            )?),
            high: Box::new(substitute_aggregates(
                high, schema, rows, body_rows, head_rows,
            )?),
        },
        other => other.clone(),
    })
}

/// Evaluate the mining condition on one (body row, head row) pair.
fn mining_pair_satisfies(
    cond: &Expr,
    schema: &Schema,
    body_row: &Row,
    head_row: &Row,
) -> Result<bool> {
    let mut cols = Vec::new();
    for c in schema.columns() {
        cols.push(Column::qualified("BODY", c.name.clone(), c.dtype));
    }
    for c in schema.columns() {
        cols.push(Column::qualified("HEAD", c.name.clone(), c.dtype));
    }
    let pair_schema = Schema::new(cols);
    let mut row = body_row.clone();
    row.extend(head_row.iter().cloned());
    // Unqualified references in the mining condition resolve ambiguously
    // against BODY+HEAD; qualify-as-BODY by convention.
    let qualified = cond.map_qualifiers(&mut |q, n| match q {
        None => (Some("BODY".to_string()), n.to_string()),
        Some(q) => (Some(q.to_string()), n.to_string()),
    });
    let v = eval_expr(&qualified, &pair_schema, &row, &mut NoCtx).map_err(MineError::from)?;
    Ok(v.is_true())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::{purchase_db, FIGURE_2B, FILTERED_ORDERED_SETS};
    use crate::parser::parse_mine_rule;

    #[test]
    fn reference_reproduces_figure_2b() {
        let mut db = purchase_db();
        let stmt = parse_mine_rule(FILTERED_ORDERED_SETS).unwrap();
        let rules = reference_mine(&mut db, &stmt).unwrap();
        assert_eq!(rules.len(), FIGURE_2B.len(), "{rules:#?}");
        for (body, head, s, c) in FIGURE_2B {
            let found = rules
                .iter()
                .find(|r| {
                    r.body == body.iter().map(|x| x.to_string()).collect::<Vec<_>>()
                        && r.head == head.iter().map(|x| x.to_string()).collect::<Vec<_>>()
                })
                .unwrap_or_else(|| panic!("missing {body:?} => {head:?}"));
            assert!((found.support - s).abs() < 1e-9);
            assert!((found.confidence - c).abs() < 1e-9);
        }
    }

    #[test]
    fn reference_simple_statement() {
        let mut db = purchase_db();
        let stmt = parse_mine_rule(
            "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
             SUPPORT, CONFIDENCE FROM Purchase GROUP BY tr \
             EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5",
        )
        .unwrap();
        let rules = reference_mine(&mut db, &stmt).unwrap();
        assert!(rules
            .iter()
            .any(|r| r.body == vec!["col_shirts"] && r.head == vec!["jackets"]));
        for r in &rules {
            assert!(r.support >= 0.25 - 1e-9 && r.confidence >= 0.5 - 1e-9);
        }
    }

    #[test]
    fn subsets_bounded_and_sorted() {
        let items: Vec<Item> = vec!["a".into(), "b".into(), "c".into()];
        let subs = subsets_up_to(&items, 2);
        assert_eq!(subs.len(), 6); // 3 singletons + 3 pairs
        assert!(subs.iter().all(|s| s.len() <= 2));
    }
}
