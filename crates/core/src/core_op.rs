//! The core operator (§4.3): dispatches to the simple algorithm pool or
//! the general rule lattice, based on the translator's directives.
//!
//! Inputs and outputs are fully encoded — the operator is oblivious to
//! real schemas and values, which is what lets the architecture swap
//! algorithms freely ("algorithm interoperability"). Simple statements
//! run one pool member (selected by [`CoreOptions::algorithm`]) through
//! the sharded executor ([`crate::algo::ShardExec`]): the encoded group
//! list is split into contiguous shards, one worker thread per shard,
//! and per-shard results are merged in shard order — so any
//! [`CoreOptions::workers`] value yields a bit-identical rule set.
//!
//! # Example
//!
//! Driving the whole pipeline (this module is the third box) through
//! [`MineRuleEngine`](crate::MineRuleEngine) — same rules at one worker
//! and four:
//!
//! ```
//! use minerule::MineRuleEngine;
//! use relational::Database;
//!
//! let statement = "MINE RULE Pairs AS \
//!     SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, \
//!     SUPPORT, CONFIDENCE \
//!     FROM Baskets GROUP BY tr \
//!     EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.7";
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE Baskets (tr INT, item VARCHAR)")?;
//! db.execute(
//!     "INSERT INTO Baskets VALUES \
//!      (1,'bread'), (1,'butter'), (2,'bread'), (2,'butter'), (3,'jam')",
//! )?;
//!
//! let sequential = MineRuleEngine::new().execute(&mut db, statement)?;
//! let parallel = MineRuleEngine::new()
//!     .with_workers(4)
//!     .execute(&mut db, statement)?;
//!
//! assert!(!sequential.rules.is_empty());
//! assert_eq!(sequential.rules, parallel.rules, "determinism contract");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::time::Duration;

use crate::algo::{self, EncodedRule, GidSetRepr, LargeItemset, ShardExec, SimpleInput};
use crate::encoded::{EncodedData, EncodedInput, GeneralTuple};
use crate::error::{MineError, Result};
use crate::lattice::elementary::{build_contexts, BuildOptions};
use crate::lattice::{mine_general_with_stats, ExpansionOrder, GeneralParams, LatticeStats};
use crate::telemetry::Telemetry;

/// Options steering the core operator (the "directives" of Figure 3a that
/// aren't derivable from the statement alone).
#[derive(Debug, Clone)]
pub struct CoreOptions {
    /// Which member of the algorithm pool handles simple statements.
    pub algorithm: String,
    /// Lattice expansion order for general statements.
    pub order: ExpansionOrder,
    /// Run even simple statements through the general lattice (used by the
    /// E6 overhead experiment).
    pub force_general: bool,
    /// Worker threads for the sharded mining executor (simple path).
    /// `1` keeps everything on the calling thread; any value produces the
    /// same rule inventory (the executor's determinism contract).
    pub workers: usize,
    /// Physical gid-set representation for the vertical pool members
    /// (simple path). [`GidSetRepr::Auto`] picks per set by density;
    /// pinning `List` or `Bitset` is a debugging/bench knob — every
    /// choice yields the same rule inventory.
    pub gidset: GidSetRepr,
}

impl Default for CoreOptions {
    fn default() -> Self {
        CoreOptions {
            algorithm: "apriori".into(),
            order: ExpansionOrder::MinParent,
            force_general: false,
            workers: 1,
            gidset: GidSetRepr::Auto,
        }
    }
}

/// What the core operator hands to the postprocessor.
#[derive(Debug, Clone)]
pub struct CoreOutput {
    pub rules: Vec<EncodedRule>,
    /// Which path ran, for reporting.
    pub used_general: bool,
    /// Lattice statistics (general path only).
    pub lattice_stats: Option<LatticeStats>,
    /// Wall-clock per shard of the mining executor (simple path only;
    /// one entry per shard of each sharded pass, in pass order).
    pub shard_timings: Vec<Duration>,
    /// The large-itemset inventory the rules were derived from (simple
    /// path only; `None` on the general lattice). The mined-result cache
    /// captures this so tightened-threshold reruns can filter it instead
    /// of re-mining.
    pub large_itemsets: Option<Vec<LargeItemset>>,
}

/// Run the core operator on encoded input (no telemetry).
pub fn run_core(input: &EncodedInput, opts: &CoreOptions) -> Result<CoreOutput> {
    run_core_with_telemetry(input, opts, &Telemetry::disabled())
}

/// Run the core operator, publishing `core.*` metrics (work counters,
/// per-level candidate generation/pruning, per-shard timings and merge
/// time) to the given telemetry registry. Telemetry never changes the
/// mined rules — a disabled handle yields a bit-identical [`CoreOutput`].
pub fn run_core_with_telemetry(
    input: &EncodedInput,
    opts: &CoreOptions,
    telemetry: &Telemetry,
) -> Result<CoreOutput> {
    if opts.workers == 0 {
        return Err(MineError::InvalidWorkerCount { value: 0 });
    }
    match &input.data {
        EncodedData::Simple { groups } if !opts.force_general => {
            telemetry.counter_inc("core.path.simple");
            telemetry.counter_add("core.groups", groups.len() as u64);
            let miner =
                algo::by_name(&opts.algorithm).ok_or_else(|| MineError::UnknownAlgorithm {
                    name: opts.algorithm.clone(),
                })?;
            let simple =
                SimpleInput::from_groups(groups.clone(), input.total_groups, input.min_groups);
            let exec = ShardExec::new(opts.workers).with_gidset_repr(opts.gidset);
            let large = miner.mine_sharded(&simple, &exec);
            telemetry.counter_add("core.itemsets.large", large.len() as u64);
            let (mut rules, rule_stats) = algo::rules_from_itemsets_counted(
                &large,
                input.total_groups,
                input.body_card,
                input.head_card,
                input.min_confidence,
            )?;
            algo::sort_rules(&mut rules);
            telemetry.counter_add("core.rules.candidates", rule_stats.candidates);
            telemetry.counter_add("core.rules.pruned_confidence", rule_stats.pruned_confidence);
            telemetry.counter_add("core.rules.emitted", rules.len() as u64);
            telemetry.counter_add("core.trie.nodes", rule_stats.trie_nodes);
            telemetry.counter_add("core.trie.lookups", rule_stats.trie_lookups);
            let shard_timings = exec.take_shard_timings();
            publish_exec_stats(telemetry, &exec, &shard_timings);
            Ok(CoreOutput {
                rules,
                used_general: false,
                lattice_stats: None,
                shard_timings,
                large_itemsets: Some(large),
            })
        }
        EncodedData::Simple { groups } => {
            // Forced general processing of a simple statement: synthesise
            // the tuple encoding the general path expects.
            let tuples: Vec<GeneralTuple> = groups
                .iter()
                .flat_map(|(gid, bids)| {
                    bids.iter().map(move |&b| GeneralTuple {
                        gid: *gid,
                        cid: None,
                        bid: Some(b),
                        hid: Some(b),
                    })
                })
                .collect();
            run_general(input, &tuples, None, None, opts, telemetry)
        }
        EncodedData::General {
            tuples,
            cluster_couples,
            input_rules,
        } => run_general(
            input,
            tuples,
            cluster_couples.as_deref(),
            input_rules.as_deref(),
            opts,
            telemetry,
        ),
    }
}

/// Publish a simple-path run's executor accounting as `core.*` metrics.
fn publish_exec_stats(telemetry: &Telemetry, exec: &ShardExec, shard_timings: &[Duration]) {
    if !telemetry.is_enabled() {
        return;
    }
    let stats = exec.take_stats();
    telemetry.counter_add("core.shards.run", stats.shards_run);
    telemetry.counter_add("core.groups.scanned", stats.groups_scanned);
    telemetry.counter_add("core.candidates.counted", stats.candidates_counted);
    telemetry.counter_add("core.merge.passes", stats.merge_passes);
    telemetry.counter_add("core.gidset.list.picked", stats.gidset_list_picked);
    telemetry.counter_add("core.gidset.bitset.picked", stats.gidset_bitset_picked);
    telemetry.counter_add("core.gidset.intersects", stats.gidset_intersects);
    telemetry.counter_add("core.trie.nodes", stats.trie_nodes);
    telemetry.counter_add("core.trie.lookups", stats.trie_lookups);
    telemetry.record_duration("core.merge", stats.merge_time);
    for d in shard_timings {
        telemetry.record_duration("core.shard", *d);
    }
    for (k, level) in &stats.levels {
        telemetry.counter_add(&format!("core.level.{k}.generated"), level.generated);
        telemetry.counter_add(&format!("core.level.{k}.pruned"), level.pruned);
    }
}

fn run_general(
    input: &EncodedInput,
    tuples: &[GeneralTuple],
    couples: Option<&[(u32, u32, u32)]>,
    elementary: Option<&[crate::encoded::ElemRule]>,
    opts: &CoreOptions,
    telemetry: &Telemetry,
) -> Result<CoreOutput> {
    telemetry.counter_inc("core.path.general");
    telemetry.counter_add("core.tuples", tuples.len() as u64);
    let contexts = build_contexts(
        tuples,
        couples,
        elementary,
        BuildOptions {
            clustered: input.directives.c,
            has_couples: input.directives.k,
            distinct_head: input.directives.h,
            min_groups: input.min_groups,
        },
    );
    let (rules, stats) = mine_general_with_stats(
        &contexts,
        &GeneralParams {
            total_groups: input.total_groups,
            min_groups: input.min_groups,
            min_confidence: input.min_confidence,
            body_card: input.body_card,
            head_card: input.head_card,
            order: opts.order,
        },
    )?;
    telemetry.counter_add("core.lattice.candidates", stats.candidates_evaluated);
    telemetry.counter_add("core.lattice.sets", stats.set_sizes.len() as u64);
    telemetry.counter_add("core.rules.emitted", rules.len() as u64);
    Ok(CoreOutput {
        rules,
        used_general: true,
        lattice_stats: Some(stats),
        shard_timings: Vec::new(),
        large_itemsets: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CardSpec;
    use crate::directives::{Directives, StatementClass};

    fn simple_input(groups: Vec<(u32, Vec<u32>)>, head_card: CardSpec) -> EncodedInput {
        EncodedInput {
            directives: Directives::default(),
            class: StatementClass::Simple,
            total_groups: groups.len() as u32,
            min_groups: 1,
            min_support: 0.1,
            min_confidence: 0.01,
            body_card: CardSpec::one_to_n(),
            head_card,
            data: EncodedData::Simple { groups },
        }
    }

    #[test]
    fn simple_and_forced_general_agree() {
        let groups = vec![
            (1, vec![1, 2, 3]),
            (2, vec![1, 2]),
            (3, vec![2, 3]),
            (4, vec![1, 3]),
        ];
        // Head 1..n so both paths can express every split.
        let input = simple_input(groups, CardSpec::one_to_n());
        let simple = run_core(&input, &CoreOptions::default()).unwrap();
        let general = run_core(
            &input,
            &CoreOptions {
                force_general: true,
                ..CoreOptions::default()
            },
        )
        .unwrap();
        assert!(!simple.used_general && general.used_general);
        assert_eq!(simple.rules, general.rules);
        assert!(!simple.rules.is_empty());
    }

    #[test]
    fn every_pool_member_yields_identical_rules() {
        let groups = vec![
            (1, vec![1, 2, 3]),
            (2, vec![1, 2]),
            (3, vec![2, 3]),
            (4, vec![1, 2, 3]),
        ];
        let input = simple_input(groups, CardSpec::one_to_one());
        let mut reference: Option<Vec<EncodedRule>> = None;
        for name in [
            "apriori",
            "count",
            "dhp",
            "partition",
            "sampling",
            "eclat",
            "fpgrowth",
        ] {
            let out = run_core(
                &input,
                &CoreOptions {
                    algorithm: name.into(),
                    ..CoreOptions::default()
                },
            )
            .unwrap();
            match &reference {
                None => reference = Some(out.rules),
                Some(r) => assert_eq!(&out.rules, r, "{name} disagrees"),
            }
        }
    }

    #[test]
    fn unknown_algorithm_is_an_error() {
        let input = simple_input(vec![(1, vec![1])], CardSpec::one_to_one());
        let err = run_core(
            &input,
            &CoreOptions {
                algorithm: "nope".into(),
                ..CoreOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MineError::UnknownAlgorithm { .. }));
        let message = err.to_string();
        for name in algo::POOL_NAMES {
            assert!(message.contains(name), "message lists '{name}': {message}");
        }
        assert!(message.contains("nope"));
    }

    #[test]
    fn zero_workers_is_a_user_facing_error() {
        let input = simple_input(vec![(1, vec![1])], CardSpec::one_to_one());
        let err = run_core(
            &input,
            &CoreOptions {
                workers: 0,
                ..CoreOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MineError::InvalidWorkerCount { value: 0 }));
        let message = err.to_string();
        assert!(message.contains("'0'"), "names the offender: {message}");
        assert!(
            message.contains("at least 1"),
            "states the domain: {message}"
        );
    }

    #[test]
    fn telemetry_records_core_metrics_without_changing_rules() {
        let groups = vec![
            (1, vec![1, 2, 3]),
            (2, vec![1, 2]),
            (3, vec![2, 3]),
            (4, vec![1, 3]),
        ];
        let input = simple_input(groups, CardSpec::one_to_n());
        let plain = run_core(&input, &CoreOptions::default()).unwrap();
        let tel = Telemetry::new();
        let instrumented = run_core_with_telemetry(&input, &CoreOptions::default(), &tel).unwrap();
        assert_eq!(plain.rules, instrumented.rules, "telemetry is inert");
        let snap = tel.snapshot();
        assert_eq!(snap.counter("core.path.simple"), 1);
        assert_eq!(snap.counter("core.groups"), 4);
        assert_eq!(
            snap.counter("core.rules.emitted"),
            instrumented.rules.len() as u64
        );
        assert!(snap.counter("core.level.1.generated") > 0, "L1 reported");
        assert!(snap.histogram("core.shard").is_some(), "shard timings");
        assert!(snap.histogram("core.merge").is_some(), "merge time");
    }

    #[test]
    fn gidset_representations_agree_on_rules() {
        let groups = vec![
            (1, vec![1, 2, 3]),
            (2, vec![1, 2]),
            (3, vec![2, 3]),
            (4, vec![1, 3]),
            (5, vec![1, 2, 3]),
        ];
        let input = simple_input(groups, CardSpec::one_to_n());
        let baseline = run_core(
            &input,
            &CoreOptions {
                gidset: GidSetRepr::List,
                ..CoreOptions::default()
            },
        )
        .unwrap();
        for repr in [GidSetRepr::Bitset, GidSetRepr::Auto] {
            for algorithm in ["apriori", "eclat", "partition", "sampling"] {
                let out = run_core(
                    &input,
                    &CoreOptions {
                        algorithm: algorithm.into(),
                        gidset: repr,
                        ..CoreOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(out.rules, baseline.rules, "{algorithm} repr={repr}");
            }
        }
    }

    #[test]
    fn worker_counts_agree_on_rules() {
        let groups = vec![
            (1, vec![1, 2, 3]),
            (2, vec![1, 2]),
            (3, vec![2, 3]),
            (4, vec![1, 3]),
            (5, vec![1, 2, 3]),
        ];
        let input = simple_input(groups, CardSpec::one_to_n());
        let baseline = run_core(&input, &CoreOptions::default()).unwrap();
        assert!(!baseline.shard_timings.is_empty());
        for workers in [2, 4, 7] {
            let out = run_core(
                &input,
                &CoreOptions {
                    workers,
                    ..CoreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(out.rules, baseline.rules, "workers={workers}");
        }
    }
}
