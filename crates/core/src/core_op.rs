//! The core operator (§4.3): dispatches to the simple algorithm pool or
//! the general rule lattice, based on the translator's directives.
//!
//! Inputs and outputs are fully encoded — the operator is oblivious to
//! real schemas and values, which is what lets the architecture swap
//! algorithms freely ("algorithm interoperability").

use crate::algo::{self, EncodedRule, SimpleInput};
use crate::encoded::{EncodedData, EncodedInput, GeneralTuple};
use crate::error::{MineError, Result};
use crate::lattice::elementary::{build_contexts, BuildOptions};
use crate::lattice::{mine_general_with_stats, ExpansionOrder, GeneralParams, LatticeStats};

/// Options steering the core operator (the "directives" of Figure 3a that
/// aren't derivable from the statement alone).
#[derive(Debug, Clone)]
pub struct CoreOptions {
    /// Which member of the algorithm pool handles simple statements.
    pub algorithm: String,
    /// Lattice expansion order for general statements.
    pub order: ExpansionOrder,
    /// Run even simple statements through the general lattice (used by the
    /// E6 overhead experiment).
    pub force_general: bool,
}

impl Default for CoreOptions {
    fn default() -> Self {
        CoreOptions {
            algorithm: "apriori".into(),
            order: ExpansionOrder::MinParent,
            force_general: false,
        }
    }
}

/// What the core operator hands to the postprocessor.
#[derive(Debug, Clone)]
pub struct CoreOutput {
    pub rules: Vec<EncodedRule>,
    /// Which path ran, for reporting.
    pub used_general: bool,
    /// Lattice statistics (general path only).
    pub lattice_stats: Option<LatticeStats>,
}

/// Run the core operator on encoded input.
pub fn run_core(input: &EncodedInput, opts: &CoreOptions) -> Result<CoreOutput> {
    match &input.data {
        EncodedData::Simple { groups } if !opts.force_general => {
            let miner = algo::by_name(&opts.algorithm).ok_or_else(|| MineError::Internal {
                message: format!("unknown mining algorithm '{}'", opts.algorithm),
            })?;
            let simple = SimpleInput::from_groups(
                groups.clone(),
                input.total_groups,
                input.min_groups,
            );
            let large = miner.mine(&simple);
            let mut rules = algo::rules_from_itemsets(
                &large,
                input.total_groups,
                input.body_card,
                input.head_card,
                input.min_confidence,
            )?;
            algo::sort_rules(&mut rules);
            Ok(CoreOutput {
                rules,
                used_general: false,
                lattice_stats: None,
            })
        }
        EncodedData::Simple { groups } => {
            // Forced general processing of a simple statement: synthesise
            // the tuple encoding the general path expects.
            let tuples: Vec<GeneralTuple> = groups
                .iter()
                .flat_map(|(gid, bids)| {
                    bids.iter().map(move |&b| GeneralTuple {
                        gid: *gid,
                        cid: None,
                        bid: Some(b),
                        hid: Some(b),
                    })
                })
                .collect();
            run_general(input, &tuples, None, None, opts)
        }
        EncodedData::General {
            tuples,
            cluster_couples,
            input_rules,
        } => run_general(
            input,
            tuples,
            cluster_couples.as_deref(),
            input_rules.as_deref(),
            opts,
        ),
    }
}

fn run_general(
    input: &EncodedInput,
    tuples: &[GeneralTuple],
    couples: Option<&[(u32, u32, u32)]>,
    elementary: Option<&[crate::encoded::ElemRule]>,
    opts: &CoreOptions,
) -> Result<CoreOutput> {
    let contexts = build_contexts(
        tuples,
        couples,
        elementary,
        BuildOptions {
            clustered: input.directives.c,
            has_couples: input.directives.k,
            distinct_head: input.directives.h,
            min_groups: input.min_groups,
        },
    );
    let (rules, stats) = mine_general_with_stats(
        &contexts,
        &GeneralParams {
            total_groups: input.total_groups,
            min_groups: input.min_groups,
            min_confidence: input.min_confidence,
            body_card: input.body_card,
            head_card: input.head_card,
            order: opts.order,
        },
    )?;
    Ok(CoreOutput {
        rules,
        used_general: true,
        lattice_stats: Some(stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CardSpec;
    use crate::directives::{Directives, StatementClass};

    fn simple_input(groups: Vec<(u32, Vec<u32>)>, head_card: CardSpec) -> EncodedInput {
        EncodedInput {
            directives: Directives::default(),
            class: StatementClass::Simple,
            total_groups: groups.len() as u32,
            min_groups: 1,
            min_support: 0.1,
            min_confidence: 0.01,
            body_card: CardSpec::one_to_n(),
            head_card,
            data: EncodedData::Simple { groups },
        }
    }

    #[test]
    fn simple_and_forced_general_agree() {
        let groups = vec![
            (1, vec![1, 2, 3]),
            (2, vec![1, 2]),
            (3, vec![2, 3]),
            (4, vec![1, 3]),
        ];
        // Head 1..n so both paths can express every split.
        let input = simple_input(groups, CardSpec::one_to_n());
        let simple = run_core(&input, &CoreOptions::default()).unwrap();
        let general = run_core(
            &input,
            &CoreOptions {
                force_general: true,
                ..CoreOptions::default()
            },
        )
        .unwrap();
        assert!(!simple.used_general && general.used_general);
        assert_eq!(simple.rules, general.rules);
        assert!(!simple.rules.is_empty());
    }

    #[test]
    fn every_pool_member_yields_identical_rules() {
        let groups = vec![
            (1, vec![1, 2, 3]),
            (2, vec![1, 2]),
            (3, vec![2, 3]),
            (4, vec![1, 2, 3]),
        ];
        let input = simple_input(groups, CardSpec::one_to_one());
        let mut reference: Option<Vec<EncodedRule>> = None;
        for name in ["apriori", "count", "dhp", "partition", "sampling", "eclat", "fpgrowth"] {
            let out = run_core(
                &input,
                &CoreOptions {
                    algorithm: name.into(),
                    ..CoreOptions::default()
                },
            )
            .unwrap();
            match &reference {
                None => reference = Some(out.rules),
                Some(r) => assert_eq!(&out.rules, r, "{name} disagrees"),
            }
        }
    }

    #[test]
    fn unknown_algorithm_is_an_error() {
        let input = simple_input(vec![(1, vec![1])], CardSpec::one_to_one());
        let err = run_core(
            &input,
            &CoreOptions {
                algorithm: "nope".into(),
                ..CoreOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MineError::Internal { .. }));
    }
}
