//! # minerule — a tightly-coupled data mining kernel
//!
//! A from-scratch reproduction of *A Tightly-Coupled Architecture for Data
//! Mining* (R. Meo, G. Psaila, S. Ceri — ICDE 1998). The crate implements
//! the full kernel of the paper's Figure 3a on top of the `relational`
//! SQL engine:
//!
//! * **translator** ([`translator`]) — parses MINE RULE, runs the four
//!   semantic checks against the data dictionary, classifies the
//!   statement with the `H W M G C K F R` directives, and generates the
//!   preprocessing/postprocessing SQL programs (`Q0`..`Q11`, Appendix A);
//! * **preprocessor** ([`preprocess`]) — executes those programs on the
//!   SQL server, producing the encoded tables (`ValidGroups`, `Bset`,
//!   `Hset`, `Clusters`, `ClusterCouples`, `CodedSource`, `InputRules`);
//! * **core operator** ([`core_op`]) — the only non-SQL computation: a
//!   pool of interchangeable large-itemset algorithms ([`algo`]) for
//!   simple rules, and the m×n rule lattice ([`lattice`]) for general
//!   rules (clusters, mining conditions, distinct body/head schemas);
//! * **postprocessor** ([`postprocess`]) — stores encoded rules in the
//!   normalised three-table form and decodes them with SQL joins into
//!   `<out>`, `<out>_Bodies`, `<out>_Heads`.
//!
//! The decoupled architecture the paper argues against is implemented in
//! [`decoupled`] as a measurable baseline, and the paper's §2 worked
//! example lives in [`paper_example`]. Every phase reports counters and
//! span timings through the [`telemetry`] registry (see
//! `docs/OBSERVABILITY.md`), exported as JSON via
//! [`MineRuleEngine::metrics_snapshot`](pipeline::MineRuleEngine::metrics_snapshot).
//!
//! ## Quickstart
//!
//! ```
//! use minerule::{MineRuleEngine, paper_example};
//!
//! // Figure 1's Purchase table, then the §2 statement end to end.
//! let mut db = paper_example::purchase_db();
//! let outcome = MineRuleEngine::new()
//!     .execute(&mut db, paper_example::FILTERED_ORDERED_SETS)
//!     .unwrap();
//! for rule in &outcome.rules {
//!     println!("{}", rule.display());
//! }
//! // Rules are also regular tables inside the database:
//! let rs = db.query("SELECT COUNT(*) FROM FilteredOrderedSets").unwrap();
//! assert_eq!(rs.scalar().unwrap().to_string(), "3");
//! ```

pub mod algo;
pub mod ast;
pub mod cache;
pub mod core_op;
pub mod decoupled;
pub mod directives;
pub mod encoded;
pub mod error;
pub mod lattice;
pub mod minecache;
pub mod paper_example;
pub mod parser;
pub mod pipeline;
pub mod postprocess;
pub mod preprocess;
pub mod reference;
pub mod telemetry;
pub mod translator;

pub use ast::{CardMax, CardSpec, ElementSpec, MineRuleStatement, SourceTable};
pub use cache::PreprocessCache;
pub use directives::{Directives, StatementClass};
pub use error::{MineError, Result, SemanticViolation};
pub use minecache::{MineResultCache, ServeKind};
pub use parser::{is_mine_rule, parse_mine_rule};
pub use pipeline::{
    parse_exec, parse_index_policy, parse_minecache, parse_planner, parse_preprocache,
    parse_sqlexec, parse_storage_backend, MineRuleEngine, MiningOutcome, PhaseTimings,
};
pub use postprocess::DecodedRule;
pub use telemetry::{MetricsSnapshot, Telemetry};
pub use translator::{translate, translate_with_prefix, Translation};
