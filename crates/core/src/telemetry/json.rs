//! A minimal, dependency-free JSON value model and writer.
//!
//! The telemetry export and the benchmark harness both need to emit
//! machine-readable JSON without pulling serde into an offline
//! workspace. This module supports exactly what they produce: objects,
//! arrays, strings, bools, integers and finite floats. Object key order
//! is preserved as inserted, so exports are deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integer (serialised without a decimal point).
    Int(i64),
    /// Unsigned integer — kept separate so u64 counters round-trip.
    UInt(u64),
    /// Finite float. Non-finite values serialise as `null`.
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An empty object to push fields onto.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Add a field to an object (panics on non-objects — a programming
    /// error in the exporter, not a data error).
    pub fn push(&mut self, key: impl Into<String>, value: Json) -> &mut Json {
        match self {
            Json::Object(fields) => fields.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Serialise with two-space indentation (human-friendly artifacts).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_float(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact serialisation (`to_string()` via the blanket impl).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's Display for f64 is shortest-roundtrip, which is valid
        // JSON except that it omits ".0" on integral values — fine.
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialise() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(Json::Float(0.5).to_string(), "0.5");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").to_string(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn nested_structure() {
        let mut obj = Json::object();
        obj.push("name", Json::str("ci"));
        obj.push("xs", Json::Array(vec![Json::Int(1), Json::Int(2)]));
        assert_eq!(obj.to_string(), r#"{"name":"ci","xs":[1,2]}"#);
    }

    #[test]
    fn pretty_printing_round_trips_structure() {
        let mut obj = Json::object();
        obj.push("a", Json::Int(1));
        obj.push("b", Json::Array(vec![Json::str("x")]));
        let pretty = obj.to_pretty_string();
        assert!(pretty.contains("\"a\": 1"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty_mode() {
        let mut obj = Json::object();
        obj.push("empty", Json::Array(vec![]));
        obj.push("obj", Json::object());
        assert!(obj.to_pretty_string().contains("\"empty\": []"));
        assert!(obj.to_pretty_string().contains("\"obj\": {}"));
    }
}
