//! Duration histograms with fixed log2 buckets.
//!
//! Values are recorded in microseconds. Bucket `i` covers the half-open
//! range `[2^(i-1), 2^i)` microseconds (bucket 0 holds the value 0), so
//! the full layout is known statically, two histograms recorded on
//! different machines merge by positional addition, and the exported
//! JSON stays small regardless of how many samples were recorded.

use std::time::Duration;

/// Number of log2 buckets. Bucket `BUCKETS - 1` is the overflow bucket;
/// `2^(BUCKETS-2)` µs ≈ 2.2 hours, far beyond any phase we time.
pub const BUCKETS: usize = 34;

/// A log2-bucketed histogram of microsecond values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }
}

/// The bucket a microsecond value falls into: 0 for the value 0,
/// otherwise `floor(log2(v)) + 1`, clamped to the overflow bucket.
pub fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The half-open `[lo, hi)` microsecond range bucket `i` covers. The
/// overflow bucket's upper bound is `u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        _ if i >= BUCKETS - 1 => (1 << (BUCKETS - 2), u64::MAX),
        _ => (1 << (i - 1), 1 << i),
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one microsecond value.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Record a duration (truncated to whole microseconds).
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Fold another histogram into this one. Equivalent to having
    /// recorded both histograms' samples into a single one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Smallest recorded value (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean recorded value in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Raw bucket counts, index-aligned with [`bucket_bounds`].
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// `(lo_us, hi_us, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1, "overflow clamps");
    }

    #[test]
    fn bounds_partition_the_axis() {
        // Every bucket's hi is the next bucket's lo: no gaps, no overlap.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi, lo, "bucket {i} is contiguous with {}", i + 1);
        }
        // And bucket_index lands each boundary value in the right bucket.
        for i in 1..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi - 1), i);
        }
    }

    #[test]
    fn record_tracks_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_us(), 0);
        for v in [3u64, 100, 0, 7] {
            h.record_us(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_us(), 110);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.max_us(), 100);
        assert!((h.mean_us() - 27.5).abs() < 1e-12);
        assert_eq!(h.buckets()[bucket_index(3)], 1, "3 sits alone in [2,4)");
        assert_eq!(h.buckets()[bucket_index(7)], 1, "7 sits alone in [4,8)");
    }

    #[test]
    fn record_duration_uses_micros() {
        let mut h = Histogram::new();
        h.record(Duration::from_millis(2));
        assert_eq!(h.sum_us(), 2000);
        assert_eq!(h.buckets()[bucket_index(2000)], 1);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let values_a = [0u64, 1, 5, 900, 1 << 20];
        let values_b = [2u64, 5, 1 << 30, u64::MAX];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in values_a {
            a.record_us(v);
            combined.record_us(v);
        }
        for v in values_b {
            b.record_us(v);
            combined.record_us(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record_us(42);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn nonzero_buckets_are_sparse() {
        let mut h = Histogram::new();
        h.record_us(5);
        h.record_us(6);
        h.record_us(1000);
        let nz = h.nonzero_buckets();
        assert_eq!(nz.len(), 2);
        assert_eq!(nz[0], (4, 8, 2));
        assert_eq!(nz[1], (512, 1024, 1));
    }
}
