//! The kernel's observability layer: a dependency-free metrics registry
//! with counters, gauges and log2-bucketed duration histograms, plus
//! span-style scoped timers and structured JSON export.
//!
//! Every phase of the mining pipeline reports through one
//! [`Telemetry`] handle: the translator counts statements per directive
//! class, the preprocessor counts rows per `Qi` step, the core operator
//! counts candidates generated/pruned per level and per-shard work, and
//! the postprocessor counts stored/decoded rules. Metric names follow
//! the `phase.subphase` convention documented in
//! `docs/OBSERVABILITY.md`.
//!
//! Telemetry never influences mining results: with the handle disabled
//! every operation is a no-op, and the rule inventory is bit-identical
//! either way (enforced by `tests/telemetry.rs`).
//!
//! # Example
//!
//! ```
//! use minerule::telemetry::Telemetry;
//! use std::time::Duration;
//!
//! let tel = Telemetry::new();
//! tel.counter_add("core.rules.emitted", 3);
//! tel.record_duration("phase.core", Duration::from_micros(250));
//! {
//!     let _span = tel.span("phase.translate"); // records on drop
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("core.rules.emitted"), 3);
//! assert_eq!(snap.histogram("phase.core").unwrap().count(), 1);
//! assert!(snap.to_json().contains("\"core.rules.emitted\":3"));
//! ```

pub mod histogram;
pub mod json;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub use histogram::{bucket_bounds, bucket_index, Histogram, BUCKETS};
pub use json::Json;

/// Export-schema version stamped into every JSON snapshot. Bump when
/// the structure (not the metric set) changes incompatibly.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shared handle to a metrics registry. Cloning is cheap and clones
/// report into the *same* registry (the engine and its executors share
/// one). A disabled handle drops every record on the floor, so
/// instrumented code paths need no `if` guards.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Registry>>>,
}

impl Telemetry {
    /// An enabled handle with an empty registry.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    /// A handle that records nothing. This is the `Default`.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_registry(&self, f: impl FnOnce(&mut Registry)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.lock().expect("telemetry registry lock"));
        }
    }

    /// Add to a monotonic counter (created at 0 on first use).
    pub fn counter_add(&self, name: &str, n: u64) {
        if n == 0 && self.inner.is_none() {
            return;
        }
        self.with_registry(|r| {
            *r.counters.entry(name.to_string()).or_insert(0) += n;
        });
    }

    /// Increment a counter by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Set a gauge to an instantaneous value.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.with_registry(|r| {
            r.gauges.insert(name.to_string(), value);
        });
    }

    /// Record one duration sample into a histogram.
    pub fn record_duration(&self, name: &str, d: Duration) {
        self.with_registry(|r| {
            r.histograms.entry(name.to_string()).or_default().record(d);
        });
    }

    /// Fold a pre-aggregated histogram into a named histogram (used to
    /// publish per-shard timings collected off-registry).
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        if h.count() == 0 {
            return;
        }
        self.with_registry(|r| {
            r.histograms.entry(name.to_string()).or_default().merge(h);
        });
    }

    /// Start a scoped timer. The elapsed time is recorded into the named
    /// histogram when the span is dropped (or [`Span::stop`] is called,
    /// which also returns the duration). Timing happens even on a
    /// disabled handle so callers can use the returned duration.
    pub fn span(&self, name: &str) -> Span {
        Span {
            telemetry: self.clone(),
            name: name.to_string(),
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Clear every metric, keeping the handle (and its clones) attached.
    pub fn reset(&self) {
        self.with_registry(|r| {
            *r = Registry::default();
        });
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => {
                let r = inner.lock().expect("telemetry registry lock");
                MetricsSnapshot {
                    counters: r.counters.clone(),
                    gauges: r.gauges.clone(),
                    histograms: r.histograms.clone(),
                }
            }
        }
    }
}

/// A scoped timer handed out by [`Telemetry::span`].
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    name: String,
    start: Instant,
    recorded: bool,
}

impl Span {
    /// Stop the span, record its duration, and return the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.telemetry.record_duration(&self.name, elapsed);
        self.recorded = true;
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            let elapsed = self.start.elapsed();
            self.telemetry.record_duration(&self.name, elapsed);
        }
    }
}

/// An immutable copy of the registry at one instant.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Duration histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// A counter's value (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if anything was recorded under the name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The snapshot as a structured [`Json`] value (see
    /// `docs/OBSERVABILITY.md` for the schema).
    pub fn to_json_value(&self) -> Json {
        let mut root = Json::object();
        root.push("schema_version", Json::UInt(SNAPSHOT_SCHEMA_VERSION as u64));
        let mut counters = Json::object();
        for (k, v) in &self.counters {
            counters.push(k.clone(), Json::UInt(*v));
        }
        root.push("counters", counters);
        let mut gauges = Json::object();
        for (k, v) in &self.gauges {
            gauges.push(k.clone(), Json::Int(*v));
        }
        root.push("gauges", gauges);
        let mut histograms = Json::object();
        for (k, h) in &self.histograms {
            let mut hist = Json::object();
            hist.push("count", Json::UInt(h.count()));
            hist.push("sum_us", Json::UInt(h.sum_us()));
            hist.push("min_us", Json::UInt(h.min_us()));
            hist.push("max_us", Json::UInt(h.max_us()));
            hist.push("mean_us", Json::Float(h.mean_us()));
            let buckets = h
                .nonzero_buckets()
                .into_iter()
                .map(|(lo, hi, c)| {
                    let mut b = Json::object();
                    b.push("lo_us", Json::UInt(lo));
                    b.push("hi_us", Json::UInt(hi));
                    b.push("count", Json::UInt(c));
                    b
                })
                .collect();
            hist.push("log2_buckets", Json::Array(buckets));
            histograms.push(k.clone(), hist);
        }
        root.push("histograms", histograms);
        root
    }

    /// Compact JSON export.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Indented JSON export (the shell's `\stats json`).
    pub fn to_pretty_json(&self) -> String {
        self.to_json_value().to_pretty_string()
    }

    /// Human-readable rendering for the shell's `\stats`.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        if self.is_empty() {
            return "no metrics recorded".to_string();
        }
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (µs):\n");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<40} n={} mean={:.1} min={} max={} sum={}",
                    h.count(),
                    h.mean_us(),
                    h.min_us(),
                    h.max_us(),
                    h.sum_us()
                );
            }
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let tel = Telemetry::new();
        tel.counter_inc("a");
        tel.counter_add("a", 4);
        tel.counter_add("b", 0);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 0);
        assert!(snap.counters.contains_key("b"), "zero add still registers");
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter_inc("a");
        tel.gauge_set("g", 7);
        tel.record_duration("h", Duration::from_micros(5));
        let _ = tel.span("s");
        assert!(tel.snapshot().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let tel = Telemetry::new();
        let clone = tel.clone();
        clone.counter_inc("shared");
        assert_eq!(tel.snapshot().counter("shared"), 1);
        tel.reset();
        assert!(clone.snapshot().is_empty());
    }

    #[test]
    fn span_records_on_drop_and_on_stop() {
        let tel = Telemetry::new();
        {
            let _span = tel.span("dropped");
        }
        let d = tel.span("stopped").stop();
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("dropped").unwrap().count(), 1);
        assert_eq!(snap.histogram("stopped").unwrap().count(), 1);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn span_on_disabled_handle_still_times() {
        let tel = Telemetry::disabled();
        let span = tel.span("x");
        std::thread::sleep(Duration::from_millis(1));
        assert!(span.stop() >= Duration::from_millis(1));
        assert!(tel.snapshot().is_empty());
    }

    #[test]
    fn merge_histogram_publishes_preaggregated_data() {
        let tel = Telemetry::new();
        let mut h = Histogram::new();
        h.record_us(10);
        h.record_us(20);
        tel.merge_histogram("pre", &h);
        tel.merge_histogram("pre", &Histogram::new()); // no-op
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("pre").unwrap().count(), 2);
        assert_eq!(snap.histogram("pre").unwrap().sum_us(), 30);
    }

    #[test]
    fn snapshot_json_has_schema_and_sections() {
        let tel = Telemetry::new();
        tel.counter_inc("c.x");
        tel.gauge_set("g.y", -2);
        tel.record_duration("h.z", Duration::from_micros(100));
        let json = tel.snapshot().to_json();
        assert!(json.starts_with("{\"schema_version\":1,"), "{json}");
        assert!(json.contains("\"c.x\":1"));
        assert!(json.contains("\"g.y\":-2"));
        assert!(json.contains("\"h.z\""));
        assert!(json.contains("\"log2_buckets\""));
    }

    #[test]
    fn render_text_mentions_every_metric() {
        let tel = Telemetry::new();
        assert_eq!(tel.snapshot().render_text(), "no metrics recorded");
        tel.counter_inc("c");
        tel.gauge_set("g", 1);
        tel.record_duration("h", Duration::from_micros(1));
        let text = tel.snapshot().render_text();
        for needle in ["counters:", "gauges:", "histograms", "c", "g", "h"] {
            assert!(text.contains(needle), "{text}");
        }
    }
}
