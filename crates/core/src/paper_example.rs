//! The paper's running example (§2, Figures 1 and 2): the `Purchase`
//! table, the `FilteredOrderedSets` statement, and the expected output.
//!
//! Used by the examples, the integration tests (golden reproduction of
//! Figure 2b) and the experiments binary.

use relational::{Database, Date, Value};

use crate::error::Result;
use crate::pipeline::{MineRuleEngine, MiningOutcome};

/// The exact MINE RULE statement of §2 (dates in ISO form).
pub const FILTERED_ORDERED_SETS: &str = "\
MINE RULE FilteredOrderedSets AS \
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE \
WHERE BODY.price >= 100 AND HEAD.price < 100 \
FROM Purchase \
WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' \
GROUP BY customer \
CLUSTER BY date HAVING BODY.date < HEAD.date \
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3";

/// One Figure 1 row: (tr, customer, item, (y, m, d), price, qty).
pub type PurchaseRow = (i64, &'static str, &'static str, (i32, u32, u32), i64, i64);

/// Figure 1 rows.
pub const PURCHASE_ROWS: &[PurchaseRow] = &[
    (1, "cust1", "ski_pants", (1995, 12, 17), 140, 1),
    (1, "cust1", "hiking_boots", (1995, 12, 17), 180, 1),
    (2, "cust2", "col_shirts", (1995, 12, 18), 25, 2),
    (2, "cust2", "brown_boots", (1995, 12, 18), 150, 1),
    (2, "cust2", "jackets", (1995, 12, 18), 300, 1),
    (3, "cust1", "jackets", (1995, 12, 18), 300, 1),
    (4, "cust2", "col_shirts", (1995, 12, 19), 25, 3),
    (4, "cust2", "jackets", (1995, 12, 19), 300, 2),
];

/// The rules of Figure 2b: (body, head, support, confidence).
pub const FIGURE_2B: &[(&[&str], &[&str], f64, f64)] = &[
    (&["brown_boots"], &["col_shirts"], 0.5, 1.0),
    (&["brown_boots", "jackets"], &["col_shirts"], 0.5, 1.0),
    (&["jackets"], &["col_shirts"], 0.5, 0.5),
];

/// Create the `Purchase` table (Figure 1) in a database.
pub fn load_purchase_table(db: &mut Database) -> Result<()> {
    db.execute(
        "CREATE TABLE Purchase (tr INT, customer VARCHAR, item VARCHAR, \
         date DATE, price INT, qty INT)",
    )?;
    let table = db.catalog_mut().table_mut("Purchase")?;
    for &(tr, customer, item, (y, m, d), price, qty) in PURCHASE_ROWS {
        table.insert(vec![
            Value::Int(tr),
            Value::Str(customer.to_string()),
            Value::Str(item.to_string()),
            Value::Date(Date::from_ymd(y, m, d).expect("valid paper date")),
            Value::Int(price),
            Value::Int(qty),
        ])?;
    }
    Ok(())
}

/// A database preloaded with Figure 1.
pub fn purchase_db() -> Database {
    let mut db = Database::new();
    load_purchase_table(&mut db).expect("paper data loads");
    db
}

/// Run the §2 statement end to end and return the outcome.
pub fn run_paper_example() -> Result<(Database, MiningOutcome)> {
    let mut db = purchase_db();
    let outcome = MineRuleEngine::new().execute(&mut db, FILTERED_ORDERED_SETS)?;
    Ok((db, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_purchase_table() {
        let mut db = purchase_db();
        let rs = db.query("SELECT COUNT(*) FROM Purchase").unwrap();
        assert_eq!(rs.scalar().unwrap(), &Value::Int(8));
        let rs = db
            .query("SELECT COUNT(DISTINCT customer) FROM Purchase")
            .unwrap();
        assert_eq!(rs.scalar().unwrap(), &Value::Int(2));
    }

    #[test]
    fn figure2a_grouped_clustered() {
        // Grouping by customer then clustering by date must yield the
        // four clusters of Figure 2a.
        let mut db = purchase_db();
        let rs = db
            .query(
                "SELECT customer, date, COUNT(*) AS items FROM Purchase \
                 GROUP BY customer, date ORDER BY customer, date",
            )
            .unwrap();
        let rows: Vec<String> = rs
            .rows()
            .iter()
            .map(|r| format!("{} {} {}", r[0], r[1], r[2]))
            .collect();
        assert_eq!(
            rows,
            vec![
                "cust1 1995-12-17 2",
                "cust1 1995-12-18 1",
                "cust2 1995-12-18 3",
                "cust2 1995-12-19 2",
            ]
        );
    }

    #[test]
    fn figure2b_filtered_ordered_sets() {
        let (_, outcome) = run_paper_example().unwrap();
        assert!(outcome.used_general, "clusters + mining cond → general");
        assert_eq!(outcome.rules.len(), FIGURE_2B.len(), "{:#?}", outcome.rules);
        for (body, head, support, confidence) in FIGURE_2B {
            let found = outcome
                .rules
                .iter()
                .find(|r| {
                    r.body == body.iter().map(|s| s.to_string()).collect::<Vec<_>>()
                        && r.head == head.iter().map(|s| s.to_string()).collect::<Vec<_>>()
                })
                .unwrap_or_else(|| panic!("missing rule {body:?} => {head:?}"));
            assert!(
                (found.support - support).abs() < 1e-9,
                "support of {body:?} => {head:?}: got {}, paper says {support}",
                found.support
            );
            assert!(
                (found.confidence - confidence).abs() < 1e-9,
                "confidence of {body:?} => {head:?}: got {}, paper says {confidence}",
                found.confidence
            );
        }
    }
}
