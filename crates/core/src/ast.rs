//! Abstract syntax of the MINE RULE operator (§4.1 of the paper).

use std::fmt;

use relational::expr::Expr;

/// Upper bound of a cardinality specification: a number or `n` (unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardMax {
    /// A fixed maximum.
    Fixed(u32),
    /// `n` — no upper bound.
    Unbounded,
}

/// A cardinality specification `<min> .. (<max> | n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardSpec {
    pub min: u32,
    pub max: CardMax,
}

impl CardSpec {
    /// The default body cardinality, `1..n`.
    pub fn one_to_n() -> CardSpec {
        CardSpec {
            min: 1,
            max: CardMax::Unbounded,
        }
    }

    /// The default head cardinality, `1..1`.
    pub fn one_to_one() -> CardSpec {
        CardSpec {
            min: 1,
            max: CardMax::Fixed(1),
        }
    }

    /// True when `k` items satisfy this specification.
    pub fn admits(&self, k: usize) -> bool {
        let k = k as u32;
        k >= self.min
            && match self.max {
                CardMax::Fixed(m) => k <= m,
                CardMax::Unbounded => true,
            }
    }

    /// Upper bound usable as an expansion limit (`u32::MAX` for `n`).
    pub fn upper_limit(&self) -> u32 {
        match self.max {
            CardMax::Fixed(m) => m,
            CardMax::Unbounded => u32::MAX,
        }
    }

    /// Structurally valid: min ≥ 1 and min ≤ max.
    pub fn is_valid(&self) -> bool {
        self.min >= 1
            && match self.max {
                CardMax::Fixed(m) => self.min <= m,
                CardMax::Unbounded => true,
            }
    }
}

impl fmt::Display for CardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            CardMax::Fixed(m) => write!(f, "{}..{}", self.min, m),
            CardMax::Unbounded => write!(f, "{}..n", self.min),
        }
    }
}

/// The rule-element descriptor: `[cardspec] <schema> AS BODY|HEAD`.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementSpec {
    pub card: CardSpec,
    /// The attribute list items of this element are built from.
    pub schema: Vec<String>,
}

/// One table in the FROM list.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceTable {
    pub name: String,
    pub alias: Option<String>,
}

impl SourceTable {
    /// The name this table is visible under in conditions.
    pub fn visible_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// A parsed MINE RULE statement.
///
/// ```text
/// MINE RULE <output table> AS
/// SELECT DISTINCT <body descr>, <head descr> [,SUPPORT] [,CONFIDENCE]
///   [WHERE <mining cond>]
/// FROM <from list> [WHERE <source cond>]
/// GROUP BY <group attr list> [HAVING <group cond>]
/// [CLUSTER BY <cluster attr list> [HAVING <cluster cond>]]
/// EXTRACTING RULES WITH SUPPORT: s, CONFIDENCE: c
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MineRuleStatement {
    pub output_table: String,
    pub body: ElementSpec,
    pub head: ElementSpec,
    /// `SUPPORT` listed in the SELECT list (include the column in output).
    pub select_support: bool,
    /// `CONFIDENCE` listed in the SELECT list.
    pub select_confidence: bool,
    /// The mining condition (`WHERE` before `FROM`), over BODY./HEAD. attrs.
    pub mining_cond: Option<Expr>,
    pub from: Vec<SourceTable>,
    /// The source condition (`WHERE` after `FROM`).
    pub source_cond: Option<Expr>,
    pub group_by: Vec<String>,
    pub group_cond: Option<Expr>,
    pub cluster_by: Vec<String>,
    pub cluster_cond: Option<Expr>,
    pub min_support: f64,
    pub min_confidence: f64,
}

impl MineRuleStatement {
    /// All attributes mentioned anywhere (for `Q0`'s `<needed attr list>`):
    /// body ∪ head ∪ grouping ∪ clustering ∪ mining/condition attributes.
    pub fn needed_attributes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |name: &str| {
            if !out.iter().any(|x| x.eq_ignore_ascii_case(name)) {
                out.push(name.to_string());
            }
        };
        for a in &self.body.schema {
            push(a);
        }
        for a in &self.head.schema {
            push(a);
        }
        for a in &self.group_by {
            push(a);
        }
        for a in &self.cluster_by {
            push(a);
        }
        for cond in [&self.mining_cond, &self.group_cond, &self.cluster_cond]
            .into_iter()
            .flatten()
        {
            for (_, name) in cond.column_refs() {
                push(name);
            }
        }
        out
    }

    /// Attributes referenced by the mining condition (the paper's
    /// `Mineattlist`), deduplicated, order of first appearance.
    pub fn mining_attributes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        if let Some(cond) = &self.mining_cond {
            for (_, name) in cond.column_refs() {
                if !out.iter().any(|x| x.eq_ignore_ascii_case(name)) {
                    out.push(name.to_string());
                }
            }
        }
        out
    }
}

impl fmt::Display for MineRuleStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MINE RULE {} AS SELECT DISTINCT {} {} AS BODY, {} {} AS HEAD",
            self.output_table,
            self.body.card,
            self.body.schema.join(", "),
            self.head.card,
            self.head.schema.join(", "),
        )?;
        if self.select_support {
            write!(f, ", SUPPORT")?;
        }
        if self.select_confidence {
            write!(f, ", CONFIDENCE")?;
        }
        if let Some(m) = &self.mining_cond {
            write!(f, " WHERE {m}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.name)?;
            if let Some(a) = &t.alias {
                write!(f, " AS {a}")?;
            }
        }
        if let Some(w) = &self.source_cond {
            write!(f, " WHERE {w}")?;
        }
        write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        if let Some(g) = &self.group_cond {
            write!(f, " HAVING {g}")?;
        }
        if !self.cluster_by.is_empty() {
            write!(f, " CLUSTER BY {}", self.cluster_by.join(", "))?;
            if let Some(c) = &self.cluster_cond {
                write!(f, " HAVING {c}")?;
            }
        }
        write!(
            f,
            " EXTRACTING RULES WITH SUPPORT: {}, CONFIDENCE: {}",
            self.min_support, self.min_confidence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardspec_admits() {
        let c = CardSpec {
            min: 2,
            max: CardMax::Fixed(3),
        };
        assert!(!c.admits(1));
        assert!(c.admits(2));
        assert!(c.admits(3));
        assert!(!c.admits(4));
        assert!(CardSpec::one_to_n().admits(100));
        assert!(!CardSpec::one_to_one().admits(2));
    }

    #[test]
    fn cardspec_validity() {
        assert!(CardSpec::one_to_n().is_valid());
        assert!(!CardSpec {
            min: 0,
            max: CardMax::Unbounded
        }
        .is_valid());
        assert!(!CardSpec {
            min: 3,
            max: CardMax::Fixed(2)
        }
        .is_valid());
    }

    #[test]
    fn cardspec_display() {
        assert_eq!(CardSpec::one_to_n().to_string(), "1..n");
        assert_eq!(CardSpec::one_to_one().to_string(), "1..1");
    }
}
