//! The postprocessor (§4.4): store the core operator's encoded rules in
//! the DBMS and decode them into user-readable output tables.
//!
//! The core operator's output is the three-table normalised form of the
//! paper — `OutputRules (BodyId, HeadId, SUPPORT, CONFIDENCE)` plus
//! `OutputBodies (BodyId, Bid)` and `OutputHeads (HeadId, Hid)` — chosen
//! precisely because SQL92 has no set-valued attributes. Decoding is then
//! a pair of joins with `Bset`/`Hset`, executed as plain SQL.

use std::collections::HashMap;

use relational::{Database, Value};

use crate::algo::EncodedRule;
use crate::error::Result;
use crate::preprocess::run_steps;
use crate::translator::Translation;

/// Write the encoded rules into `OutputRules` / `OutputBodies` /
/// `OutputHeads`, assigning body/head identifiers (identical itemsets
/// share an identifier, as the normalised form intends).
pub fn store_encoded_rules(
    db: &mut Database,
    translation: &Translation,
    rules: &[EncodedRule],
) -> Result<()> {
    let names = &translation.names;
    db.execute(&format!(
        "CREATE TABLE {} (BodyId INT, HeadId INT, SUPPORT FLOAT, CONFIDENCE FLOAT)",
        names.output_rules()
    ))?;
    db.execute(&format!(
        "CREATE TABLE {} (BodyId INT, Bid INT)",
        names.output_bodies()
    ))?;
    db.execute(&format!(
        "CREATE TABLE {} (HeadId INT, Hid INT)",
        names.output_heads()
    ))?;

    let mut body_ids: HashMap<&[u32], i64> = HashMap::new();
    let mut head_ids: HashMap<&[u32], i64> = HashMap::new();
    let mut body_rows: Vec<Vec<Value>> = Vec::new();
    let mut head_rows: Vec<Vec<Value>> = Vec::new();
    let mut rule_rows: Vec<Vec<Value>> = Vec::with_capacity(rules.len());

    for rule in rules {
        let next_body = body_ids.len() as i64 + 1;
        let body_id = *body_ids.entry(rule.body.as_slice()).or_insert_with(|| {
            for &bid in &rule.body {
                body_rows.push(vec![Value::Int(next_body), Value::Int(bid as i64)]);
            }
            next_body
        });
        let next_head = head_ids.len() as i64 + 1;
        let head_id = *head_ids.entry(rule.head.as_slice()).or_insert_with(|| {
            for &hid in &rule.head {
                head_rows.push(vec![Value::Int(next_head), Value::Int(hid as i64)]);
            }
            next_head
        });
        rule_rows.push(vec![
            Value::Int(body_id),
            Value::Int(head_id),
            Value::Float(rule.support),
            Value::Float(rule.confidence),
        ]);
    }

    let catalog = db.catalog_mut();
    catalog
        .table_mut(&names.output_rules())?
        .insert_all(rule_rows)?;
    catalog
        .table_mut(&names.output_bodies())?
        .insert_all(body_rows)?;
    catalog
        .table_mut(&names.output_heads())?
        .insert_all(head_rows)?;
    Ok(())
}

/// Run the decode joins, producing `<out>`, `<out>_Bodies`, `<out>_Heads`.
pub fn postprocess(db: &mut Database, translation: &Translation) -> Result<()> {
    run_steps(db, &translation.postprocess, translation.stmt.min_support)?;
    Ok(())
}

/// A decoded rule, read back from the output tables.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedRule {
    /// Sorted rendered body items (multi-attribute items join with `|`).
    pub body: Vec<String>,
    /// Sorted rendered head items.
    pub head: Vec<String>,
    pub support: f64,
    pub confidence: f64,
}

impl DecodedRule {
    /// `{a, b} => {c} (s=0.5, c=1)` rendering for examples and reports.
    pub fn display(&self) -> String {
        format!(
            "{{{}}} => {{{}}} (s={:.3}, c={:.3})",
            self.body.join(", "),
            self.head.join(", "),
            self.support,
            self.confidence
        )
    }
}

/// Read the user-facing output tables back into decoded rules, sorted by
/// (body, head) for stable comparison.
pub fn read_rules(db: &mut Database, translation: &Translation) -> Result<Vec<DecodedRule>> {
    let out = &translation.stmt.output_table;
    let body_schema_len = translation.stmt.body.schema.len();
    let head_schema_len = translation.stmt.head.schema.len();
    let bodies = read_itemsets(db, &format!("{out}_Bodies"), "BodyId", body_schema_len)?;
    let heads = read_itemsets(db, &format!("{out}_Heads"), "HeadId", head_schema_len)?;

    // The rule table always carries SUPPORT/CONFIDENCE in OutputRules;
    // the user projection may omit them, so fall back to the encoded table.
    let (sup_col, conf_col, table) =
        if translation.stmt.select_support && translation.stmt.select_confidence {
            ("SUPPORT", "CONFIDENCE", out.clone())
        } else {
            ("SUPPORT", "CONFIDENCE", translation.names.output_rules())
        };
    let rs = db.query(&format!(
        "SELECT BodyId, HeadId, {sup_col}, {conf_col} FROM {table}"
    ))?;
    let mut rules = Vec::with_capacity(rs.len());
    for row in rs.rows() {
        let body_id = row[0].as_int().map_err(crate::error::MineError::from)?;
        let head_id = row[1].as_int().map_err(crate::error::MineError::from)?;
        rules.push(DecodedRule {
            body: bodies.get(&body_id).cloned().unwrap_or_default(),
            head: heads.get(&head_id).cloned().unwrap_or_default(),
            support: row[2].as_float().map_err(crate::error::MineError::from)?,
            confidence: row[3].as_float().map_err(crate::error::MineError::from)?,
        });
    }
    rules.sort_by(|a, b| a.body.cmp(&b.body).then(a.head.cmp(&b.head)));
    Ok(rules)
}

fn read_itemsets(
    db: &mut Database,
    table: &str,
    id_col: &str,
    attr_count: usize,
) -> Result<HashMap<i64, Vec<String>>> {
    let rs = db.query(&format!("SELECT * FROM {table}"))?;
    let id_idx = rs.column_index(id_col).unwrap_or(0);
    let mut map: HashMap<i64, Vec<String>> = HashMap::new();
    for row in rs.rows() {
        let id = row[id_idx]
            .as_int()
            .map_err(crate::error::MineError::from)?;
        let rendered = row
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != id_idx)
            .take(attr_count)
            .map(|(_, v)| v.to_string())
            .collect::<Vec<_>>()
            .join("|");
        map.entry(id).or_default().push(rendered);
    }
    for items in map.values_mut() {
        items.sort();
    }
    Ok(map)
}
