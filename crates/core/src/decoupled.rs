//! The decoupled-architecture baseline the paper argues against (§1).
//!
//! The decoupled flow is: (1) extract the source data from the SQL server
//! and serialise it to a flat file, (2) run a standalone miner that knows
//! nothing about the database and works on raw string items, (3) keep the
//! rules in the tool's own format and, if the user wants them joined with
//! database data, re-import them through another parse + load step. The
//! three inconveniences §1 lists — preparation cost, limited paradigm,
//! rules stranded outside the database — all show up here, measurably
//! (benchmark E1).

use std::collections::HashMap;
use std::fmt::Write as _;

use relational::Database;

use crate::algo::apriori::mine_gidlist_with_border;
use crate::algo::itemset::for_each_proper_subset;
use crate::error::{MineError, Result};

/// A rule in the standalone tool's text format.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatRule {
    pub body: Vec<String>,
    pub head: Vec<String>,
    pub support: f64,
    pub confidence: f64,
}

/// Step 1: export a (group, item) projection of a query to CSV text, the
/// "long preparation for extracting data" of §1.
pub fn export_to_csv(db: &mut Database, query: &str) -> Result<String> {
    let rs = db.query(query)?;
    if rs.schema().len() != 2 {
        return Err(MineError::Internal {
            message: format!(
                "decoupled export expects (group, item) pairs, got {} columns",
                rs.schema().len()
            ),
        });
    }
    let mut out = String::new();
    for row in rs.rows() {
        // Quote-less CSV with escaping of separators, as early tools did.
        let g = row[0].to_string().replace([',', '\n'], "_");
        let i = row[1].to_string().replace([',', '\n'], "_");
        writeln!(out, "{g},{i}").expect("string write");
    }
    Ok(out)
}

/// Steps 2–3 of the standalone tool: parse the flat file, re-encode the
/// string items into integers (work the tightly-coupled preprocessor does
/// inside the server), mine, and emit rules on raw strings again.
pub fn mine_flat_file(csv: &str, min_support: f64, min_confidence: f64) -> Result<Vec<FlatRule>> {
    // Parse + encode.
    let mut item_ids: HashMap<&str, u32> = HashMap::new();
    let mut item_names: Vec<&str> = Vec::new();
    let mut groups_by_key: HashMap<&str, Vec<u32>> = HashMap::new();
    let mut group_order: Vec<&str> = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let Some((g, i)) = line.split_once(',') else {
            return Err(MineError::Internal {
                message: format!("flat file line {} is not group,item", lineno + 1),
            });
        };
        let id = *item_ids.entry(i).or_insert_with(|| {
            item_names.push(i);
            (item_names.len() - 1) as u32
        });
        groups_by_key
            .entry(g)
            .or_insert_with(|| {
                group_order.push(g);
                Vec::new()
            })
            .push(id);
    }
    let mut groups: Vec<Vec<u32>> = Vec::with_capacity(group_order.len());
    for g in &group_order {
        let mut items = groups_by_key.remove(g).unwrap_or_default();
        items.sort_unstable();
        items.dedup();
        groups.push(items);
    }
    let total = groups.len() as u32;
    let min_groups = ((total as f64 * min_support).ceil() as u32).max(1);

    // Mine.
    let (large, _) = mine_gidlist_with_border(&groups, min_groups);
    let counts: HashMap<&[u32], u32> = large
        .iter()
        .map(|(set, cnt)| (set.as_slice(), *cnt))
        .collect();

    // Emit rules with single-item heads (the classical tool paradigm —
    // the "limited data mining paradigm" of §1: no clusters, no mining
    // conditions, no alternative schemas).
    let mut rules = Vec::new();
    for (set, cnt) in &large {
        if set.len() < 2 {
            continue;
        }
        for_each_proper_subset(set, 1, &mut |head| {
            let body: Vec<u32> = set
                .iter()
                .copied()
                .filter(|x| head.binary_search(x).is_err())
                .collect();
            let Some(&body_cnt) = counts.get(body.as_slice()) else {
                return;
            };
            let confidence = *cnt as f64 / body_cnt as f64;
            if confidence + 1e-12 >= min_confidence {
                rules.push(FlatRule {
                    body: body
                        .iter()
                        .map(|&b| item_names[b as usize].to_string())
                        .collect(),
                    head: head
                        .iter()
                        .map(|&h| item_names[h as usize].to_string())
                        .collect(),
                    support: *cnt as f64 / total.max(1) as f64,
                    confidence,
                });
            }
        });
    }
    for r in &mut rules {
        r.body.sort();
        r.head.sort();
    }
    rules.sort_by(|a, b| a.body.cmp(&b.body).then(a.head.cmp(&b.head)));
    Ok(rules)
}

/// Step 4: re-import the tool's rules into the database so they can be
/// joined with other tables — the step the decoupled architecture makes
/// painful ("it is quite hard to combine the information embedded into
/// them with the data in the database").
pub fn import_rules(db: &mut Database, table: &str, rules: &[FlatRule]) -> Result<()> {
    db.execute(&format!("DROP TABLE IF EXISTS {table}"))?;
    db.execute(&format!(
        "CREATE TABLE {table} (body VARCHAR, head VARCHAR, support FLOAT, confidence FLOAT)"
    ))?;
    for r in rules {
        // Itemsets collapse into delimited strings: the relational system
        // cannot see individual items any more.
        db.execute(&format!(
            "INSERT INTO {table} VALUES ('{}', '{}', {}, {})",
            r.body.join(";").replace('\'', "''"),
            r.head.join(";").replace('\'', "''"),
            r.support,
            r.confidence
        ))?;
    }
    Ok(())
}

/// The full decoupled flow: export to a flat file on disk → standalone
/// mine → import. Returns the rules (also left in `rule_table`). The disk
/// round-trip is part of the architecture being modelled: the mining tool
/// is a separate program that only sees files.
pub fn run_decoupled(
    db: &mut Database,
    extract_query: &str,
    min_support: f64,
    min_confidence: f64,
    rule_table: &str,
) -> Result<Vec<FlatRule>> {
    let csv = export_to_csv(db, extract_query)?;
    let path = std::env::temp_dir().join(format!(
        "tcdm_decoupled_{}_{}.csv",
        std::process::id(),
        rule_table
    ));
    let io_err = |e: std::io::Error| MineError::Internal {
        message: format!("decoupled flat-file I/O failed: {e}"),
    };
    std::fs::write(&path, &csv).map_err(io_err)?;
    let reread = std::fs::read_to_string(&path).map_err(io_err)?;
    let rules = mine_flat_file(&reread, min_support, min_confidence)?;
    let _ = std::fs::remove_file(&path);
    import_rules(db, rule_table, &rules)?;
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (tr INT, item VARCHAR)").unwrap();
        db.execute("INSERT INTO T VALUES (1,'a'), (1,'b'), (2,'a'), (2,'b'), (3,'a'), (4,'c')")
            .unwrap();
        db
    }

    #[test]
    fn flat_flow_finds_rules() {
        let mut db = db();
        let rules =
            run_decoupled(&mut db, "SELECT tr, item FROM T", 0.5, 0.5, "ToolRules").unwrap();
        // {a} ⇒ {b}: support 2/4, confidence 2/3; {b} ⇒ {a}: 2/4, 1.0.
        assert_eq!(rules.len(), 2);
        let ba = rules
            .iter()
            .find(|r| r.body == vec!["b"] && r.head == vec!["a"])
            .unwrap();
        assert!((ba.confidence - 1.0).abs() < 1e-12);
        // Rules are back in the DB, but as opaque strings.
        let rs = db
            .query("SELECT body FROM ToolRules ORDER BY body")
            .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn export_requires_two_columns() {
        let mut db = db();
        assert!(export_to_csv(&mut db, "SELECT tr, item, tr FROM T").is_err());
    }

    #[test]
    fn csv_separators_escaped() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (g INT, item VARCHAR)").unwrap();
        db.execute("INSERT INTO T VALUES (1, 'a,b')").unwrap();
        let csv = export_to_csv(&mut db, "SELECT g, item FROM T").unwrap();
        assert_eq!(csv, "1,a_b\n");
    }
}
