//! Elementary (1×1) rule construction for the general core operator.
//!
//! §4.3.2: when the mining condition is present, elementary rules come
//! pre-built from the SQL-side `InputRules` table; otherwise the core
//! operator itself pairs source tuples within each group — conceptually a
//! cartesian product over cluster pairs, never materialised as a relation.

use std::collections::HashMap;

use crate::encoded::{ElemRule, GeneralTuple};

/// The evaluation *context* of a rule occurrence: a (group, body-cluster,
/// head-cluster) triple. Rules are supported by contexts; distinct groups
/// among a rule's contexts give its support, distinct groups among a
/// body's body-contexts give the confidence denominator.
#[derive(Debug, Default)]
pub struct Contexts {
    /// Context id → group id.
    pub ctx_gid: Vec<u32>,
    /// Body-context id → group id (a body context is a (group, cluster)
    /// pair in which at least one body item occurs).
    pub bodyctx_gid: Vec<u32>,
    /// Elementary rules: (bid, hid) → sorted, deduplicated context ids.
    pub elem: HashMap<(u32, u32), Vec<u32>>,
    /// Per body item: sorted body-context ids where it occurs.
    pub body_occ: HashMap<u32, Vec<u32>>,
}

impl Contexts {
    /// Distinct group count of a sorted context list.
    pub fn distinct_gids(&self, ctxs: &[u32]) -> u32 {
        distinct_by(ctxs, &self.ctx_gid)
    }

    /// Distinct group count of a sorted body-context list.
    pub fn distinct_body_gids(&self, bodyctxs: &[u32]) -> u32 {
        distinct_by(bodyctxs, &self.bodyctx_gid)
    }
}

fn distinct_by(ids: &[u32], map: &[u32]) -> u32 {
    let mut count = 0u32;
    let mut last: Option<u32> = None;
    // Context ids are assigned group-by-group, so equal gids are adjacent
    // in any sorted id list.
    for &id in ids {
        let g = map[id as usize];
        if last != Some(g) {
            count += 1;
            last = Some(g);
        }
    }
    count
}

/// What the builder needs to know about the statement shape.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// CLUSTER BY present.
    pub clustered: bool,
    /// HAVING on CLUSTER BY present (couples constrain the pairs).
    pub has_couples: bool,
    /// Body and head drawn from different attribute schemas (H). When
    /// false, an item may not appear on both sides of one elementary rule.
    pub distinct_head: bool,
    /// Large-element absolute threshold.
    pub min_groups: u32,
}

/// Build the context structures from the encoded tables.
///
/// `input_rules` (when the mining condition ran in SQL) fixes the set of
/// elementary rules; otherwise every (body item, head item) pair within a
/// valid cluster pair is elementary.
pub fn build_contexts(
    tuples: &[GeneralTuple],
    couples: Option<&[(u32, u32, u32)]>,
    input_rules: Option<&[ElemRule]>,
    opts: BuildOptions,
) -> Contexts {
    // 1. Item occurrences per (gid, cid). Without CLUSTER BY, cid = 0.
    let mut clusters: HashMap<(u32, u32), (Vec<u32>, Vec<u32>)> = HashMap::new();
    let mut group_clusters: HashMap<u32, Vec<u32>> = HashMap::new();
    for t in tuples {
        let cid = t.cid.unwrap_or(0);
        let entry = clusters.entry((t.gid, cid)).or_insert_with(|| {
            group_clusters.entry(t.gid).or_default().push(cid);
            (Vec::new(), Vec::new())
        });
        if let Some(b) = t.bid {
            entry.0.push(b);
        }
        if let Some(h) = t.hid {
            entry.1.push(h);
        }
    }
    for (bodies, heads) in clusters.values_mut() {
        bodies.sort_unstable();
        bodies.dedup();
        heads.sort_unstable();
        heads.dedup();
    }

    // 2. Deterministic group order (context ids grouped by gid).
    let mut gids: Vec<u32> = group_clusters.keys().copied().collect();
    gids.sort_unstable();
    for cids in group_clusters.values_mut() {
        cids.sort_unstable();
        cids.dedup();
    }

    let mut out = Contexts::default();

    // 3. Body contexts.
    for &gid in &gids {
        for &cid in &group_clusters[&gid] {
            let (bodies, _) = &clusters[&(gid, cid)];
            if bodies.is_empty() {
                continue;
            }
            let id = out.bodyctx_gid.len() as u32;
            out.bodyctx_gid.push(gid);
            for &b in bodies {
                out.body_occ.entry(b).or_default().push(id);
            }
        }
    }

    // 4. Cluster-pair contexts, in group order.
    let mut ctx_of: HashMap<(u32, u32, u32), u32> = HashMap::new();
    let mut register = |gid: u32, cb: u32, ch: u32, out: &mut Contexts| -> u32 {
        *ctx_of.entry((gid, cb, ch)).or_insert_with(|| {
            let id = out.ctx_gid.len() as u32;
            out.ctx_gid.push(gid);
            id
        })
    };

    if let Some(rules) = input_rules {
        // The SQL side already intersected the mining condition and the
        // cluster couples; trust its (gid, cidb, cidh) triples. Sort by
        // gid so context ids stay grouped.
        let mut rules: Vec<&ElemRule> = rules.iter().collect();
        rules.sort_by_key(|r| (r.gid, r.cidb.unwrap_or(0), r.cidh.unwrap_or(0)));
        for r in rules {
            let ctx = register(r.gid, r.cidb.unwrap_or(0), r.cidh.unwrap_or(0), &mut out);
            out.elem.entry((r.bid, r.hid)).or_default().push(ctx);
        }
    } else {
        // Enumerate valid pairs and take the item product in-core.
        let mut emit = |gid: u32, cb: u32, ch: u32, out: &mut Contexts| {
            let Some((bodies, _)) = clusters.get(&(gid, cb)) else {
                return;
            };
            let Some((_, heads)) = clusters.get(&(gid, ch)) else {
                return;
            };
            if bodies.is_empty() || heads.is_empty() {
                return;
            }
            let ctx = register(gid, cb, ch, out);
            for &b in bodies {
                for &h in heads {
                    if !opts.distinct_head && b == h {
                        continue;
                    }
                    out.elem.entry((b, h)).or_default().push(ctx);
                }
            }
        };
        match couples {
            Some(couples) if opts.has_couples => {
                let mut sorted: Vec<&(u32, u32, u32)> = couples.iter().collect();
                sorted.sort();
                for &&(gid, cb, ch) in &sorted {
                    emit(gid, cb, ch, &mut out);
                }
            }
            _ if opts.clustered => {
                for &gid in &gids {
                    let cids = &group_clusters[&gid];
                    for &cb in cids {
                        for &ch in cids {
                            emit(gid, cb, ch, &mut out);
                        }
                    }
                }
            }
            _ => {
                for &gid in &gids {
                    emit(gid, 0, 0, &mut out);
                }
            }
        }
    }

    // 5. Normalise and apply the large-rule prune (Q9/Q10's in-core twin).
    let mut elem = std::mem::take(&mut out.elem);
    let ctx_gid = &out.ctx_gid;
    elem.retain(|_, ctxs| {
        ctxs.sort_unstable();
        ctxs.dedup();
        distinct_by(ctxs, ctx_gid) >= opts.min_groups
    });
    out.elem = elem;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(gid: u32, cid: Option<u32>, bid: Option<u32>, hid: Option<u32>) -> GeneralTuple {
        GeneralTuple { gid, cid, bid, hid }
    }

    fn opts(min_groups: u32) -> BuildOptions {
        BuildOptions {
            clustered: false,
            has_couples: false,
            distinct_head: false,
            min_groups,
        }
    }

    #[test]
    fn unclustered_group_is_one_context() {
        // Two groups, items {1,2} and {1}.
        let tuples = vec![
            t(10, None, Some(1), Some(1)),
            t(10, None, Some(2), Some(2)),
            t(20, None, Some(1), Some(1)),
        ];
        let c = build_contexts(&tuples, None, None, opts(1));
        assert_eq!(c.ctx_gid.len(), 2);
        // Elementary rules in group 10: (1,2) and (2,1); none in group 20.
        assert_eq!(c.elem.len(), 2);
        assert!(c.elem.contains_key(&(1, 2)));
        assert!(c.elem.contains_key(&(2, 1)));
        assert!(!c.elem.contains_key(&(1, 1)), "no self-rules without H");
    }

    #[test]
    fn distinct_head_allows_same_ids() {
        let tuples = vec![t(1, None, Some(7), None), t(1, None, None, Some(7))];
        let mut o = opts(1);
        o.distinct_head = true;
        let c = build_contexts(&tuples, None, None, o);
        assert!(c.elem.contains_key(&(7, 7)), "different item spaces");
    }

    #[test]
    fn min_groups_prunes_elementary() {
        let tuples = vec![
            t(1, None, Some(1), Some(1)),
            t(1, None, Some(2), Some(2)),
            t(2, None, Some(1), Some(1)),
            t(2, None, Some(3), Some(3)),
        ];
        let c = build_contexts(&tuples, None, None, opts(2));
        // (1,2) occurs only in group 1; (1,3) only in group 2.
        assert!(c.elem.is_empty());
    }

    #[test]
    fn clustered_pairs_enumerate_within_group() {
        // Group 1 has clusters 100 (item 1) and 200 (item 2).
        let tuples = vec![
            t(1, Some(100), Some(1), Some(1)),
            t(1, Some(200), Some(2), Some(2)),
        ];
        let mut o = opts(1);
        o.clustered = true;
        let c = build_contexts(&tuples, None, None, o);
        // Pairs: (100,100),(100,200),(200,100),(200,200) — self-rules
        // removed, so elem has (1,2) from (100,200) and (2,1) from (200,100).
        assert_eq!(c.elem.len(), 2);
    }

    #[test]
    fn couples_restrict_pairs() {
        let tuples = vec![
            t(1, Some(100), Some(1), Some(1)),
            t(1, Some(200), Some(2), Some(2)),
        ];
        let couples = vec![(1, 100, 200)]; // only 100 → 200 allowed
        let mut o = opts(1);
        o.clustered = true;
        o.has_couples = true;
        let c = build_contexts(&tuples, Some(&couples), None, o);
        assert!(c.elem.contains_key(&(1, 2)));
        assert!(!c.elem.contains_key(&(2, 1)));
    }

    #[test]
    fn input_rules_bypass_product() {
        let tuples = vec![t(1, None, Some(1), Some(1)), t(1, None, Some(2), Some(2))];
        let rules = vec![ElemRule {
            gid: 1,
            cidb: None,
            cidh: None,
            bid: 1,
            hid: 2,
        }];
        let c = build_contexts(&tuples, None, Some(&rules), opts(1));
        assert_eq!(c.elem.len(), 1);
        assert!(c.elem.contains_key(&(1, 2)));
    }

    #[test]
    fn body_contexts_track_body_occurrences() {
        let tuples = vec![
            t(1, None, Some(1), Some(1)),
            t(2, None, Some(1), Some(1)),
            t(2, None, Some(2), Some(2)),
        ];
        let c = build_contexts(&tuples, None, None, opts(1));
        assert_eq!(c.body_occ[&1].len(), 2);
        assert_eq!(c.distinct_body_gids(&c.body_occ[&1]), 2);
    }
}
