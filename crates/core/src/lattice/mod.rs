//! The general core operator (§4.3.2): discovery of rules with bodies and
//! heads of arbitrary cardinality over the m×n rule-set lattice.
//!
//! The lattice has the elementary 1×1 set at the top; the left child of a
//! set m×n holds rules (m+1)×n (one more body item), the right child holds
//! m×(n+1). A set with m,n > 1 is reachable from two parents; following
//! the paper, efficiency is maximised by expanding from the parent with
//! the lower rule count ([`ExpansionOrder::MinParent`]); the fixed order
//! is kept as an ablation baseline.

pub mod elementary;

use std::collections::HashMap;

use crate::algo::itemset::{apriori_join, intersect, Itemset};
use crate::algo::EncodedRule;
use crate::ast::CardSpec;
use crate::error::{MineError, Result};
use elementary::Contexts;

/// Which parent a doubly-reachable rule set is generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpansionOrder {
    /// Expand from the parent set with fewer rules (the paper's choice).
    MinParent,
    /// Always expand the body dimension first (ablation baseline).
    BodyFirst,
}

/// Parameters of a general mining run.
#[derive(Debug, Clone, Copy)]
pub struct GeneralParams {
    pub total_groups: u32,
    pub min_groups: u32,
    pub min_confidence: f64,
    pub body_card: CardSpec,
    pub head_card: CardSpec,
    pub order: ExpansionOrder,
}

/// Statistics of a lattice run (exposed for the E5 ablation bench).
#[derive(Debug, Clone, Default)]
pub struct LatticeStats {
    /// Candidate rules whose context lists were intersected.
    pub candidates_evaluated: u64,
    /// Rules that survived the support prune, per (m, n) set.
    pub set_sizes: Vec<((u32, u32), usize)>,
}

type RuleKey = (Itemset, Itemset);
/// A rule with its supporting context list.
type KeyedRule = (RuleKey, Vec<u32>);

/// Mine general association rules from prepared contexts.
pub fn mine_general(contexts: &Contexts, params: &GeneralParams) -> Result<Vec<EncodedRule>> {
    mine_general_with_stats(contexts, params).map(|(rules, _)| rules)
}

/// [`mine_general`] also returning lattice statistics.
pub fn mine_general_with_stats(
    contexts: &Contexts,
    params: &GeneralParams,
) -> Result<(Vec<EncodedRule>, LatticeStats)> {
    let mut stats = LatticeStats::default();

    // Rules are kept sorted by (body, head) so join partners are adjacent.
    let mut sets: HashMap<(u32, u32), Vec<KeyedRule>> = HashMap::new();
    let mut top: Vec<KeyedRule> = contexts
        .elem
        .iter()
        .map(|(&(b, h), ctxs)| ((vec![b], vec![h]), ctxs.clone()))
        .collect();
    top.sort_by(|a, b| a.0.cmp(&b.0));
    sets.insert((1, 1), top);

    // Hard caps keep `n`-style specs finite.
    let max_body = params.body_card.upper_limit().min(64);
    let max_head = params.head_card.upper_limit().min(64);

    // Level-wise descent by m + n.
    let mut level_sum = 2u32;
    loop {
        level_sum += 1;
        let mut produced_any = false;
        for m in 1..=level_sum.saturating_sub(1) {
            let n = level_sum - m;
            if m > max_body || n > max_head || n == 0 {
                continue;
            }
            let body_parent = (m > 1).then(|| (m - 1, n));
            let head_parent = (n > 1).then(|| (m, n - 1));
            let pick = |p: Option<(u32, u32)>| p.and_then(|k| sets.get(&k).map(|s| (k, s.len())));
            let chosen = match (pick(body_parent), pick(head_parent)) {
                (None, None) => continue,
                (Some((k, _)), None) => (k, true),
                (None, Some((k, _))) => (k, false),
                (Some((bk, bl)), Some((hk, hl))) => match params.order {
                    ExpansionOrder::BodyFirst => (bk, true),
                    ExpansionOrder::MinParent => {
                        if bl <= hl {
                            (bk, true)
                        } else {
                            (hk, false)
                        }
                    }
                },
            };
            let (parent_key, expand_body) = chosen;
            let parent = &sets[&parent_key];
            let next = expand(parent, expand_body, contexts, params, &mut stats)?;
            if !next.is_empty() {
                produced_any = true;
                stats.set_sizes.push(((m, n), next.len()));
                sets.insert((m, n), next);
            }
        }
        if !produced_any {
            break;
        }
    }

    // Emission: every stored rule within the cardinality specs and above
    // the confidence threshold.
    let mut body_gids_memo: HashMap<Itemset, u32> = HashMap::new();
    let mut out = Vec::new();
    for ((m, n), rules) in &sets {
        if !params.body_card.admits(*m as usize) || !params.head_card.admits(*n as usize) {
            continue;
        }
        for ((body, head), ctxs) in rules {
            let gids = contexts.distinct_gids(ctxs);
            let body_gids = match body_gids_memo.get(body) {
                Some(&v) => v,
                None => {
                    let v = body_group_support(contexts, body)?;
                    body_gids_memo.insert(body.clone(), v);
                    v
                }
            };
            if body_gids == 0 {
                return Err(MineError::Internal {
                    message: format!("rule body {body:?} has zero body support"),
                });
            }
            let confidence = gids as f64 / body_gids as f64;
            if confidence + 1e-12 >= params.min_confidence {
                out.push(EncodedRule {
                    body: body.clone(),
                    head: head.clone(),
                    group_count: gids,
                    support: gids as f64 / params.total_groups.max(1) as f64,
                    confidence,
                });
            }
        }
    }
    crate::algo::sort_rules(&mut out);
    Ok((out, stats))
}

/// Generate the child set by extending the body (or head) dimension:
/// Apriori-join rules that agree on the other dimension, intersect their
/// context lists, and keep those with enough supporting groups.
fn expand(
    parent: &[KeyedRule],
    expand_body: bool,
    contexts: &Contexts,
    params: &GeneralParams,
    stats: &mut LatticeStats,
) -> Result<Vec<KeyedRule>> {
    // Bucket rules by the fixed dimension so join partners meet.
    let mut buckets: HashMap<&Itemset, Vec<usize>> = HashMap::new();
    for (i, ((body, head), _)) in parent.iter().enumerate() {
        let fixed = if expand_body { head } else { body };
        buckets.entry(fixed).or_default().push(i);
    }
    let mut next: Vec<KeyedRule> = Vec::new();
    for (fixed, idxs) in buckets {
        // Within a bucket, the varying dimension is sorted (parent is
        // globally sorted by (body, head); within equal fixed dimension
        // the other dimension ascends for expand_body, and for heads we
        // re-sort defensively).
        let mut vary: Vec<(&Itemset, &Vec<u32>)> = idxs
            .iter()
            .map(|&i| {
                let ((body, head), ctxs) = &parent[i];
                (if expand_body { body } else { head }, ctxs)
            })
            .collect();
        vary.sort_by(|a, b| a.0.cmp(b.0));
        for i in 0..vary.len() {
            for j in (i + 1)..vary.len() {
                let Some(joined) = apriori_join(vary[i].0, vary[j].0) else {
                    break;
                };
                stats.candidates_evaluated += 1;
                let ctxs = intersect(vary[i].1, vary[j].1);
                if contexts.distinct_gids(&ctxs) >= params.min_groups {
                    let key = if expand_body {
                        (joined, fixed.clone())
                    } else {
                        (fixed.clone(), joined)
                    };
                    next.push((key, ctxs));
                }
            }
        }
    }
    next.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(next)
}

/// Groups in which the whole body occurs inside a single body cluster.
fn body_group_support(contexts: &Contexts, body: &[u32]) -> Result<u32> {
    let mut acc: Option<Vec<u32>> = None;
    for b in body {
        let occ = contexts
            .body_occ
            .get(b)
            .ok_or_else(|| MineError::Internal {
                message: format!("body item {b} missing from occurrence index"),
            })?;
        acc = Some(match acc {
            None => occ.clone(),
            Some(prev) => intersect(&prev, occ),
        });
    }
    Ok(contexts.distinct_body_gids(&acc.unwrap_or_default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoded::GeneralTuple;
    use crate::lattice::elementary::{build_contexts, BuildOptions};

    fn t(gid: u32, bid: u32) -> GeneralTuple {
        GeneralTuple {
            gid,
            cid: None,
            bid: Some(bid),
            hid: Some(bid),
        }
    }

    fn params(min_groups: u32, min_conf: f64, total: u32) -> GeneralParams {
        GeneralParams {
            total_groups: total,
            min_groups,
            min_confidence: min_conf,
            body_card: CardSpec::one_to_n(),
            head_card: CardSpec::one_to_n(),
            order: ExpansionOrder::MinParent,
        }
    }

    fn basket_contexts(groups: &[&[u32]], min_groups: u32) -> Contexts {
        let mut tuples = Vec::new();
        for (g, items) in groups.iter().enumerate() {
            for &i in *items {
                tuples.push(t(g as u32, i));
            }
        }
        build_contexts(
            &tuples,
            None,
            None,
            BuildOptions {
                clustered: false,
                has_couples: false,
                distinct_head: false,
                min_groups,
            },
        )
    }

    #[test]
    fn finds_composite_rules() {
        // {1,2} ⇒ {3} holds in 2 of 3 groups.
        let contexts = basket_contexts(&[&[1, 2, 3], &[1, 2, 3], &[1, 2]], 2);
        let rules = mine_general(&contexts, &params(2, 0.5, 3)).unwrap();
        let found = rules
            .iter()
            .find(|r| r.body == vec![1, 2] && r.head == vec![3])
            .expect("{1,2} => {3} missing");
        assert_eq!(found.group_count, 2);
        assert!((found.support - 2.0 / 3.0).abs() < 1e-12);
        assert!((found.confidence - 2.0 / 3.0).abs() < 1e-12);
        // And a 1×2 rule as well: {1} ⇒ {2,3}.
        assert!(rules
            .iter()
            .any(|r| r.body == vec![1] && r.head == vec![2, 3]));
    }

    #[test]
    fn body_and_head_stay_disjoint() {
        let contexts = basket_contexts(&[&[1, 2, 3], &[1, 2, 3]], 1);
        let rules = mine_general(&contexts, &params(1, 0.0001, 2)).unwrap();
        for r in &rules {
            for b in &r.body {
                assert!(!r.head.contains(b), "{r:?}");
            }
        }
    }

    #[test]
    fn support_monotone_under_expansion() {
        let contexts = basket_contexts(&[&[1, 2, 3], &[1, 2], &[1, 3], &[2, 3]], 1);
        let rules = mine_general(&contexts, &params(1, 0.0001, 4)).unwrap();
        let find = |b: &[u32], h: &[u32]| {
            rules
                .iter()
                .find(|r| r.body == b && r.head == h)
                .map(|r| r.group_count)
        };
        let s_12_3 = find(&[1, 2], &[3]).unwrap();
        let s_1_3 = find(&[1], &[3]).unwrap();
        let s_2_3 = find(&[2], &[3]).unwrap();
        assert!(s_12_3 <= s_1_3 && s_12_3 <= s_2_3);
    }

    #[test]
    fn expansion_orders_agree() {
        let groups: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![1, 3, 4],
            vec![1, 2, 4],
        ];
        let refs: Vec<&[u32]> = groups.iter().map(|g| g.as_slice()).collect();
        let contexts = basket_contexts(&refs, 2);
        let mut a = mine_general(&contexts, &params(2, 0.01, 5)).unwrap();
        let mut b = mine_general(
            &contexts,
            &GeneralParams {
                order: ExpansionOrder::BodyFirst,
                ..params(2, 0.01, 5)
            },
        )
        .unwrap();
        crate::algo::sort_rules(&mut a);
        crate::algo::sort_rules(&mut b);
        assert_eq!(a, b, "expansion order must not change the result");
    }

    #[test]
    fn head_cardinality_caps_expansion() {
        let contexts = basket_contexts(&[&[1, 2, 3], &[1, 2, 3]], 1);
        let p = GeneralParams {
            head_card: CardSpec::one_to_one(),
            ..params(1, 0.0001, 2)
        };
        let rules = mine_general(&contexts, &p).unwrap();
        assert!(rules.iter().all(|r| r.head.len() == 1));
        assert!(rules.iter().any(|r| r.body.len() == 2));
    }

    #[test]
    fn empty_contexts_give_no_rules() {
        let contexts = basket_contexts(&[], 1);
        assert!(mine_general(&contexts, &params(1, 0.1, 0))
            .unwrap()
            .is_empty());
    }
}
