//! Errors of the mining kernel.

use std::fmt;

/// A failure anywhere in the translator → preprocessor → core →
/// postprocessor chain.
#[derive(Debug, Clone, PartialEq)]
pub enum MineError {
    /// Lex/parse error in the MINE RULE statement itself.
    Syntax { pos: usize, message: String },
    /// Semantic check failure (§4.1 of the paper, checks 1–4).
    Semantic(SemanticViolation),
    /// The underlying SQL server reported an error.
    Sql(relational::Error),
    /// Thresholds outside (0, 1].
    BadThreshold { what: &'static str, value: f64 },
    /// The requested mining algorithm is not a member of the pool — a
    /// user configuration error, reported with the valid names.
    UnknownAlgorithm { name: String },
    /// A worker count of zero was configured — a user configuration
    /// error, reported with the valid domain (like `UnknownAlgorithm`).
    InvalidWorkerCount { value: usize },
    /// An unrecognised gid-set representation name was configured — a
    /// user configuration error, reported with the valid domain.
    UnknownGidSetRepr { name: String },
    /// An unrecognised SQL execution mode name was configured — a user
    /// configuration error, reported with the valid domain.
    UnknownSqlExec { name: String },
    /// An unrecognised batch execution mode name was configured — a user
    /// configuration error, reported with the valid domain.
    UnknownExecMode { name: String },
    /// An unrecognised preprocess cache mode was configured — a user
    /// configuration error, reported with the valid domain.
    UnknownCacheMode { name: String },
    /// An unrecognised mined-result cache mode was configured — a user
    /// configuration error, reported with the valid domain.
    UnknownMineCacheMode { name: String },
    /// An unrecognised relational index policy was configured — a user
    /// configuration error, reported with the valid domain.
    UnknownIndexPolicy { name: String },
    /// An unrecognised storage backend name was configured — a user
    /// configuration error, reported with the valid domain.
    UnknownStorageBackend { name: String },
    /// An unrecognised planner mode name was configured — a user
    /// configuration error, reported with the valid domain.
    UnknownPlanner { name: String },
    /// Internal invariant broken (a bug).
    Internal { message: String },
}

/// The four semantic checks the translator performs, in the paper's order.
#[derive(Debug, Clone, PartialEq)]
pub enum SemanticViolation {
    /// Check 1: an attribute list names an attribute not in the source
    /// table schemas.
    UnknownAttribute { clause: &'static str, name: String },
    /// Check 2: grouping/clustering/body/head attribute lists overlap
    /// where they must be disjoint.
    OverlappingAttributes {
        first: &'static str,
        second: &'static str,
        name: String,
    },
    /// Check 3: a HAVING condition references attributes outside its own
    /// grouping (clustering) list.
    HavingScope { clause: &'static str, name: String },
    /// Check 4: the mining condition references a grouping or clustering
    /// attribute.
    MiningCondScope { name: String },
    /// A cardinality specification with min > max or min = 0.
    BadCardinality { spec: String },
    /// The mining condition uses a qualifier other than BODY/HEAD.
    BadMiningQualifier { qualifier: String },
    /// The cluster condition uses a qualifier other than BODY/HEAD.
    BadClusterQualifier { qualifier: String },
    /// CLUSTER BY HAVING present without CLUSTER BY (K ⇒ C violated at
    /// the grammar level; kept for programmatic construction).
    ClusterCondWithoutCluster,
    /// The output table name collides with a source table — accepting it
    /// would make the run's cleanup drop the user's data.
    OutputClobbersSource { name: String },
}

impl fmt::Display for SemanticViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticViolation::UnknownAttribute { clause, name } => {
                write!(
                    f,
                    "attribute '{name}' in {clause} is not defined on the source tables"
                )
            }
            SemanticViolation::OverlappingAttributes {
                first,
                second,
                name,
            } => write!(
                f,
                "attribute '{name}' appears in both {first} and {second}, which must be disjoint"
            ),
            SemanticViolation::HavingScope { clause, name } => write!(
                f,
                "HAVING of {clause} references '{name}', which is outside its attribute list"
            ),
            SemanticViolation::MiningCondScope { name } => write!(
                f,
                "mining condition references grouping/clustering attribute '{name}'"
            ),
            SemanticViolation::BadCardinality { spec } => {
                write!(f, "invalid cardinality specification '{spec}'")
            }
            SemanticViolation::BadMiningQualifier { qualifier } => write!(
                f,
                "mining condition qualifier '{qualifier}' is not BODY or HEAD"
            ),
            SemanticViolation::BadClusterQualifier { qualifier } => write!(
                f,
                "cluster condition qualifier '{qualifier}' is not BODY or HEAD"
            ),
            SemanticViolation::ClusterCondWithoutCluster => {
                write!(f, "cluster condition requires a CLUSTER BY clause")
            }
            SemanticViolation::OutputClobbersSource { name } => write!(
                f,
                "output table '{name}' would overwrite a source table of the same name"
            ),
        }
    }
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::Syntax { pos, message } => {
                write!(f, "MINE RULE syntax error at {pos}: {message}")
            }
            MineError::Semantic(v) => write!(f, "semantic error: {v}"),
            MineError::Sql(e) => write!(f, "SQL server error: {e}"),
            MineError::BadThreshold { what, value } => {
                write!(f, "{what} threshold {value} is outside (0, 1]")
            }
            MineError::UnknownAlgorithm { name } => write!(
                f,
                "unknown mining algorithm '{name}'; the pool contains: {}",
                crate::algo::POOL_NAMES.join(", ")
            ),
            MineError::InvalidWorkerCount { value } => write!(
                f,
                "invalid worker count '{value}'; the mining executor needs at least 1 worker"
            ),
            MineError::UnknownGidSetRepr { name } => write!(
                f,
                "unknown gid-set representation '{name}'; valid choices: list, bitset, auto"
            ),
            MineError::UnknownSqlExec { name } => write!(
                f,
                "unknown sql execution mode '{name}'; valid choices: compiled, interpreted, auto"
            ),
            MineError::UnknownExecMode { name } => write!(
                f,
                "unknown exec mode '{name}'; valid choices: vector, row, auto"
            ),
            MineError::UnknownCacheMode { name } => write!(
                f,
                "unknown preprocess cache mode '{name}'; valid choices: on, off"
            ),
            MineError::UnknownMineCacheMode { name } => write!(
                f,
                "unknown mined-result cache mode '{name}'; valid choices: on, off"
            ),
            MineError::UnknownIndexPolicy { name } => {
                write!(f, "unknown index policy '{name}'; valid choices: auto, off")
            }
            MineError::UnknownStorageBackend { name } => write!(
                f,
                "unknown storage backend '{name}'; valid choices: memory, paged"
            ),
            MineError::UnknownPlanner { name } => {
                write!(
                    f,
                    "unknown planner mode '{name}'; valid choices: cost, naive"
                )
            }
            MineError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for MineError {}

impl From<relational::Error> for MineError {
    fn from(e: relational::Error) -> Self {
        match e {
            relational::Error::Lex { pos, message } | relational::Error::Parse { pos, message } => {
                MineError::Syntax { pos, message }
            }
            other => MineError::Sql(other),
        }
    }
}

impl From<SemanticViolation> for MineError {
    fn from(v: SemanticViolation) -> Self {
        MineError::Semantic(v)
    }
}

/// Result alias for the kernel.
pub type Result<T> = std::result::Result<T, MineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_semantic() {
        let e = MineError::Semantic(SemanticViolation::MiningCondScope {
            name: "customer".into(),
        });
        assert!(e.to_string().contains("customer"));
    }

    #[test]
    fn sql_parse_errors_become_syntax() {
        let e: MineError = relational::Error::Parse {
            pos: 3,
            message: "boom".into(),
        }
        .into();
        assert!(matches!(e, MineError::Syntax { .. }));
    }
}
