//! Typed access to the encoded tables the preprocessor materialises.
//!
//! The core operator reads *only* these structures — it never sees real
//! attribute names or values, which is the architecture's interoperability
//! contract (§3): any mining algorithm can be plugged in behind them.

use std::collections::HashMap;

use relational::{Database, ResultSet, Value};

use crate::ast::CardSpec;
use crate::directives::{Directives, StatementClass};
use crate::error::{MineError, Result};
use crate::translator::Translation;

/// One encoded tuple of the general `CodedSource` view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneralTuple {
    pub gid: u32,
    /// Cluster identifier; `None` when the statement has no CLUSTER BY.
    pub cid: Option<u32>,
    /// Body-item identifier; `None` on head-side rows (H true).
    pub bid: Option<u32>,
    /// Head-item identifier; `None` on body-side rows. When H is false
    /// the body identifier doubles as the head identifier.
    pub hid: Option<u32>,
}

/// An elementary (1×1) rule from `InputRules` (mining condition case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElemRule {
    pub gid: u32,
    pub cidb: Option<u32>,
    pub cidh: Option<u32>,
    pub bid: u32,
    pub hid: u32,
}

/// Everything the core operator needs, in encoded form.
#[derive(Debug, Clone)]
pub struct EncodedInput {
    pub directives: Directives,
    pub class: StatementClass,
    pub total_groups: u32,
    pub min_groups: u32,
    pub min_support: f64,
    pub min_confidence: f64,
    pub body_card: CardSpec,
    pub head_card: CardSpec,
    pub data: EncodedData,
}

/// Class-specific payload.
#[derive(Debug, Clone)]
pub enum EncodedData {
    /// Simple rules: per-group lists of large item identifiers.
    Simple { groups: Vec<(u32, Vec<u32>)> },
    /// General rules: raw tuples plus optional couples/elementary tables.
    General {
        tuples: Vec<GeneralTuple>,
        cluster_couples: Option<Vec<(u32, u32, u32)>>,
        input_rules: Option<Vec<ElemRule>>,
    },
}

fn get_u32(v: &Value) -> Result<u32> {
    match v {
        Value::Int(i) if *i >= 0 && *i <= u32::MAX as i64 => Ok(*i as u32),
        other => Err(MineError::Internal {
            message: format!("expected small non-negative id, got {other}"),
        }),
    }
}

fn get_opt_u32(v: &Value) -> Result<Option<u32>> {
    if v.is_null() {
        Ok(None)
    } else {
        get_u32(v).map(Some)
    }
}

fn col(rs: &ResultSet, name: &str) -> Result<usize> {
    rs.column_index(name).ok_or_else(|| MineError::Internal {
        message: format!("encoded table misses column '{name}'"),
    })
}

/// Read the encoded input for a translation whose preprocessing has run.
pub fn read_encoded(db: &mut Database, translation: &Translation) -> Result<EncodedInput> {
    let dir = translation.directives;
    let names = &translation.names;
    let stmt = &translation.stmt;
    let total_groups = match db.var("totg") {
        Some(Value::Int(n)) => *n as u32,
        _ => {
            return Err(MineError::Internal {
                message: ":totg unset — run preprocessing first".into(),
            })
        }
    };
    let min_groups = match db.var("mingroups") {
        Some(Value::Int(n)) => *n as u32,
        _ => {
            return Err(MineError::Internal {
                message: ":mingroups unset — run preprocessing first".into(),
            })
        }
    };

    let data = match translation.class {
        StatementClass::Simple => {
            let rs = db.query(&format!(
                "SELECT Gid, Bid FROM {} ORDER BY Gid, Bid",
                names.coded_source()
            ))?;
            let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
            for row in rs.rows() {
                let gid = get_u32(&row[0])?;
                let bid = get_u32(&row[1])?;
                match groups.last_mut() {
                    Some((g, items)) if *g == gid => items.push(bid),
                    _ => groups.push((gid, vec![bid])),
                }
            }
            EncodedData::Simple { groups }
        }
        StatementClass::General => {
            let mut cols = vec!["Gid"];
            if dir.c {
                cols.push("Cid");
            }
            cols.push("Bid");
            if dir.h {
                cols.push("Hid");
            }
            let rs = db.query(&format!(
                "SELECT {} FROM {}",
                cols.join(", "),
                names.coded_source()
            ))?;
            let gid_i = col(&rs, "Gid")?;
            let cid_i = if dir.c { Some(col(&rs, "Cid")?) } else { None };
            let bid_i = col(&rs, "Bid")?;
            let hid_i = if dir.h { Some(col(&rs, "Hid")?) } else { None };
            let mut tuples = Vec::with_capacity(rs.len());
            for row in rs.rows() {
                let bid = get_opt_u32(&row[bid_i])?;
                let hid = match hid_i {
                    Some(i) => get_opt_u32(&row[i])?,
                    // Same schema for body and head: the body identifier
                    // doubles as head identifier.
                    None => bid,
                };
                tuples.push(GeneralTuple {
                    gid: get_u32(&row[gid_i])?,
                    cid: match cid_i {
                        Some(i) => Some(get_u32(&row[i])?),
                        None => None,
                    },
                    bid,
                    hid,
                });
            }
            let cluster_couples = if dir.k {
                let rs = db.query(&format!(
                    "SELECT Gid, Cidb, Cidh FROM {}",
                    names.cluster_couples()
                ))?;
                Some(
                    rs.rows()
                        .iter()
                        .map(|r| Ok((get_u32(&r[0])?, get_u32(&r[1])?, get_u32(&r[2])?)))
                        .collect::<Result<Vec<_>>>()?,
                )
            } else {
                None
            };
            let input_rules = if dir.m {
                let mut cols = vec!["Gid"];
                if dir.c {
                    cols.push("Cidb");
                    cols.push("Cidh");
                }
                cols.push("Bid");
                cols.push("Hid");
                let rs = db.query(&format!(
                    "SELECT {} FROM {}",
                    cols.join(", "),
                    names.input_rules()
                ))?;
                let gid_i = col(&rs, "Gid")?;
                let bid_i = col(&rs, "Bid")?;
                let hid_i = col(&rs, "Hid")?;
                let mut rules = Vec::with_capacity(rs.len());
                for row in rs.rows() {
                    rules.push(ElemRule {
                        gid: get_u32(&row[gid_i])?,
                        cidb: if dir.c {
                            get_opt_u32(&row[col(&rs, "Cidb")?])?
                        } else {
                            None
                        },
                        cidh: if dir.c {
                            get_opt_u32(&row[col(&rs, "Cidh")?])?
                        } else {
                            None
                        },
                        bid: get_u32(&row[bid_i])?,
                        hid: get_u32(&row[hid_i])?,
                    });
                }
                Some(rules)
            } else {
                None
            };
            EncodedData::General {
                tuples,
                cluster_couples,
                input_rules,
            }
        }
    };

    Ok(EncodedInput {
        directives: dir,
        class: translation.class,
        total_groups,
        min_groups,
        min_support: stmt.min_support,
        min_confidence: stmt.min_confidence,
        body_card: stmt.body.card,
        head_card: stmt.head.card,
        data,
    })
}

/// Decoding maps read back from `Bset`/`Hset`, used by tests and examples
/// to express expectations in terms of real item values.
#[derive(Debug, Clone, Default)]
pub struct ItemDecoder {
    /// Bid → rendered body item (single-attribute schemas render plainly;
    /// multi-attribute schemas render as `v1|v2`).
    pub bodies: HashMap<u32, String>,
    /// Hid → rendered head item (equal to `bodies` when H is false).
    pub heads: HashMap<u32, String>,
}

impl ItemDecoder {
    /// Read the decoder from the encoded item tables.
    pub fn read(db: &mut Database, translation: &Translation) -> Result<ItemDecoder> {
        let names = &translation.names;
        let stmt = &translation.stmt;
        let bodies = read_item_map(db, &names.bset(), "Bid", &stmt.body.schema)?;
        let heads = if translation.directives.h {
            read_item_map(db, &names.hset(), "Hid", &stmt.head.schema)?
        } else {
            bodies.clone()
        };
        Ok(ItemDecoder { bodies, heads })
    }

    /// Render an encoded body itemset as sorted item names.
    pub fn body_names(&self, bids: &[u32]) -> Vec<String> {
        let mut v: Vec<String> = bids
            .iter()
            .map(|b| {
                self.bodies
                    .get(b)
                    .cloned()
                    .unwrap_or_else(|| format!("#{b}"))
            })
            .collect();
        v.sort();
        v
    }

    /// Render an encoded head itemset as sorted item names.
    pub fn head_names(&self, hids: &[u32]) -> Vec<String> {
        let mut v: Vec<String> = hids
            .iter()
            .map(|h| {
                self.heads
                    .get(h)
                    .cloned()
                    .unwrap_or_else(|| format!("#{h}"))
            })
            .collect();
        v.sort();
        v
    }
}

fn read_item_map(
    db: &mut Database,
    table: &str,
    id_col: &str,
    schema: &[String],
) -> Result<HashMap<u32, String>> {
    let rs = db.query(&format!(
        "SELECT {id_col}, {} FROM {table}",
        schema.join(", ")
    ))?;
    let mut map = HashMap::with_capacity(rs.len());
    for row in rs.rows() {
        let id = get_u32(&row[0])?;
        let rendered = row[1..]
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("|");
        map.insert(id, rendered);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::purchase_db;
    use crate::parser::parse_mine_rule;
    use crate::preprocess::preprocess;
    use crate::translator::translate;

    fn prepared(stmt: &str) -> (relational::Database, crate::translator::Translation) {
        let mut db = purchase_db();
        let parsed = parse_mine_rule(stmt).unwrap();
        let translation = translate(&parsed, db.catalog()).unwrap();
        preprocess(&mut db, &translation).unwrap();
        (db, translation)
    }

    #[test]
    fn simple_encoding_reads_groups() {
        let (mut db, t) = prepared(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY tr \
             EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1",
        );
        let input = read_encoded(&mut db, &t).unwrap();
        assert_eq!(input.total_groups, 4);
        match input.data {
            EncodedData::Simple { groups } => {
                // Transaction 2 has 3 large items (everything that appears
                // in ≥1 group is large at support 0.25 → ming=1).
                assert!(groups.iter().any(|(_, items)| items.len() == 3));
            }
            other => panic!("expected simple encoding, got {other:?}"),
        }
    }

    #[test]
    fn decoder_maps_bids_to_item_names() {
        let (mut db, t) = prepared(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY tr \
             EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1",
        );
        let decoder = ItemDecoder::read(&mut db, &t).unwrap();
        let names: Vec<String> = decoder.bodies.values().cloned().collect();
        assert!(names.contains(&"jackets".to_string()));
        // Unknown ids render as placeholders rather than panicking.
        assert_eq!(decoder.body_names(&[9999]), vec!["#9999".to_string()]);
    }

    #[test]
    fn general_encoding_carries_cluster_ids() {
        let (mut db, t) = prepared(
            "MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD \
             FROM Purchase GROUP BY customer CLUSTER BY date \
             EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1",
        );
        let input = read_encoded(&mut db, &t).unwrap();
        match input.data {
            EncodedData::General { tuples, .. } => {
                assert!(!tuples.is_empty());
                assert!(tuples.iter().all(|tu| tu.cid.is_some()));
                assert!(tuples.iter().all(|tu| tu.bid == tu.hid), "H=0");
            }
            other => panic!("expected general encoding, got {other:?}"),
        }
    }
}
